//! Fleet end-to-end tests: a real `cfrouter` over three real `cfserve`
//! backends serving the 19-job chaos manifest (`assets/serve.jobs`)
//! through `POST /jobs`. The ISSUE-level guarantee under test: killing
//! one backend mid-run (SIGKILL) — and, separately, draining one
//! gracefully (SIGTERM) — leaves the merged, id-ordered output
//! byte-identical to a fault-free single-instance run of the same
//! manifest; the loss is visible only in the router's `/stats`
//! counters. Plus the drain protocol on a lone `cfserve`: `POST /drain`
//! stops admissions, flips `/healthz` to draining, and the process
//! exits 0 once in-flight work settles.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The chaos manifest (`assets/serve.jobs`) expanded client-side: one
/// JSON spec per job, `repeat=N` flattened to N identical submissions,
/// in manifest order — so router id K corresponds to baseline record
/// `"job":K`.
fn chaos_specs() -> Vec<String> {
    let lines: [(&str, usize); 7] = [
        (r#"{"workload":"vgg16","batch":1,"machine":"f1"}"#, 4),
        (r#"{"workload":"resnet152","batch":1,"machine":"f1"}"#, 4),
        (r#"{"workload":"matmul","order":1024,"machine":"f100"}"#, 4),
        (r#"{"workload":"mlp3","batch":4,"machine":"embedded"}"#, 2),
        (r#"{"workload":"knn","size":"small","machine":"f1"}"#, 2),
        (r#"{"program":"assets/demo.cfasm","machine":"tiny","label":"demo"}"#, 2),
        (r#"{"workload":"kmeans","size":"small","mode":"exec","seed":42,"machine":"tiny"}"#, 1),
    ];
    let mut specs = Vec::new();
    for (spec, repeat) in lines {
        for _ in 0..repeat {
            specs.push(spec.to_string());
        }
    }
    assert_eq!(specs.len(), 19, "the chaos manifest is 19 jobs");
    specs
}

/// The fault-free ground truth: one `cfserve` run over the manifest
/// itself, stdout captured as the byte-exact expected output.
fn baseline() -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_cfserve"))
        .args(["assets/serve.jobs", "--workers", "2"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run cfserve on the chaos manifest");
    assert!(out.status.success(), "baseline run failed");
    let text = String::from_utf8(out.stdout).expect("utf-8 records");
    assert_eq!(text.lines().count(), 19, "baseline:\n{text}");
    text
}

/// A spawned process with its announced listen address and a stderr
/// drain thread (so the child never blocks on a full pipe).
struct Proc {
    child: Child,
    addr: String,
    drain: Option<JoinHandle<()>>,
}

impl Proc {
    /// Spawns `bin` and scrapes the first stderr line starting with
    /// `announce` for the `http://<addr>` it carries.
    fn spawn(bin: &str, args: &[String], announce: &str) -> Proc {
        let mut child = Command::new(bin)
            .args(args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .unwrap_or_else(|| panic!("{bin} exited before announcing"))
                .expect("read stderr");
            if line.starts_with(announce) {
                let rest = line.split("http://").nth(1).expect("http:// in announce");
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address")
                    .trim_end_matches('/')
                    .split(['(', ','])
                    .next()
                    .expect("address")
                    .to_string();
            }
        };
        let drain = std::thread::spawn(move || for _ in lines.by_ref() {});
        Proc { child, addr, drain: Some(drain) }
    }

    fn sigterm(&self) {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill").args(["-TERM", &pid]).status().expect("run kill");
        assert!(ok.success(), "kill -TERM {pid}");
    }

    /// Waits up to `limit` for the child to exit, returning whether it
    /// exited cleanly (code 0).
    fn wait_clean(&mut self, limit: Duration) -> bool {
        let deadline = Instant::now() + limit;
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => return status.success(),
                None if Instant::now() > deadline => return false,
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    fn kill(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
        if let Some(drain) = self.drain.take() {
            drain.join().ok();
        }
    }
}

fn spawn_backend(journal: &std::path::Path) -> Proc {
    let args: Vec<String> = vec![
        "-".into(),
        "--status-port".into(),
        "0".into(),
        "--journal".into(),
        journal.display().to_string(),
        "--workers".into(),
        "2".into(),
    ];
    Proc::spawn(env!("CARGO_BIN_EXE_cfserve"), &args, "cfserve: status on http://")
}

/// Spawns `cfrouter` over the given backends with a fast prober and
/// hedging disabled (determinism: exactly one backend runs each job
/// unless the router decides to fail over).
fn spawn_router(backends: &[&Proc]) -> Proc {
    let mut args: Vec<String> = Vec::new();
    for b in backends {
        args.push("--backend".into());
        args.push(b.addr.clone());
    }
    args.extend(["--probe-interval-ms".into(), "100".into()]);
    args.extend(["--hedge-after-ms".into(), "0".into()]);
    Proc::spawn(env!("CARGO_BIN_EXE_cfrouter"), &args, "cfrouter: routing ")
}

/// One HTTP exchange against `addr`; the server closes the connection
/// after every response, so reading to EOF frames the body.
fn http(addr: &str, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(150))).unwrap();
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Submits one spec through the router, asserting acceptance, and
/// returns the fleet-wide id.
fn submit(addr: &str, spec: &str) -> u64 {
    let request =
        format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}", spec.len());
    let (status, body) = http(addr, &request);
    assert!(status.contains("202"), "{status} {body}");
    let digits: String = body.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().expect("job id")
}

/// Long-polls one job through the router until its record streams back.
fn stream_record(addr: &str, id: u64) -> String {
    let (status, body) = http(addr, &format!("GET /jobs/{id}?timeout_s=120 HTTP/1.1\r\n\r\n"));
    assert!(status.contains("200"), "job {id}: {status} {body}");
    body
}

/// Scrapes one top-level counter off the router's `/stats` JSON.
fn stat(body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("no {name} in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// Per-backend routed-job counts from the `"backends":[...]` table, in
/// spawn order.
fn backend_job_counts(stats: &str) -> Vec<u64> {
    let table = stats.split("\"backends\":[").nth(1).expect("backends table");
    table
        .split("\"jobs\":")
        .skip(1)
        .map(|rest| {
            rest.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("jobs")
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cf-fleet-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Submits the 19 chaos jobs through the router (asserting sequential
/// fleet-wide ids), then streams them all back and returns the merged
/// id-ordered output.
fn run_chaos<F: FnOnce(&str)>(router: &str, mid_run: F) -> String {
    for (i, spec) in chaos_specs().iter().enumerate() {
        assert_eq!(submit(router, spec), i as u64, "fleet ids are sequential");
    }
    mid_run(router);
    let mut merged = String::new();
    for id in 0..19u64 {
        merged.push_str(&stream_record(router, id));
        merged.push('\n');
    }
    merged
}

/// SIGKILL one of three backends after every job is accepted: the
/// router fails lost jobs over to the surviving replicas (re-running
/// them deterministically), the prober ejects the corpse, and the
/// merged output is byte-identical to the fault-free single-instance
/// run — the loss shows up only in `/stats`.
#[test]
fn killing_one_of_three_backends_keeps_output_byte_identical() {
    let expected = baseline();
    let dir = temp_dir("kill");
    let backends: Vec<Proc> =
        (0..3).map(|i| spawn_backend(&dir.join(format!("b{i}.wal")))).collect();
    let router = spawn_router(&backends.iter().collect::<Vec<_>>());

    let mut backends = backends;
    let merged = run_chaos(&router.addr, |addr| {
        // Kill the backend that owns the most jobs — maximum damage.
        let (status, stats) = http(addr, "GET /stats HTTP/1.1\r\n\r\n");
        assert!(status.contains("200"), "{status}");
        let counts = backend_job_counts(&stats);
        assert_eq!(counts.len(), 3, "{stats}");
        assert_eq!(counts.iter().sum::<u64>(), 19, "{stats}");
        let busiest = (0..3).max_by_key(|&i| counts[i]).unwrap();
        assert!(counts[busiest] > 0, "{stats}");
        let victim = backends.remove(busiest);
        victim.kill();
    });
    assert_eq!(merged, expected, "merged fleet output must match the single-instance run");

    // The damage is visible in the router's counters: lost jobs failed
    // over, and the prober ejected the dead backend.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = http(&router.addr, "GET /stats HTTP/1.1\r\n\r\n");
        if stat(&stats, "failovers") >= 1 && stat(&stats, "ejections") >= 1 {
            assert_eq!(stat(&stats, "records_streamed"), 19, "{stats}");
            break;
        }
        assert!(Instant::now() < deadline, "no failover/ejection recorded: {stats}");
        std::thread::sleep(Duration::from_millis(100));
    }
    let (status, _) = http(&router.addr, "GET /healthz HTTP/1.1\r\n\r\n");
    assert!(status.contains("200"), "router stays healthy on two survivors: {status}");

    router.kill();
    for b in backends {
        b.kill();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGTERM one of three backends after every job is accepted: the
/// backend drains — stops admitting, finishes in-flight work, fsyncs
/// its journal — and exits 0; the router re-runs whatever it can no
/// longer answer, and the merged output is still byte-identical.
#[cfg(unix)]
#[test]
fn draining_one_of_three_backends_keeps_output_byte_identical() {
    let expected = baseline();
    let dir = temp_dir("drain");
    let backends: Vec<Proc> =
        (0..3).map(|i| spawn_backend(&dir.join(format!("b{i}.wal")))).collect();
    let router = spawn_router(&backends.iter().collect::<Vec<_>>());

    let mut backends = backends;
    let mut drained: Option<Proc> = None;
    let merged = run_chaos(&router.addr, |addr| {
        let (_, stats) = http(addr, "GET /stats HTTP/1.1\r\n\r\n");
        let counts = backend_job_counts(&stats);
        let busiest = (0..3).max_by_key(|&i| counts[i]).unwrap();
        let victim = backends.remove(busiest);
        victim.sigterm();
        drained = Some(victim);
    });
    assert_eq!(merged, expected, "merged fleet output must match the single-instance run");

    // A planned removal is a *clean* exit: in-flight work settled, the
    // journal synced, exit code 0.
    let mut victim = drained.expect("drained backend");
    assert!(victim.wait_clean(Duration::from_secs(60)), "drained backend must exit 0");
    victim.kill();

    router.kill();
    for b in backends {
        b.kill();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The drain protocol on a lone `cfserve`: `POST /drain` answers with
/// the pending count, `/healthz` flips to a 503 `"draining"` (distinct
/// from overload), new submissions bounce with 503, `GET /drain` is a
/// 405 — and once in-flight work settles the process exits 0.
#[test]
fn post_drain_stops_admissions_and_exits_cleanly() {
    let dir = temp_dir("lone");
    let mut backend = spawn_backend(&dir.join("b.wal"));

    // One answered job proves the instance was live and admitting.
    let id =
        submit(&backend.addr, r#"{"workload":"matmul","order":256,"machine":"tiny","label":"w"}"#);
    assert_eq!(id, 0);
    let record = stream_record(&backend.addr, 0);
    assert!(record.starts_with("{\"job\":0,"), "{record}");

    // GET /drain is not a drain.
    let (status, _) = http(&backend.addr, "GET /drain HTTP/1.1\r\n\r\n");
    assert!(status.contains("405"), "{status}");
    let (status, _) = http(&backend.addr, "GET /healthz HTTP/1.1\r\n\r\n");
    assert!(status.contains("200"), "still healthy after GET /drain: {status}");

    // POST /drain flips the instance into draining.
    let (status, body) = http(&backend.addr, "POST /drain HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert!(status.contains("200"), "{status} {body}");
    assert!(body.contains("\"status\":\"draining\""), "{body}");

    // Draining is distinct from overload, and the front door is closed.
    let (status, body) = http(&backend.addr, "GET /healthz HTTP/1.1\r\n\r\n");
    assert!(status.contains("503"), "{status}");
    assert!(body.contains("\"status\":\"draining\""), "{body}");
    assert!(!body.contains("overloaded"), "{body}");
    let spec = r#"{"workload":"matmul","order":256,"machine":"tiny","label":"late"}"#;
    let request =
        format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}", spec.len());
    let (status, body) = http(&backend.addr, &request);
    assert!(status.contains("503"), "{status} {body}");
    assert!(body.contains("draining"), "{body}");

    // Nothing pending: the process settles and exits 0 on its own.
    assert!(backend.wait_clean(Duration::from_secs(30)), "drained cfserve must exit 0");
    backend.kill();
    std::fs::remove_dir_all(&dir).ok();
}
