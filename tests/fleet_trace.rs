//! Fleet distributed-tracing end-to-end tests: a real `cfrouter` over
//! three real `cfserve` backends under seeded wire faults, with every
//! job traced from `POST /jobs` to its streamed record. Under test:
//!
//! * every accepted job gets an `X-CF-Trace` context, and the record
//!   that finally streams back carries the **same trace id** — even
//!   when the wire tore mid-body and the job failed over;
//! * `GET /trace/<trace-id>` merges the router's dispatch/attempt
//!   spans with the backends' spans into one Chrome-trace JSON
//!   document with strictly nested parent/child intervals;
//! * the `X-CF-Attribution` latency breakdown sums to the
//!   client-measured end-to-end latency within 5%;
//! * with `--slo-ms` set, the merged `/metrics` carries the `cf_slo_*`
//!   burn-rate families and classifies every streamed record.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cambricon_f::runtime::trace::{Attribution, TraceContext};

/// The chaos manifest (`assets/serve.jobs`) expanded client-side, in
/// manifest order — so router id K corresponds to baseline `"job":K`.
fn chaos_specs() -> Vec<String> {
    let lines: [(&str, usize); 7] = [
        (r#"{"workload":"vgg16","batch":1,"machine":"f1"}"#, 4),
        (r#"{"workload":"resnet152","batch":1,"machine":"f1"}"#, 4),
        (r#"{"workload":"matmul","order":1024,"machine":"f100"}"#, 4),
        (r#"{"workload":"mlp3","batch":4,"machine":"embedded"}"#, 2),
        (r#"{"workload":"knn","size":"small","machine":"f1"}"#, 2),
        (r#"{"program":"assets/demo.cfasm","machine":"tiny","label":"demo"}"#, 2),
        (r#"{"workload":"kmeans","size":"small","mode":"exec","seed":42,"machine":"tiny"}"#, 1),
    ];
    let mut specs = Vec::new();
    for (spec, repeat) in lines {
        for _ in 0..repeat {
            specs.push(spec.to_string());
        }
    }
    assert_eq!(specs.len(), 19, "the chaos manifest is 19 jobs");
    specs
}

/// A spawned process with its announced listen address and a stderr
/// drain thread (so the child never blocks on a full pipe).
struct Proc {
    child: Child,
    addr: String,
    drain: Option<JoinHandle<()>>,
}

impl Proc {
    /// Spawns `bin` and scrapes the first stderr line starting with
    /// `announce` for the `http://<addr>` it carries.
    fn spawn(bin: &str, args: &[String], announce: &str) -> Proc {
        let mut child = Command::new(bin)
            .args(args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .unwrap_or_else(|| panic!("{bin} exited before announcing"))
                .expect("read stderr");
            if line.starts_with(announce) {
                let rest = line.split("http://").nth(1).expect("http:// in announce");
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address")
                    .trim_end_matches('/')
                    .split(['(', ','])
                    .next()
                    .expect("address")
                    .to_string();
            }
        };
        let drain = std::thread::spawn(move || for _ in lines.by_ref() {});
        Proc { child, addr, drain: Some(drain) }
    }

    fn kill(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
        if let Some(drain) = self.drain.take() {
            drain.join().ok();
        }
    }
}

fn spawn_backend(journal: &std::path::Path) -> Proc {
    let args: Vec<String> = vec![
        "-".into(),
        "--status-port".into(),
        "0".into(),
        "--journal".into(),
        journal.display().to_string(),
        "--workers".into(),
        "2".into(),
    ];
    Proc::spawn(env!("CARGO_BIN_EXE_cfserve"), &args, "cfserve: status on http://")
}

/// Spawns `cfrouter` over the given backend addresses with a fast
/// prober, hedging disabled (determinism), and any extra flags.
fn spawn_router(backends: &[&str], extra: &[&str]) -> Proc {
    let mut args: Vec<String> = Vec::new();
    for addr in backends {
        args.push("--backend".into());
        args.push((*addr).into());
    }
    args.extend(["--probe-interval-ms".into(), "100".into()]);
    args.extend(["--hedge-after-ms".into(), "0".into()]);
    args.extend(["--failover-retries".into(), "5".into()]);
    args.extend(extra.iter().map(|s| (*s).to_string()));
    Proc::spawn(env!("CARGO_BIN_EXE_cfrouter"), &args, "cfrouter: routing ")
}

/// One HTTP exchange, returning (status line, headers, body) — the
/// trace tests read response headers, which the plainer fleet helpers
/// throw away.
fn http_full(addr: &str, request: &str) -> (String, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(150))).unwrap();
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let mut lines = head.lines();
    let status = lines.next().unwrap_or("").to_string();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
}

/// Submits one spec, returning the fleet-wide id and the minted trace
/// context echoed on `X-CF-Trace`.
fn submit_traced(addr: &str, spec: &str) -> (u64, TraceContext) {
    let request =
        format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}", spec.len());
    let (status, headers, body) = http_full(addr, &request);
    assert!(status.contains("202"), "{status} {body}");
    let trace = header(&headers, "X-CF-Trace")
        .unwrap_or_else(|| panic!("no X-CF-Trace on accept: {headers:?}"));
    let ctx = TraceContext::parse(trace).expect("parseable trace header");
    let digits: String = body.chars().filter(|c| c.is_ascii_digit()).collect();
    (digits.parse().expect("job id"), ctx)
}

/// Long-polls one record, returning (body, trace header, attribution).
fn stream_traced(addr: &str, id: u64) -> (String, TraceContext, Attribution) {
    let (status, headers, body) =
        http_full(addr, &format!("GET /jobs/{id}?timeout_s=120 HTTP/1.1\r\n\r\n"));
    assert!(status.contains("200"), "job {id}: {status} {body}");
    let trace = header(&headers, "X-CF-Trace")
        .unwrap_or_else(|| panic!("job {id}: no X-CF-Trace on record: {headers:?}"));
    let ctx = TraceContext::parse(trace).expect("parseable trace header");
    let attr = header(&headers, "X-CF-Attribution")
        .and_then(Attribution::parse)
        .unwrap_or_else(|| panic!("job {id}: no parseable X-CF-Attribution: {headers:?}"));
    (body, ctx, attr)
}

/// Scrapes one top-level counter off the router's `/stats` JSON.
fn stat(body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("no {name} in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// One Prometheus sample value by exact series name.
fn sample(metrics: &str, name: &str) -> f64 {
    let line = metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("no {name} sample in metrics"));
    line.split_whitespace().nth(1).expect("sample").parse().expect("f64 sample")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cf-trace-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `(ts, dur)` of a Chrome-trace `X` event.
fn interval(e: &serde_json::Value) -> (f64, f64) {
    (
        e.get("ts").and_then(|t| t.as_f64()).expect("ts"),
        e.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0),
    )
}

/// Validates one merged `GET /trace/<id>` document: parses as JSON,
/// carries the requested trace id, has at least one router dispatch
/// and one attempt span, and every child interval nests strictly
/// inside its parent — backend events inside their attempt's window,
/// attempt spans inside the dispatch span. Returns the parsed doc.
fn validate_merged_trace(router: &str, ctx: TraceContext) -> serde_json::Value {
    let (status, _, body) =
        http_full(router, &format!("GET /trace/{:032x} HTTP/1.1\r\n\r\n", ctx.trace_id));
    assert!(status.contains("200"), "{status} {body}");
    let doc = serde_json::from_str(&body).expect("merged trace parses as JSON");
    assert_eq!(
        doc.get("trace").and_then(|t| t.as_str()),
        Some(format!("{:032x}", ctx.trace_id).as_str()),
        "{body}"
    );
    let evs = doc.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    let xs: Vec<&serde_json::Value> =
        evs.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    let name_of =
        |e: &serde_json::Value| e.get("name").and_then(|n| n.as_str()).unwrap_or("").to_string();
    let pid_of = |e: &serde_json::Value| e.get("pid").and_then(|p| p.as_u64()).unwrap_or(0);
    let tid_of = |e: &serde_json::Value| e.get("tid").and_then(|t| t.as_u64()).unwrap_or(0);

    // Router spans: one dispatch, ≥ 1 attempt, attempts nested inside
    // the dispatch interval.
    let dispatch: Vec<&&serde_json::Value> =
        xs.iter().filter(|e| pid_of(e) == 0 && name_of(e).starts_with("dispatch")).collect();
    assert_eq!(dispatch.len(), 1, "exactly one dispatch span: {body}");
    let (d_ts, d_dur) = interval(dispatch[0]);
    let attempts: Vec<&&serde_json::Value> =
        xs.iter().filter(|e| pid_of(e) == 0 && name_of(e).starts_with("attempt")).collect();
    assert!(!attempts.is_empty(), "at least one attempt span: {body}");
    for a in &attempts {
        let (ts, dur) = interval(a);
        assert!(
            ts >= d_ts && ts + dur <= d_ts + d_dur,
            "attempt [{ts}, {}] escapes dispatch [{d_ts}, {}]: {body}",
            ts + dur,
            d_ts + d_dur,
        );
    }

    // Backend lanes: each lane's attempt box strictly contains every
    // other event in the lane.
    let mut backend_events = 0usize;
    let lanes: std::collections::BTreeSet<(u64, u64)> =
        xs.iter().filter(|e| pid_of(e) > 0).map(|e| (pid_of(e), tid_of(e))).collect();
    for (pid, tid) in lanes {
        let lane: Vec<&&serde_json::Value> =
            xs.iter().filter(|e| pid_of(e) == pid && tid_of(e) == tid).collect();
        let Some(parent) = lane.iter().find(|e| name_of(e).starts_with("attempt (")) else {
            continue;
        };
        let (p_ts, p_dur) = interval(parent);
        for e in &lane {
            if name_of(e).starts_with("attempt (") {
                continue;
            }
            backend_events += 1;
            let (ts, dur) = interval(e);
            assert!(
                ts > p_ts && ts + dur < p_ts + p_dur,
                "backend event [{ts}, {}] not strictly inside attempt [{p_ts}, {}]: {body}",
                ts + dur,
                p_ts + p_dur,
            );
        }
    }
    assert!(backend_events > 0, "merged trace carries backend spans: {body}");
    doc
}

/// The tentpole end-to-end: 19 jobs through a 3-backend fleet under a
/// (byte-safe) seeded netfault, every job traced, every record's
/// attribution summing to the measured end-to-end latency within 5%,
/// the merged trace strictly nested, and the `cf_slo_*` families live
/// in the fleet `/metrics`.
#[test]
fn traced_fleet_run_attributes_latency_and_burns_no_budget() {
    let dir = temp_dir("e2e");
    let backends: Vec<Proc> =
        (0..3).map(|i| spawn_backend(&dir.join(format!("b{i}.wal")))).collect();
    let addrs: Vec<&str> = backends.iter().map(|b| b.addr.as_str()).collect();
    let router = spawn_router(
        &addrs,
        &[
            // Byte-safe chaos: dials stall but nothing tears or lies,
            // so no failovers perturb the attribution windows.
            "--netfault-seed",
            "21",
            "--netfault-spec",
            "connect_latency=0.15,latency_ms=20",
            "--eject-after",
            "5",
            // A generous latency target: every job should be good, so
            // the burn rate stays 0 and the budget stays whole.
            "--slo-ms",
            "60000",
            "--slo-objective",
            "0.9",
        ],
    );

    let mut submitted: Vec<(u64, TraceContext, Instant)> = Vec::new();
    for (i, spec) in chaos_specs().iter().enumerate() {
        let t0 = Instant::now();
        let (id, ctx) = submit_traced(&router.addr, spec);
        assert_eq!(id, i as u64, "fleet ids are sequential");
        // Every submission minted a fresh root: no parent, distinct
        // trace ids.
        assert_eq!(ctx.parent, None, "router roots the trace");
        assert!(
            submitted.iter().all(|&(_, c, _)| c.trace_id != ctx.trace_id),
            "trace ids are unique per job"
        );
        submitted.push((id, ctx, t0));
    }

    for &(id, ctx, t0) in &submitted {
        let (record, record_ctx, attr) = stream_traced(&router.addr, id);
        let measured = t0.elapsed();
        assert!(record.starts_with(&format!("{{\"job\":{id},")), "{record}");
        // The trace id survives from accept to record — same trace.
        assert_eq!(record_ctx.trace_id, ctx.trace_id, "job {id}: trace id changed");

        // The attribution carries the router-side components and sums
        // to the client-measured end-to-end latency within 5% (plus a
        // small absolute floor for loopback scheduling noise).
        for key in ["total_us", "net_submit_us", "net_poll_us", "backoff_us"] {
            assert!(attr.get(key).is_some(), "job {id}: no {key} in {}", attr.encode());
        }
        let full_sum = attr.total_us()
            + attr.get("net_submit_us").unwrap_or(0)
            + attr.get("net_poll_us").unwrap_or(0)
            + attr.get("backoff_us").unwrap_or(0);
        let measured_us = measured.as_micros() as u64;
        let diff = measured_us.abs_diff(full_sum);
        let slack = (measured_us / 20).max(30_000);
        assert!(
            diff <= slack,
            "job {id}: attribution sum {full_sum}µs vs measured {measured_us}µs (diff {diff}µs > {slack}µs): {}",
            attr.encode(),
        );
        // The backend's execution components account for its total
        // exactly (the backend guarantees the partition).
        assert_eq!(
            attr.execution_sum_us(),
            attr.total_us(),
            "job {id}: execution components must partition total_us: {}",
            attr.encode(),
        );
    }

    // Satellite: per-backend hedge outcome detail is in /stats (zero
    // here — hedging is disabled — but the fields must render).
    let (status, _, stats) = http_full(&router.addr, "GET /stats HTTP/1.1\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    assert_eq!(stat(&stats, "records_streamed"), 19, "{stats}");
    assert!(stats.contains("\"hedges_won\":"), "{stats}");
    assert!(stats.contains("\"hedges_cancelled\":"), "{stats}");
    // The /stats attribution aggregate booked all 19 records.
    assert!(stats.contains("\"attribution\":"), "{stats}");
    let attr_at = stats.find("\"attribution\":").expect("attribution object");
    assert_eq!(stat(&stats[attr_at..], "records"), 19, "{stats}");

    // SLO series: every record classified, all good under the generous
    // target, budget untouched, burn rate zero.
    let (_, _, metrics) = http_full(&router.addr, "GET /metrics HTTP/1.1\r\n\r\n");
    assert!(sample(&metrics, "cf_slo_good_total") as u64 >= 19, "{metrics}");
    assert_eq!(sample(&metrics, "cf_slo_bad_total") as u64, 0, "bad jobs under a 60s target");
    assert!((sample(&metrics, "cf_slo_error_budget_remaining") - 1.0).abs() < 1e-9);
    assert!((sample(&metrics, "cf_slo_burn_rate_5m")).abs() < 1e-9);
    assert!(metrics.contains("# TYPE cf_slo_burn_rate_1h gauge"), "{metrics}");
    assert!((sample(&metrics, "cf_slo_objective") - 0.9).abs() < 1e-9);
    // The backends' own tracer counters merge in too.
    assert!(metrics.contains("cf_trace_attached_total"), "{metrics}");

    // The merged trace for the first and last job: parses, nests
    // strictly, carries backend spans.
    validate_merged_trace(&router.addr, submitted[0].1);
    validate_merged_trace(&router.addr, submitted[18].1);

    router.kill();
    for b in backends {
        b.kill();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Mid-body tears force failovers (submit-time retries and poll-time
/// resubmissions); the trace id still survives from accept to record,
/// and at least one merged trace shows **both** attempts — the failed
/// or superseded one and the one that recovered.
#[test]
fn trace_id_survives_tear_failover_and_shows_both_attempts() {
    let dir = temp_dir("tear");
    let backends: Vec<Proc> =
        (0..3).map(|i| spawn_backend(&dir.join(format!("b{i}.wal")))).collect();
    let addrs: Vec<&str> = backends.iter().map(|b| b.addr.as_str()).collect();
    // Seed 14 tear=0.2 is the fleet_chaos scenario known to force at
    // least one failover while the merged output stays byte-identical.
    let router = spawn_router(
        &addrs,
        &[
            "--netfault-seed",
            "14",
            "--netfault-spec",
            "tear=0.2",
            "--eject-after",
            "5",
            "--breaker-failures",
            "99",
        ],
    );

    let mut submitted: Vec<(u64, TraceContext)> = Vec::new();
    for (i, spec) in chaos_specs().iter().enumerate() {
        let (id, ctx) = submit_traced(&router.addr, spec);
        assert_eq!(id, i as u64);
        submitted.push((id, ctx));
    }
    for &(id, ctx) in &submitted {
        let (_, record_ctx, _) = stream_traced(&router.addr, id);
        assert_eq!(
            record_ctx.trace_id, ctx.trace_id,
            "job {id}: trace id must survive tears and failovers"
        );
    }
    let (_, _, stats) = http_full(&router.addr, "GET /stats HTTP/1.1\r\n\r\n");
    assert!(stat(&stats, "failovers") >= 1, "torn replies must fail over: {stats}");

    // Some trace carries more than one attempt span — the torn attempt
    // and its recovery — and a non-ok outcome is visible on one of
    // them.
    let mut multi_attempt = 0usize;
    let mut non_ok = 0usize;
    for &(_, ctx) in &submitted {
        let (status, _, body) =
            http_full(&router.addr, &format!("GET /trace/{:032x} HTTP/1.1\r\n\r\n", ctx.trace_id));
        assert!(status.contains("200"), "{status}");
        let doc: serde_json::Value = serde_json::from_str(&body).expect("trace parses");
        let evs = doc.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents");
        let attempts: Vec<&serde_json::Value> = evs
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("pid").and_then(|p| p.as_u64()) == Some(0)
                    && e.get("name").and_then(|n| n.as_str()).unwrap_or("").starts_with("attempt")
            })
            .collect();
        if attempts.len() >= 2 {
            multi_attempt += 1;
        }
        non_ok += attempts
            .iter()
            .filter(|a| {
                let outcome = a
                    .get("args")
                    .and_then(|args| args.get("outcome"))
                    .and_then(|o| o.as_str())
                    .unwrap_or("ok");
                outcome != "ok"
            })
            .count();
    }
    assert!(
        multi_attempt >= 1,
        "at least one trace must show both the torn attempt and its recovery: {stats}"
    );
    assert!(non_ok >= 1, "the torn attempt's failed span must be visible");

    router.kill();
    for b in backends {
        b.kill();
    }
    std::fs::remove_dir_all(&dir).ok();
}
