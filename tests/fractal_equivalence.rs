//! Cross-crate integration: fractal execution on arbitrary machines must
//! be (ε-)equivalent to flat reference execution — the paper's equation
//! (1), end to end, including property-based coverage over random shapes
//! and hierarchies.

use cambricon_f::core::{Machine, MachineConfig};
use cambricon_f::isa::{OpParams, Opcode, Program, ProgramBuilder};
use cambricon_f::tensor::{gen::DataGen, Memory, Shape};
use proptest::prelude::*;

fn seeded_memory(program: &Program, seed: u64, lo: f32, hi: f32) -> Memory {
    let mut mem = Memory::new(program.extern_elems() as usize);
    let t = DataGen::new(seed).uniform(Shape::new(vec![program.extern_elems() as usize]), lo, hi);
    mem.as_mut_slice().copy_from_slice(t.data());
    mem
}

fn assert_equivalent(program: &Program, cfg: &MachineConfig, seed: u64, tol: f32) {
    let mut flat = seeded_memory(program, seed, -1.0, 1.0);
    cambricon_f::ops::exec::execute_program(program, &mut flat).expect("flat execution");
    let mut fractal = seeded_memory(program, seed, -1.0, 1.0);
    Machine::new(cfg.clone()).run(program, &mut fractal).expect("fractal execution");
    for (name, region) in program.symbols() {
        let a = flat.read_region(region).unwrap();
        let b = fractal.read_region(region).unwrap();
        assert!(
            a.approx_eq(&b, tol),
            "symbol `{name}` diverged on {} (max diff {:?})",
            cfg.name,
            a.max_abs_diff(&b)
        );
    }
}

#[test]
fn small_cnn_on_every_machine_shape() {
    let mut b = ProgramBuilder::new();
    let x = b.alloc("x", vec![2, 10, 10, 3]);
    let w1 = b.alloc("w1", vec![3, 3, 3, 8]);
    let c = b
        .apply_with(Opcode::Cv2D, OpParams::Conv(cambricon_f::isa::ConvParams::same(1, 1)), [x, w1])
        .unwrap();
    let r = b.apply(Opcode::Act1D, [c[0]]).unwrap();
    let p = b.apply(Opcode::Max2D, [r[0]]).unwrap();
    let w2 = b.alloc("w2", vec![200, 10]);
    // Flatten via a raw 2-D aliased matmul input.
    let flat_in = b.alloc("flat", vec![2, 200]);
    let src = b.region(p[0]).clone();
    let dst = b.region(flat_in).clone();
    b.push_raw(
        cambricon_f::isa::Instruction::new(
            Opcode::Act1D,
            OpParams::None,
            vec![cambricon_f::tensor::Region::contiguous(src.offset(), Shape::new(vec![2, 200]))],
            vec![dst],
        )
        .unwrap(),
    );
    b.apply(Opcode::MatMul, [flat_in, w2]).unwrap();
    let program = b.build();

    for cfg in [
        MachineConfig::tiny(1, 2, 8 << 10),
        MachineConfig::tiny(1, 7, 8 << 10),
        MachineConfig::tiny(2, 3, 8 << 10),
        MachineConfig::tiny(3, 2, 8 << 10),
    ] {
        assert_equivalent(&program, &cfg, 11, 1e-3);
    }
}

#[test]
fn optimisation_flags_never_change_results() {
    use cambricon_f::core::OptFlags;
    let mut b = ProgramBuilder::new();
    let a = b.alloc("a", vec![40, 24]);
    let w = b.alloc("w", vec![24, 32]);
    let h = b.apply(Opcode::MatMul, [a, w]).unwrap();
    b.apply(Opcode::Act1D, [h[0]]).unwrap();
    let program = b.build();
    for opts in [
        OptFlags::default(),
        OptFlags::none(),
        OptFlags { ttt: true, concat: false, broadcast: false, ..Default::default() },
        OptFlags { ttt: false, concat: true, broadcast: true, ..Default::default() },
    ] {
        let cfg = MachineConfig::tiny(2, 2, 8 << 10).with_opts(opts);
        assert_equivalent(&program, &cfg, 5, 1e-3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn matmul_fractal_equivalence(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        depth in 1usize..3,
        fanout in 2usize..5,
        seed in 0u64..1000,
    ) {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![m, k]);
        let w = b.alloc("w", vec![k, n]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        let program = b.build();
        assert_equivalent(
            &program,
            &MachineConfig::tiny(depth, fanout, 6 << 10),
            seed,
            1e-2,
        );
    }

    #[test]
    fn sort_with_payload_fractal_equivalence(
        n in 1usize..400,
        fanout in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut b = ProgramBuilder::new();
        let keys = b.alloc("k", vec![n]);
        let vals = b.alloc("v", vec![n]);
        let sk = b.alloc("sk", vec![n]);
        let sv = b.alloc("sv", vec![n]);
        b.emit(Opcode::Sort1D, [keys, vals], [sk, sv]).unwrap();
        let program = b.build();
        // Sorting is permutation-exact: zero tolerance.
        assert_equivalent(&program, &MachineConfig::tiny(1, fanout, 4 << 10), seed, 0.0);
    }

    #[test]
    fn eltwise_and_horizontal_fractal_equivalence(
        n in 1usize..3000,
        seed in 0u64..1000,
    ) {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![n]);
        let y = b.alloc("y", vec![n]);
        let z = b.apply(Opcode::Mul1D, [x, y]).unwrap();
        b.apply(Opcode::HSum1D, [z[0]]).unwrap();
        let program = b.build();
        assert_equivalent(&program, &MachineConfig::tiny(2, 2, 4 << 10), seed, 0.05);
    }

    #[test]
    fn pooling_fractal_equivalence(
        nb in 1usize..4,
        hw in 4usize..12,
        c in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![nb, hw, hw, c]);
        b.apply(Opcode::Max2D, [x]).unwrap();
        let program = b.build();
        assert_equivalent(&program, &MachineConfig::tiny(2, 3, 4 << 10), seed, 0.0);
    }
}
