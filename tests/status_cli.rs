//! End-to-end test of `cfserve --status-port`: spawn the real binary on
//! a slow manifest, scrape the announced ephemeral port off stderr, and
//! probe `/healthz`, `/stats` and `/trace` over plain TCP while the run
//! is live.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

#[test]
fn cfserve_status_port_serves_health_stats_and_trace() {
    let root = env!("CARGO_MANIFEST_DIR");
    // One worker grinding big uncached matmuls keeps the run alive for
    // seconds — long enough to probe every endpoint mid-flight.
    let manifest = std::env::temp_dir().join(format!("cf-status-cli-{}.jobs", std::process::id()));
    std::fs::write(&manifest, "workload=matmul order=2048 repeat=40\n").unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_cfserve"))
        .arg(&manifest)
        .args(["--status-port", "0", "--no-cache", "--workers", "1"])
        .current_dir(root)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cfserve");

    // The binary announces the bound port on stderr before serving.
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("cfserve exited before announcing its status port")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("cfserve: status on http://") {
            break rest.split_whitespace().next().expect("address").to_string();
        }
    };
    // Drain the rest of stderr in the background so the child never
    // blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in lines.by_ref() {});

    // /healthz answers while jobs are in flight.
    let t0 = Instant::now();
    let (status, body) = loop {
        let (status, body) = http_get(&addr, "/healthz");
        if status.contains("200") || t0.elapsed() > Duration::from_secs(20) {
            break (status, body);
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.contains("200"), "{status} {body}");
    assert!(body.contains("\"status\""), "{body}");

    // /stats shows the live run's counters.
    let (status, body) = http_get(&addr, "/stats");
    assert!(status.contains("200") || status.contains("503"), "{status}");
    if status.contains("200") {
        assert!(body.contains("\"submitted\""), "{body}");
    }

    // /trace serves the span ring.
    let (status, body) = http_get(&addr, "/trace");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"events\""), "{body}");

    // Done probing: the run itself can finish or be cut short.
    child.kill().ok();
    child.wait().ok();
    drain.join().ok();
    std::fs::remove_file(&manifest).ok();
}
