//! End-to-end test of `cfrun --trace-json`: run the real binary on the
//! demo program, then round-trip the emitted file through the JSON
//! parser and check it is a well-formed Chrome Trace Event array —
//! every event carries `ph`/`pid`/`tid`/`name`, duration events carry
//! `ts`/`dur`/`cat`, there is one level track per hierarchy level and
//! (with `--trace`) the runtime span tracks are present too.

use std::process::Command;

use cambricon_f::core::profile::{TRACE_PID_LEVELS, TRACE_PID_RUNTIME, TRACE_PID_STAGES};
use serde_json::Value;

fn run_cfrun(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cfrun"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cfrun")
}

fn field_u64(event: &Value, key: &str) -> Option<u64> {
    event.get(key).and_then(Value::as_u64)
}

#[test]
fn trace_json_is_a_wellformed_chrome_trace() {
    let out_path = std::env::temp_dir().join(format!("cf-trace-{}.json", std::process::id()));
    // --trace routes the simulate through the traced pool, so the
    // export also carries the runtime span tracks.
    let out =
        run_cfrun(&["assets/demo.cfasm", "--trace", "--trace-json", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "cfrun failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wrote Chrome trace"), "{stderr}");

    let text = std::fs::read_to_string(&out_path).expect("read trace file");
    std::fs::remove_file(&out_path).ok();
    let root = serde_json::from_str(&text).expect("trace file is valid JSON");
    let events = root.as_array().expect("top level is a JSON array");
    assert!(!events.is_empty(), "trace has no events");

    let mut level_tracks = std::collections::BTreeSet::new();
    let mut stage_tracks = std::collections::BTreeSet::new();
    let mut runtime_events = 0u64;
    let mut duration_events = 0u64;
    for event in events {
        let ph = event.get("ph").and_then(Value::as_str).expect("event has ph");
        let pid = field_u64(event, "pid").expect("event has pid");
        let tid = field_u64(event, "tid").expect("event has tid");
        assert!(event.get("name").and_then(Value::as_str).is_some(), "event has name");
        match ph {
            "X" => {
                duration_events += 1;
                let ts = event.get("ts").and_then(Value::as_f64).expect("X event has ts");
                let dur = event.get("dur").and_then(Value::as_f64).expect("X event has dur");
                assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur");
                assert!(event.get("cat").and_then(Value::as_str).is_some(), "X event has cat");
                match pid {
                    TRACE_PID_LEVELS => {
                        level_tracks.insert(tid);
                    }
                    TRACE_PID_STAGES => {
                        stage_tracks.insert(tid);
                    }
                    TRACE_PID_RUNTIME => runtime_events += 1,
                    other => panic!("unexpected pid {other}"),
                }
            }
            "M" => {
                // Metadata events name the tracks.
                assert!(event.get("args").and_then(|a| a.get("name")).is_some());
            }
            "i" => {
                assert!(event.get("ts").is_some(), "instant has ts");
                if pid == TRACE_PID_RUNTIME {
                    runtime_events += 1;
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(duration_events > 0, "no duration events");
    // demo.cfasm on the default f1 machine exercises a multi-level
    // hierarchy: one coarse track per level, stage tracks alongside.
    assert!(level_tracks.len() >= 2, "want >=2 level tracks, got {level_tracks:?}");
    assert!(!stage_tracks.is_empty(), "no pipeline-stage tracks");
    // The traced pool recorded at least submit/settle spans.
    assert!(runtime_events > 0, "no runtime span events despite --trace");
}

#[test]
fn profile_run_exports_trace_without_runtime_tracks() {
    let out_path = std::env::temp_dir().join(format!("cf-trace-plain-{}.json", std::process::id()));
    let out =
        run_cfrun(&["assets/demo.cfasm", "--profile", "--trace-json", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "cfrun failed: {}", String::from_utf8_lossy(&out.stderr));
    // --profile prints the attribution table on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("profile on"), "{stdout}");

    let text = std::fs::read_to_string(&out_path).expect("read trace file");
    std::fs::remove_file(&out_path).ok();
    let root = serde_json::from_str(&text).expect("valid JSON");
    let events = root.as_array().expect("array");
    assert!(!events.is_empty());
    // Without --trace there is no pool, hence no runtime track.
    assert!(events.iter().all(|e| e.get("pid").and_then(Value::as_u64) != Some(TRACE_PID_RUNTIME)));
}
