//! End-to-end tests of the HTTP job API: spawn the real `cfserve` binary
//! in API-only mode (`-` manifest) with a write-ahead journal, submit
//! jobs over plain TCP, and prove the ISSUE-level guarantees — a
//! `POST /jobs` job renders byte-identically to the same manifest line,
//! a kill mid-computation loses nothing (`--resume` replays the answered
//! job verbatim and re-runs the accepted-but-unanswered one), concurrent
//! identical submits coalesce to one computation, overload sheds at the
//! front door with `Retry-After`, and the `cf_api_*` metrics agree with
//! the journal's JSONL records.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::Duration;

/// A spawned `cfserve` with its announced status address and a stderr
/// drain (so the child never blocks on a full pipe).
struct Serve {
    child: Child,
    addr: String,
    drain: Option<JoinHandle<()>>,
}

impl Serve {
    fn spawn(args: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cfserve"))
            .args(args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn cfserve");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("cfserve exited before announcing its status port")
                .expect("read stderr");
            if let Some(rest) = line.strip_prefix("cfserve: status on http://") {
                break rest.split_whitespace().next().expect("address").to_string();
            }
        };
        let drain = std::thread::spawn(move || for _ in lines.by_ref() {});
        Serve { child, addr, drain: Some(drain) }
    }

    fn kill(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
        if let Some(drain) = self.drain.take() {
            drain.join().ok();
        }
    }
}

/// One HTTP exchange: status line, headers, body. The server closes the
/// connection after every response, so reading to EOF frames the body;
/// long-polls can hold the line for a while, hence the generous timeout.
fn http(addr: &str, request: &str) -> (String, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(150))).unwrap();
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let mut lines = head.lines();
    let status = lines.next().unwrap_or("").to_string();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// POSTs one job spec and returns the (status line, body) of the reply.
fn post_job(addr: &str, spec: &str) -> (String, Vec<(String, String)>, String) {
    let request =
        format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}", spec.len());
    http(addr, &request)
}

/// POSTs a spec that must be accepted, returning its job id.
fn submit(addr: &str, spec: &str) -> u64 {
    let (status, _, body) = post_job(addr, spec);
    assert!(status.contains("202"), "{status} {body}");
    let digits: String = body.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().expect("job id")
}

/// Long-polls one job to completion and returns its record body.
fn stream_record(addr: &str, id: u64) -> String {
    let (status, _, body) = http(addr, &format!("GET /jobs/{id}?timeout_s=120 HTTP/1.1\r\n\r\n"));
    assert!(status.contains("200"), "job {id}: {status} {body}");
    body
}

/// Scrapes one counter off `/metrics`.
fn metric(addr: &str, name: &str) -> u64 {
    let (status, _, body) = http(addr, "GET /metrics HTTP/1.1\r\n\r\n");
    assert!(status.contains("200"), "{status}");
    body.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name} in /metrics:\n{body}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cf-job-api-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn journal_args(journal: &Path) -> Vec<String> {
    vec![
        "-".into(),
        "--status-port".into(),
        "0".into(),
        "--journal".into(),
        journal.display().to_string(),
        "--workers".into(),
        "1".into(),
    ]
}

/// A job accepted over HTTP renders the same record bytes as the same
/// manifest line; killing the server mid-computation loses nothing —
/// `--resume` re-serves the answered job byte-identically and re-runs
/// the accepted-but-unanswered one under its original id.
#[test]
fn resume_re_serves_journaled_jobs_byte_identically() {
    let dir = temp_dir("resume");
    let journal = dir.join("j.wal");
    let args = journal_args(&journal);
    let args: Vec<&str> = args.iter().map(String::as_str).collect();

    // Life 1: answer job 0, accept job 1, die mid-computation.
    let serve = Serve::spawn(&args);
    let id =
        submit(&serve.addr, r#"{"workload":"matmul","order":256,"machine":"tiny","label":"w"}"#);
    assert_eq!(id, 0);
    let record = stream_record(&serve.addr, 0);
    assert!(record.starts_with("{\"job\":0,\"label\":\"w\""), "{record}");
    assert!(record.contains("\"ok\":true"), "{record}");
    // A slow job: accepted (and durably journaled) but killed long
    // before its simulation finishes.
    let slow =
        submit(&serve.addr, r#"{"workload":"matmul","order":4608,"machine":"f1","label":"slow"}"#);
    assert_eq!(slow, 1);
    serve.kill();

    // Life 2: --resume replays the answered job verbatim and re-runs the
    // unanswered accept under its original id.
    let mut resumed: Vec<&str> = args.clone();
    resumed.push("--resume");
    let serve = Serve::spawn(&resumed);
    let replayed = stream_record(&serve.addr, 0);
    assert_eq!(replayed, record, "resumed record must be byte-identical");
    let rerun = stream_record(&serve.addr, 1);
    assert!(rerun.starts_with("{\"job\":1,\"label\":\"slow\""), "{rerun}");
    assert!(rerun.contains("\"ok\":true"), "{rerun}");
    serve.kill();

    // The identical manifest line produces the identical record bytes on
    // the classic one-shot path.
    let manifest = dir.join("same.jobs");
    std::fs::write(&manifest, "workload=matmul order=256 machine=tiny label=w\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cfserve"))
        .arg(&manifest)
        .args(["--workers", "1"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run cfserve on manifest");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout.lines().next().expect("one record line");
    assert_eq!(line, record, "HTTP record and manifest record must be byte-identical");

    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent identical submits coalesce to one computation (both
/// subscribers get complete responses), a distinct compatible job rides
/// the same pool, overload sheds with 503 + Retry-After, and the
/// `cf_api_*` counters agree with the journal's JSONL records.
#[test]
fn coalesce_and_shed_with_metrics_agreeing_with_the_journal() {
    let dir = temp_dir("coalesce");
    let journal = dir.join("j.wal");
    let mut args = journal_args(&journal);
    args.extend(["--max-inflight".into(), "2".into()]);
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let serve = Serve::spawn(&args);

    // The leader grinds a big uncached matmul for seconds — long enough
    // that the identical follower, the queued job and the shed probe all
    // land while it is still running.
    let big = r#"{"workload":"matmul","order":4608,"machine":"f1","label":"lead"}"#;
    let lead = submit(&serve.addr, big);
    let follow = submit(&serve.addr, big);
    assert_eq!((lead, follow), (0, 1));
    let queued = submit(
        &serve.addr,
        r#"{"workload":"matmul","order":2048,"machine":"f1","label":"queued"}"#,
    );
    assert_eq!(queued, 2);

    // In-flight is now 2 (leader running, queued job waiting; the
    // follower subscribed instead of submitting), so the front door
    // sheds the next spec before journaling anything.
    let (status, headers, body) = post_job(
        &serve.addr,
        r#"{"workload":"matmul","order":1024,"machine":"f1","label":"shed"}"#,
    );
    assert!(status.contains("503"), "{status} {body}");
    let retry: u64 = header(&headers, "retry-after").expect("Retry-After").parse().unwrap();
    assert!((1..=30).contains(&retry), "{retry}");
    assert!(body.contains("\"retry_after_s\""), "{body}");

    // Every accepted job completes; leader and follower records differ
    // only in their id.
    let lead_rec = stream_record(&serve.addr, 0);
    let follow_rec = stream_record(&serve.addr, 1);
    let queued_rec = stream_record(&serve.addr, 2);
    assert_eq!(follow_rec.replacen("\"job\":1", "\"job\":0", 1), lead_rec);
    assert!(queued_rec.contains("\"label\":\"queued\""), "{queued_rec}");

    // Counters tell the same story: 3 accepted, 1 coalesced, 1 shed, and
    // exactly the three streamed record bodies.
    assert_eq!(metric(&serve.addr, "cf_api_accepted_total"), 3);
    assert_eq!(metric(&serve.addr, "cf_api_coalesced_total"), 1);
    assert_eq!(metric(&serve.addr, "cf_api_shed_total"), 1);
    let streamed = metric(&serve.addr, "cf_api_streamed_bytes_total");
    assert_eq!(streamed, (lead_rec.len() + follow_rec.len() + queued_rec.len()) as u64);
    serve.kill();

    // The journal agrees with the metrics: one accept and one completion
    // per accepted job, nothing for the shed one.
    let text = std::fs::read_to_string(dir.join("j.wal.api")).expect("api journal");
    let accepts = text.lines().filter(|l| l.contains("\"type\":\"accept\"")).count();
    let jobs = text.lines().filter(|l| l.contains("\"type\":\"job\"")).count();
    assert_eq!((accepts, jobs), (3, 3), "journal:\n{text}");
    for id in 0..3 {
        assert!(text.contains(&format!("\"job\":{id},")), "journal missing job {id}:\n{text}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
