//! Fleet chaos end-to-end tests: a real `cfrouter` over three real
//! `cfserve` backends with the seeded wire-fault layer
//! (`cf_runtime::netfault`) turned on — connect refusals, connect
//! latency, slow-loris trickle, mid-body tears, garbage status lines,
//! single-byte body corruption, and a mixed plan of all six. The
//! ISSUE-level guarantee under test: for every fault family the merged,
//! id-ordered fleet output is **byte-identical** to a fault-free
//! single-instance run, every streamed record passes its end-to-end
//! digest client-side (corruption never reaches a client), and the
//! damage is visible only in `cf_router_corrupt_responses` /
//! quarantine counters. One scenario drives the standalone
//! `cfrouter --fault-proxy` byte-mangler in front of a single backend
//! to prove repeated corruption moves it into the `quarantined` state
//! (distinct from `ejected`) in `/stats` and `/ring`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cambricon_f::runtime::serve::verify_record_json;

/// The chaos manifest (`assets/serve.jobs`) expanded client-side, in
/// manifest order — so router id K corresponds to baseline `"job":K`.
fn chaos_specs() -> Vec<String> {
    let lines: [(&str, usize); 7] = [
        (r#"{"workload":"vgg16","batch":1,"machine":"f1"}"#, 4),
        (r#"{"workload":"resnet152","batch":1,"machine":"f1"}"#, 4),
        (r#"{"workload":"matmul","order":1024,"machine":"f100"}"#, 4),
        (r#"{"workload":"mlp3","batch":4,"machine":"embedded"}"#, 2),
        (r#"{"workload":"knn","size":"small","machine":"f1"}"#, 2),
        (r#"{"program":"assets/demo.cfasm","machine":"tiny","label":"demo"}"#, 2),
        (r#"{"workload":"kmeans","size":"small","mode":"exec","seed":42,"machine":"tiny"}"#, 1),
    ];
    let mut specs = Vec::new();
    for (spec, repeat) in lines {
        for _ in 0..repeat {
            specs.push(spec.to_string());
        }
    }
    assert_eq!(specs.len(), 19, "the chaos manifest is 19 jobs");
    specs
}

/// The fault-free ground truth, computed once per test binary: one
/// `cfserve` run over the manifest itself, stdout captured as the
/// byte-exact expected output.
fn baseline() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let out = Command::new(env!("CARGO_BIN_EXE_cfserve"))
            .args(["assets/serve.jobs", "--workers", "2"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("run cfserve on the chaos manifest");
        assert!(out.status.success(), "baseline run failed");
        let text = String::from_utf8(out.stdout).expect("utf-8 records");
        assert_eq!(text.lines().count(), 19, "baseline:\n{text}");
        text
    })
}

/// A spawned process with its announced listen address and a stderr
/// drain thread (so the child never blocks on a full pipe).
struct Proc {
    child: Child,
    addr: String,
    drain: Option<JoinHandle<()>>,
}

impl Proc {
    /// Spawns `bin` and scrapes the first stderr line starting with
    /// `announce` for the `http://<addr>` it carries.
    fn spawn(bin: &str, args: &[String], announce: &str) -> Proc {
        let mut child = Command::new(bin)
            .args(args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .unwrap_or_else(|| panic!("{bin} exited before announcing"))
                .expect("read stderr");
            if line.starts_with(announce) {
                let rest = line.split("http://").nth(1).expect("http:// in announce");
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address")
                    .trim_end_matches('/')
                    .split(['(', ','])
                    .next()
                    .expect("address")
                    .to_string();
            }
        };
        let drain = std::thread::spawn(move || for _ in lines.by_ref() {});
        Proc { child, addr, drain: Some(drain) }
    }

    fn kill(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
        if let Some(drain) = self.drain.take() {
            drain.join().ok();
        }
    }
}

fn spawn_backend(journal: &std::path::Path) -> Proc {
    let args: Vec<String> = vec![
        "-".into(),
        "--status-port".into(),
        "0".into(),
        "--journal".into(),
        journal.display().to_string(),
        "--workers".into(),
        "2".into(),
    ];
    Proc::spawn(env!("CARGO_BIN_EXE_cfserve"), &args, "cfserve: status on http://")
}

/// Spawns `cfrouter` over the given backend addresses with a fast
/// prober, hedging disabled (determinism), a generous failover budget
/// (chaos heals through retries), and any extra flags appended.
fn spawn_router(backends: &[&str], extra: &[&str]) -> Proc {
    let mut args: Vec<String> = Vec::new();
    for addr in backends {
        args.push("--backend".into());
        args.push((*addr).into());
    }
    args.extend(["--probe-interval-ms".into(), "100".into()]);
    args.extend(["--hedge-after-ms".into(), "0".into()]);
    args.extend(["--failover-retries".into(), "5".into()]);
    args.extend(extra.iter().map(|s| (*s).to_string()));
    Proc::spawn(env!("CARGO_BIN_EXE_cfrouter"), &args, "cfrouter: routing ")
}

/// Spawns `cfrouter --fault-proxy` — the standalone byte-level fault
/// proxy — in front of `upstream` with the given seeded spec.
fn spawn_fault_proxy(upstream: &str, seed: u64, spec: &str) -> Proc {
    let args: Vec<String> = vec![
        "--fault-proxy".into(),
        upstream.into(),
        "--netfault-seed".into(),
        seed.to_string(),
        "--netfault-spec".into(),
        spec.into(),
    ];
    Proc::spawn(env!("CARGO_BIN_EXE_cfrouter"), &args, "cfrouter: fault proxy for ")
}

/// One HTTP exchange against `addr`; the server closes the connection
/// after every response, so reading to EOF frames the body.
fn http(addr: &str, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(150))).unwrap();
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Submits one spec through the router, asserting acceptance, and
/// returns the fleet-wide id.
fn submit(addr: &str, spec: &str) -> u64 {
    let request =
        format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}", spec.len());
    let (status, body) = http(addr, &request);
    assert!(status.contains("202"), "{status} {body}");
    let digits: String = body.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().expect("job id")
}

/// Long-polls one job through the router until its record streams back.
fn stream_record(addr: &str, id: u64) -> String {
    let (status, body) = http(addr, &format!("GET /jobs/{id}?timeout_s=120 HTTP/1.1\r\n\r\n"));
    assert!(status.contains("200"), "job {id}: {status} {body}");
    body
}

/// Scrapes one top-level counter off the router's `/stats` JSON.
fn stat(body: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = body.find(&needle).unwrap_or_else(|| panic!("no {name} in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cf-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Submits the 19 chaos jobs through the router (asserting sequential
/// fleet-wide ids), streams them all back **verifying every record's
/// end-to-end digest client-side** — no corrupt record may ever reach
/// a client — and returns the merged id-ordered output.
fn run_chaos_verified(router: &str) -> String {
    for (i, spec) in chaos_specs().iter().enumerate() {
        assert_eq!(submit(router, spec), i as u64, "fleet ids are sequential");
    }
    let mut merged = String::new();
    for id in 0..19u64 {
        let record = stream_record(router, id);
        assert!(
            verify_record_json(record.trim_end_matches('\n'), Some(id)),
            "record {id} reached the client with a bad digest: {record}"
        );
        merged.push_str(&record);
        merged.push('\n');
    }
    merged
}

/// One full chaos scenario: three backends, a router with the given
/// seeded wire-fault spec on its dialer, the 19-job manifest run
/// through it with per-record digest verification, and the merged
/// output asserted byte-identical to the fault-free baseline. Returns
/// the router's final `/stats` and `/metrics` bodies for
/// family-specific assertions.
fn chaos_scenario(tag: &str, seed: u64, spec: &str) -> (String, String) {
    let expected = baseline();
    let dir = temp_dir(tag);
    let backends: Vec<Proc> =
        (0..3).map(|i| spawn_backend(&dir.join(format!("b{i}.wal")))).collect();
    let addrs: Vec<&str> = backends.iter().map(|b| b.addr.as_str()).collect();
    let router = spawn_router(
        &addrs,
        &[
            "--netfault-seed",
            &seed.to_string(),
            "--netfault-spec",
            spec,
            // Probes flow through the fault connector too; a generous
            // ejection threshold keeps unlucky probe streaks from
            // perturbing routing mid-scenario.
            "--eject-after",
            "5",
            "--breaker-failures",
            "99",
        ],
    );

    let merged = run_chaos_verified(&router.addr);
    assert_eq!(merged, expected, "[{tag}] merged fleet output must match the fault-free run");

    let (status, stats) = http(&router.addr, "GET /stats HTTP/1.1\r\n\r\n");
    assert!(status.contains("200"), "[{tag}] {status}");
    assert_eq!(stat(&stats, "records_streamed"), 19, "[{tag}] {stats}");
    let (status, metrics) = http(&router.addr, "GET /metrics HTTP/1.1\r\n\r\n");
    assert!(status.contains("200"), "[{tag}] {status}");
    assert!(metrics.contains("cf_router_corrupt_responses"), "[{tag}] {metrics}");

    router.kill();
    for b in backends {
        b.kill();
    }
    std::fs::remove_dir_all(&dir).ok();
    (stats, metrics)
}

/// Connect refusals: the dialer's refused attempts fail over to ring
/// replicas and the retried exchanges (fresh attempt numbers) heal.
#[test]
fn refusal_chaos_keeps_output_byte_identical() {
    let (stats, _) = chaos_scenario("refuse", 11, "refuse=0.2");
    assert!(stat(&stats, "failovers") >= 1, "refusals must fail over: {stats}");
    assert_eq!(stat(&stats, "corrupt_responses"), 0, "refusal is not corruption: {stats}");
}

/// Connect latency: stalled dials slow exchanges down but change no
/// bytes — the run is merely slower, never wrong.
#[test]
fn connect_latency_chaos_keeps_output_byte_identical() {
    let (stats, _) = chaos_scenario("latency", 12, "connect_latency=0.25,latency_ms=40");
    assert_eq!(stat(&stats, "corrupt_responses"), 0, "latency is not corruption: {stats}");
}

/// Slow-loris trickle: responses dribble back in small chunks well
/// inside the read timeout — again slower, never wrong.
#[test]
fn trickle_chaos_keeps_output_byte_identical() {
    let (stats, _) = chaos_scenario("trickle", 13, "trickle=0.25,trickle_ms=40");
    assert_eq!(stat(&stats, "corrupt_responses"), 0, "trickle is not corruption: {stats}");
}

/// Mid-body connection tears: the reply dies short of its declared
/// Content-Length; the router detects the torn frame and fails over.
#[test]
fn tear_chaos_keeps_output_byte_identical() {
    let (stats, _) = chaos_scenario("tear", 14, "tear=0.2");
    assert!(stat(&stats, "failovers") >= 1, "torn replies must fail over: {stats}");
}

/// Garbage status lines: the reply no longer starts with `HTTP/`; the
/// router rejects the frame and fails over.
#[test]
fn garbage_chaos_keeps_output_byte_identical() {
    let (stats, _) = chaos_scenario("garbage", 15, "garbage=0.2");
    assert!(stat(&stats, "failovers") >= 1, "garbage replies must fail over: {stats}");
}

/// Single-byte body corruption: the frame is well-formed but the
/// payload lies — only the end-to-end digest catches it. The router
/// must count every corrupt response and never let one through.
#[test]
fn corruption_chaos_keeps_output_byte_identical() {
    let (stats, metrics) = chaos_scenario("corrupt", 16, "corrupt=0.2");
    let corrupt = stat(&stats, "corrupt_responses");
    assert!(corrupt >= 1, "corruption must be caught and counted: {stats}");
    // The counter is also on the Prometheus exposition.
    let line = metrics
        .lines()
        .find(|l| l.starts_with("cf_router_corrupt_responses "))
        .unwrap_or_else(|| panic!("no cf_router_corrupt_responses sample: {metrics}"));
    let sample: u64 = line.split_whitespace().nth(1).expect("sample").parse().expect("u64");
    assert!(sample >= corrupt, "metrics sample lags /stats: {line} vs {corrupt}");
}

/// The mixed seeded plan: all six fault families at once, still
/// byte-identical output and zero corrupt records delivered.
#[test]
fn mixed_chaos_plan_keeps_output_byte_identical() {
    let spec = "refuse=0.06,connect_latency=0.08,latency_ms=25,trickle=0.08,trickle_ms=25,\
                tear=0.06,garbage=0.06,corrupt=0.06";
    chaos_scenario("mixed", 17, spec);
}

/// The standalone fault proxy corrupting **every** byte stream from one
/// of three backends: the router's digest verification catches each
/// corrupt response, moves the backend into `quarantined` (distinct
/// from `ejected` — its `/healthz` still answers 200 through the
/// proxy), and serves the full manifest byte-identically from the two
/// trustworthy replicas.
#[test]
fn always_corrupting_proxy_gets_quarantined_and_output_stays_byte_identical() {
    let expected = baseline();
    let dir = temp_dir("quarantine");
    let backends: Vec<Proc> =
        (0..3).map(|i| spawn_backend(&dir.join(format!("b{i}.wal")))).collect();
    // Backend 0 is reachable only through an always-corrupting proxy.
    let proxy = spawn_fault_proxy(&backends[0].addr, 99, "corrupt=1.0");
    let router = spawn_router(
        &[&proxy.addr, &backends[1].addr, &backends[2].addr],
        &["--quarantine-after", "2", "--quarantine-ms", "60000"],
    );

    // Two fleet /metrics scrapes exchange with every backend; both
    // answers through the proxy fail their digest — two consecutive
    // corruptions, which is the quarantine threshold.
    for _ in 0..2 {
        let (status, _) = http(&router.addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(status.contains("200"), "{status}");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let (_, stats) = http(&router.addr, "GET /stats HTTP/1.1\r\n\r\n");
        if stat(&stats, "quarantines") >= 1 {
            break stats;
        }
        assert!(Instant::now() < deadline, "proxy-fronted backend never quarantined: {stats}");
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(stat(&stats, "corrupt_responses") >= 2, "{stats}");
    assert!(stats.contains("\"health\":\"quarantined\""), "{stats}");
    assert!(!stats.contains("\"health\":\"ejected\""), "quarantine, not ejection: {stats}");
    let (_, ring) = http(&router.addr, "GET /ring HTTP/1.1\r\n\r\n");
    assert!(ring.contains("\"health\":\"quarantined\""), "{ring}");

    // The fleet still serves the whole manifest — from the two
    // trustworthy replicas — byte-identically, and no corrupt record
    // ever reaches the client.
    let merged = run_chaos_verified(&router.addr);
    assert_eq!(merged, expected, "merged fleet output must match the fault-free run");

    // The quarantined backend took no jobs, and the damage is on the
    // Prometheus exposition too.
    let (_, stats) = http(&router.addr, "GET /stats HTTP/1.1\r\n\r\n");
    assert_eq!(stat(&stats, "records_streamed"), 19, "{stats}");
    assert!(stats.contains("\"health\":\"quarantined\""), "still quarantined: {stats}");
    let (_, metrics) = http(&router.addr, "GET /metrics HTTP/1.1\r\n\r\n");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("cf_router_quarantines_total "))
        .unwrap_or_else(|| panic!("no cf_router_quarantines_total sample: {metrics}"));
    let sample: u64 = line.split_whitespace().nth(1).expect("sample").parse().expect("u64");
    assert!(sample >= 1, "{line}");

    router.kill();
    proxy.kill();
    for b in backends {
        b.kill();
    }
    std::fs::remove_dir_all(&dir).ok();
}
