//! Cross-crate integration: sanity invariants of the performance model
//! and the paper-shape claims that the experiment harness relies on.

use cambricon_f::core::{Machine, MachineConfig, OptFlags};
use cambricon_f::isa::{Opcode, Program, ProgramBuilder};
use cambricon_f::model::gpu::GpuSystem;
use cambricon_f::workloads::{ml, nets};

fn matmul(n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let a = b.alloc("a", vec![n, n]);
    let w = b.alloc("w", vec![n, n]);
    b.apply(Opcode::MatMul, [a, w]).unwrap();
    b.build()
}

#[test]
fn attained_performance_never_exceeds_peak() {
    for cfg in [MachineConfig::cambricon_f1(), MachineConfig::cambricon_f100()] {
        let machine = Machine::new(cfg);
        for program in [matmul(512), matmul(2048)] {
            let r = machine.simulate(&program).unwrap();
            assert!(r.peak_fraction <= 1.0 + 1e-9, "{}", r.peak_fraction);
            assert!(r.steady_seconds <= r.makespan_seconds + 1e-12);
        }
    }
}

#[test]
fn optimisations_never_hurt() {
    let program = matmul(2048);
    let base = Machine::new(MachineConfig::cambricon_f1().with_opts(OptFlags::none()))
        .simulate(&program)
        .unwrap();
    let full = Machine::new(MachineConfig::cambricon_f1()).simulate(&program).unwrap();
    assert!(
        full.makespan_seconds <= base.makespan_seconds * 1.001,
        "optimisations slowed matmul: {} vs {}",
        full.makespan_seconds,
        base.makespan_seconds
    );
    assert!(full.stats.root_traffic_bytes() <= base.stats.root_traffic_bytes());
}

#[test]
fn f1_beats_1080ti_on_the_dl_benchmarks() {
    // The Figure 15(a) headline, on the two deep networks (fast to
    // simulate; the full seven-benchmark suite runs in the bench harness).
    let machine = Machine::new(MachineConfig::cambricon_f1());
    let gpu = GpuSystem::gtx_1080ti();
    for (name, program) in [
        ("VGG-16", nets::build_program(&nets::vgg16(), 16).unwrap()),
        ("ResNet-152", nets::build_program(&nets::resnet152(), 16).unwrap()),
    ] {
        let cf = machine.simulate(&program).unwrap().attained_ops;
        let gp = gpu.attained_ops(name).unwrap();
        assert!(
            cf > 1.4 * gp,
            "{name}: Cambricon-F1 {:.2} Tops vs 1080Ti {:.2} Tops",
            cf / 1e12,
            gp / 1e12
        );
    }
}

#[test]
fn f1_reaches_the_ridge_point_on_vgg() {
    // §6: "The operational intensity of all seven benchmarks on
    // Cambricon-F1 has reached the ridge point of the roofline."
    let cfg = MachineConfig::cambricon_f1();
    let ridge = cfg.peak_ops() / cfg.root_bw_bytes();
    let r = Machine::new(cfg).simulate(&nets::build_program(&nets::vgg16(), 16).unwrap()).unwrap();
    assert!(
        r.root_intensity >= ridge,
        "VGG-16 OI {:.1} below the ridge {ridge:.1}",
        r.root_intensity
    );
}

#[test]
fn control_bound_ml_hurts_f100_more_than_f1() {
    // §6: the small-granularity benchmarks perform *relatively* worse on
    // the bigger machine (control latency cannot be hidden).
    let size = ml::MlSize { samples: 65536, dims: 512, classes: 128, queries: 64, iters: 1 };
    let program = ml::lvq_benchmark_program(&size).unwrap();
    let f1 = Machine::new(MachineConfig::cambricon_f1()).simulate(&program).unwrap();
    let f100 = Machine::new(MachineConfig::cambricon_f100()).simulate(&program).unwrap();
    assert!(
        f100.peak_fraction < f1.peak_fraction,
        "LVQ peak fraction should drop on F100: {} vs {}",
        f100.peak_fraction,
        f1.peak_fraction
    );
}

#[test]
fn deeper_hierarchies_add_no_work_only_latency() {
    // Adding a level never changes the useful MAC count.
    let program = matmul(1024);
    let shallow = Machine::new(MachineConfig::tiny(1, 4, 4 << 20)).simulate(&program).unwrap();
    let deep = Machine::new(MachineConfig::tiny(3, 4, 4 << 20)).simulate(&program).unwrap();
    assert_eq!(shallow.stats.mac_ops, deep.stats.mac_ops);
    assert_eq!(shallow.stats.mac_ops, 2 * 1024u64.pow(3));
}

#[test]
fn same_program_text_runs_on_both_instances() {
    // Programming-productivity headline: serialise the program to FISA
    // assembly, parse it back, and run the identical text on both
    // machines.
    let program = matmul(256);
    let text = cambricon_f::isa::render_program(&program);
    let reparsed = cambricon_f::isa::parse_program(&text).unwrap();
    assert_eq!(program.instructions(), reparsed.instructions());
    for cfg in [MachineConfig::cambricon_f1(), MachineConfig::cambricon_f100()] {
        assert!(Machine::new(cfg).simulate(&reparsed).unwrap().makespan_seconds > 0.0);
    }
}

#[test]
fn timeline_is_consistent_with_simulation() {
    let program = nets::build_program(&nets::mlp3(), 32).unwrap();
    let machine = Machine::new(MachineConfig::cambricon_f1());
    let report = machine.simulate(&program).unwrap();
    let timeline = machine.timeline(&program, 2).unwrap();
    // The timeline's makespan is derived from the same pipeline schedule.
    let ratio = timeline.makespan / report.makespan_seconds;
    assert!((0.5..=2.0).contains(&ratio), "timeline {ratio} off simulation");
}
