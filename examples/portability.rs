//! The paper's headline property: **one sequential program, any machine
//! scale** — the same binary runs unmodified on four Cambricon-F
//! instances, from an embedded-class toy to the 2048-core supercomputer,
//! because FISA programs contain no hardware information (§4).
//!
//! Run with `cargo run --release --example portability`.

use cambricon_f::core::{Machine, MachineConfig};
use cambricon_f::isa::{render_program, Opcode, ProgramBuilder};
use cambricon_f::tensor::{gen::DataGen, Memory, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One program: normalise a batch of vectors and score them.
    let mut b = ProgramBuilder::new();
    let x = b.alloc("x", vec![64, 96]);
    let w = b.alloc("w", vec![96, 96]);
    let h = b.apply(Opcode::MatMul, [x, w])?;
    let h = b.apply(Opcode::Act1D, [h[0]])?;
    let s = b.apply(Opcode::HSum1D, [h[0]])?;
    let _ = s;
    let program = b.build();
    println!("--- the one program (FISA assembly) ---");
    for line in render_program(&program).lines().take(8) {
        println!("{line}");
    }
    println!("…\n");

    // Functional portability: identical results on machines of different
    // depth, fan-out and memory size.
    let mut reference: Option<Vec<f32>> = None;
    for cfg in [
        MachineConfig::tiny(1, 2, 64 << 10),
        MachineConfig::tiny(2, 4, 32 << 10),
        MachineConfig::tiny(3, 2, 16 << 10),
    ] {
        let name = cfg.name.clone();
        let machine = Machine::new(cfg);
        let mut mem = Memory::new(program.extern_elems() as usize);
        let data =
            DataGen::new(7).uniform(Shape::new(vec![program.extern_elems() as usize]), -0.5, 0.5);
        mem.as_mut_slice().copy_from_slice(data.data());
        machine.run(&program, &mut mem)?;
        let out = mem.read_region(&program.symbols().last().unwrap().1)?;
        println!("machine {name:<12} → result {:.6}", out.data()[0]);
        match &reference {
            None => reference = Some(out.data().to_vec()),
            Some(r) => {
                // Fractal execution reassociates the floating-point
                // reduction, so machines agree to rounding, not bit-exactly.
                let denom = r[0].abs().max(1.0);
                assert!(
                    ((r[0] - out.data()[0]) / denom).abs() < 1e-3,
                    "machines disagree: {} vs {}",
                    r[0],
                    out.data()[0]
                );
            }
        }
    }

    // Performance portability: the same binary, simulated from desktop to
    // supercomputer scale.
    println!();
    for cfg in [MachineConfig::cambricon_f1(), MachineConfig::cambricon_f100()] {
        let name = cfg.name.clone();
        let report = Machine::new(cfg).simulate(&program)?;
        println!(
            "machine {name:<16} → {:.2} µs (same code, zero porting effort)",
            report.makespan_seconds * 1e6
        );
    }
    Ok(())
}
