//! Explore the hierarchy design space (paper Table 4): equal-capability
//! Cambricon-F designs of different depth, sized by the MBOI rule and
//! evaluated with the simulator and the area/energy models.
//!
//! Run with `cargo run --release --example design_space`.

use cambricon_f::model::designspace::{evaluate, table4_designs, Design};
use cambricon_f::workloads::nets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let programs = vec![nets::build_program(&nets::vgg16(), 4)?, nets::matmul_program(4096)];
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>10}",
        "design", "perf Tops", "power W", "Tops/J", "area mm2"
    );
    for design in table4_designs() {
        let r = evaluate(&design, &programs)?;
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>9.2} {:>10.0}",
            r.name, r.perf_tops, r.power_w, r.efficiency, r.area_mm2
        );
    }
    // And one custom design: a shallow 2-level, 64-core accelerator.
    let custom = Design::new(vec![2, 32]);
    let r = evaluate(&custom, &programs)?;
    println!(
        "{:<16} {:>10.1} {:>10.1} {:>9.2} {:>10.0}   (custom)",
        r.name, r.perf_tops, r.power_w, r.efficiency, r.area_mm2
    );
    Ok(())
}
