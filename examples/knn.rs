//! The paper's driving example (Figure 11): k-Nearest-Neighbour
//! classification as a FISA program — functionally verified on a small
//! instance, then simulated at the paper's full Table 5 scale on
//! Cambricon-F1 and Cambricon-F100.
//!
//! Run with `cargo run --release --example knn`.

use cambricon_f::core::{Machine, MachineConfig};
use cambricon_f::tensor::{gen::DataGen, Memory, Shape};
use cambricon_f::workloads::ml::{
    knn_benchmark_program, knn_program_with_candidates, knn_reference, MlSize,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- functional verification on a small instance --------------------
    let small = MlSize { samples: 128, dims: 8, classes: 4, queries: 6, iters: 1 };
    let k = 7;
    let program = knn_program_with_candidates(&small, k, small.classes)?;
    let mut mem = Memory::new(program.extern_elems() as usize);
    let mut g = DataGen::new(2024);
    let (refs, labels) = g.clustered(small.samples, small.dims, small.classes);
    let queries = g.uniform(Shape::new(vec![small.queries, small.dims]), -4.0, 4.0);
    mem.write_region(program.symbol("refs").unwrap(), &refs)?;
    mem.write_region(program.symbol("labels").unwrap(), &labels)?;
    mem.write_region(program.symbol("queries").unwrap(), &queries)?;

    let machine = Machine::new(MachineConfig::tiny(2, 4, 32 << 10));
    machine.run(&program, &mut mem)?;
    let votes = mem.read_region(program.symbol("votes").unwrap())?;
    let expect = knn_reference(refs.data(), labels.data(), queries.data(), &small, k);
    for (q, votes_expect) in expect.iter().enumerate().take(small.queries) {
        let predicted = (0..small.classes)
            .max_by(|&a, &b| votes.get(&[q, a]).total_cmp(&votes.get(&[q, b])))
            .unwrap();
        let native = (0..small.classes).max_by_key(|&c| votes_expect[c]).unwrap();
        println!("query {q}: fractal machine votes class {predicted}, native reference {native}");
        assert_eq!(predicted, native);
    }
    println!("functional k-NN verified against the native reference ✓\n");

    // --- paper-scale performance (Table 5 sizes) ------------------------
    let paper = MlSize::paper();
    let bench = knn_benchmark_program(&paper, 16)?;
    for cfg in [MachineConfig::cambricon_f1(), MachineConfig::cambricon_f100()] {
        let name = cfg.name.clone();
        let report = Machine::new(cfg).simulate(&bench)?;
        println!(
            "{name}: {:.3} ms, {:.2} Tops ({:.1}% of peak), root intensity {:.1} ops/B",
            report.makespan_seconds * 1e3,
            report.attained_ops / 1e12,
            report.peak_fraction * 100.0,
            report.root_intensity
        );
    }
    Ok(())
}
