//! Quickstart: write one FISA program, execute it functionally on a small
//! fractal machine, then simulate it on the paper's Cambricon-F1.
//!
//! Run with `cargo run --release --example quickstart`.

use cambricon_f::core::{Machine, MachineConfig};
use cambricon_f::isa::{Opcode, ProgramBuilder};
use cambricon_f::tensor::{gen::DataGen, Memory, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny two-layer network: matmul → ReLU → matmul.
    let mut b = ProgramBuilder::new();
    let x = b.alloc("x", vec![32, 64]);
    let w1 = b.alloc("w1", vec![64, 128]);
    let w2 = b.alloc("w2", vec![128, 16]);
    let h = b.apply(Opcode::MatMul, [x, w1])?;
    let h = b.apply(Opcode::Act1D, [h[0]])?;
    let y = b.apply(Opcode::MatMul, [h[0], w2])?;
    let program = b.build();
    println!(
        "program: {} instructions, {} external elements",
        program.instructions().len(),
        program.extern_elems()
    );

    // Functional execution on a deliberately tiny machine — the fractal
    // decomposers must split everything, and the result is still exact.
    let tiny = Machine::new(MachineConfig::tiny(2, 2, 16 << 10));
    let mut mem = Memory::new(program.extern_elems() as usize);
    let mut g = DataGen::new(42);
    for name in ["x", "w1", "w2"] {
        let region = program.symbol(name).unwrap().clone();
        let data = g.uniform(Shape::new(region.shape().dims().to_vec()), -1.0, 1.0);
        mem.write_region(&region, &data)?;
    }
    tiny.run(&program, &mut mem)?;
    // `apply` names temporaries %t0, %t1, …; y is the last one.
    let _ = y;
    let out_region = &program.symbols().last().unwrap().1;
    let out = mem.read_region(out_region)?;
    println!("output[0..4] = {:?}", &out.data()[..4]);

    // Performance simulation on the desktop-scale Cambricon-F1.
    let f1 = Machine::new(MachineConfig::cambricon_f1());
    let report = f1.simulate(&program)?;
    println!(
        "Cambricon-F1: {:.2} µs, {:.2} Gops attained, {:.2}% of peak, root intensity {:.1} ops/B",
        report.makespan_seconds * 1e6,
        report.attained_ops / 1e9,
        report.peak_fraction * 100.0,
        report.root_intensity
    );
    Ok(())
}
