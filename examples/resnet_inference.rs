//! ResNet-152 inference (Table 5) on both Cambricon-F instances, with the
//! per-level traffic statistics that drive the paper's analysis.
//!
//! Run with `cargo run --release --example resnet_inference`.

use cambricon_f::core::{Machine, MachineConfig};
use cambricon_f::workloads::nets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = nets::resnet152();
    println!(
        "{}: {:.2e} params, {:.2e} ops/image (paper: 6.03e7 / 2.26e10)",
        net.name,
        net.param_count() as f64,
        net.ops_per_image() as f64
    );
    for (cfg, batch) in
        [(MachineConfig::cambricon_f1(), 16usize), (MachineConfig::cambricon_f100(), 64)]
    {
        let program = nets::build_program(&net, batch)?;
        let name = cfg.name.clone();
        let machine = Machine::new(cfg);
        let report = machine.simulate(&program)?;
        println!(
            "\n{name} (batch {batch}): {:.2} ms → {:.0} images/s, {:.2} Tops ({:.1}% of peak)",
            report.makespan_seconds * 1e3,
            batch as f64 / report.makespan_seconds,
            report.attained_ops / 1e12,
            report.peak_fraction * 100.0,
        );
        for (i, l) in report.stats.levels.iter().enumerate() {
            println!(
                "  level {i}: {:>9} sub-instructions, {:>8.2} GB link traffic, {:>7.2} GB elided by TTT",
                l.insts,
                l.dma_bytes as f64 / 1e9,
                l.elided_bytes as f64 / 1e9
            );
        }
    }
    Ok(())
}
