//! Cloud-to-end portability with a 3-D video network: the same Cv3D
//! program runs on the embedded (phone-class) instance, the desktop
//! Cambricon-F1 and the Cambricon-F100 supercomputer — and is functionally
//! verified on a tiny machine first.
//!
//! Run with `cargo run --release --example embedded_video`.

use cambricon_f::core::{Machine, MachineConfig};
use cambricon_f::tensor::{gen::DataGen, Memory, Shape};
use cambricon_f::workloads::nets::video3d_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional check on a miniature clip and machine.
    let small = video3d_program(1, 4, 8)?;
    let mut mem = Memory::new(small.extern_elems() as usize);
    let data = DataGen::new(3).uniform(Shape::new(vec![small.extern_elems() as usize]), -0.5, 0.5);
    mem.as_mut_slice().copy_from_slice(data.data());
    let mut flat = mem.clone();
    cambricon_f::ops::exec::execute_program(&small, &mut flat)?;
    Machine::new(MachineConfig::tiny(2, 2, 32 << 10)).run(&small, &mut mem)?;
    let region = &small.symbols().last().unwrap().1;
    let a = flat.read_region(region)?;
    let b = mem.read_region(region)?;
    assert!(a.approx_eq(&b, 1e-3), "fractal Cv3D diverged");
    println!("Cv3D network functionally verified against flat execution ✓\n");

    // The same video workload, phone → desktop → supercomputer.
    let clip = video3d_program(8, 16, 112)?;
    for cfg in [
        MachineConfig::cambricon_f_embedded(),
        MachineConfig::cambricon_f1(),
        MachineConfig::cambricon_f100(),
    ] {
        let name = cfg.name.clone();
        let report = Machine::new(cfg).simulate(&clip)?;
        println!(
            "{name:<22} {:>9.3} ms  {:>7.2} Tops  ({:>5.1}% of peak)",
            report.makespan_seconds * 1e3,
            report.attained_ops / 1e12,
            report.peak_fraction * 100.0
        );
    }
    println!("\nSame binary, three machine scales — zero porting (the paper's thesis).");
    Ok(())
}
