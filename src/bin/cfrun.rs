//! `cfrun` — run a FISA assembly program on a simulated Cambricon-F
//! machine.
//!
//! ```text
//! cfrun <program.cfasm> [--machine f1|f100|embedded|tiny] [--exec] [--timeline N]
//!       [--deadline-budget MS] [--trace] [--profile] [--trace-json PATH]
//! ```
//!
//! By default the program is performance-simulated; `--exec` additionally
//! executes it functionally (inputs seeded) and prints the output symbols;
//! `--timeline N` prints an N-level Gantt chart. `--deadline-budget MS`
//! bounds the whole run by a wall-clock budget: each phase (simulate,
//! timeline, exec) only starts while budget remains, so an overstaying
//! run degrades to the phases it completed instead of running away.
//!
//! `--trace` routes the simulate/exec phases through a single-worker
//! cf-runtime pool with span tracing enabled and prints the span
//! timeline (submit, start, cache hit/miss, settle, with per-stage
//! durations) to stderr after the run — the same spans `cfserve
//! --status-port` exposes at `/trace`. Outputs on stdout are unchanged.
//!
//! `--profile` runs the simulation with the deep profiler on and prints
//! the per-level stage attribution and the hottest instruction
//! signatures (the decomposition "flamegraph") after the headline
//! numbers; timing results are identical to an unprofiled run.
//! `--trace-json PATH` writes a Chrome Trace Event JSON file — the
//! per-level DMA/compute timeline, the fine ID/LD/EX/RD/WB stage
//! intervals and (with `--trace`) the runtime span tracks — loadable in
//! `chrome://tracing` or Perfetto.
//!
//! Exit codes: `0` success, `2` bad arguments (including an unknown
//! machine name), `3` the program failed to load or parse, `4` the
//! simulation or execution itself failed or the deadline budget ran out.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cambricon_f::core::Machine;
use cambricon_f::isa::parse_program;
use cambricon_f::runtime::manifest::{machine_by_name, MACHINE_NAMES};
use cambricon_f::runtime::obs::Tracer;
use cambricon_f::runtime::{Runtime, RuntimeConfig};
use cambricon_f::tensor::{gen::DataGen, Memory, Shape};

const EXIT_BAD_ARGS: u8 = 2;
const EXIT_VALIDATION: u8 = 3;
const EXIT_JOB_FAILED: u8 = 4;

/// Span-ring capacity for `--trace` (two phases of one program fit with
/// room to spare).
const TRACE_CAPACITY: usize = 1024;

/// Hottest-signature rows `--profile` prints.
const PROFILE_TOP_SIGNATURES: usize = 10;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfrun <program.cfasm> [--machine f1|f100|embedded|tiny] [--exec] [--timeline N] \\\n\
         \x20            [--deadline-budget MS] [--trace] [--profile] [--trace-json PATH]"
    );
    ExitCode::from(EXIT_BAD_ARGS)
}

/// Shuts the traced pool down and prints the span timeline to stderr.
/// No-op without `--trace`.
fn dump_trace(trace: Option<(Runtime, Arc<Tracer>)>) {
    if let Some((runtime, tracer)) = trace {
        runtime.shutdown();
        eprint!("{}", tracer.render_timeline());
    }
}

/// Whether budget remains to start `phase`; prints the skip message when
/// it ran out.
fn budget_left(t0: Instant, budget: Option<Duration>, phase: &str) -> bool {
    match budget {
        None => true,
        Some(b) if t0.elapsed() < b => true,
        Some(b) => {
            eprintln!(
                "cfrun: deadline budget of {:.0} ms exhausted before {phase} ({:.0} ms elapsed)",
                b.as_secs_f64() * 1e3,
                t0.elapsed().as_secs_f64() * 1e3,
            );
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else { return usage() };
    let mut machine_name = "f1".to_string();
    let mut do_exec = false;
    let mut timeline_depth: Option<usize> = None;
    let mut deadline_budget: Option<Duration> = None;
    let mut trace = false;
    let mut profile = false;
    let mut trace_json: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--machine" => match it.next() {
                Some(m) => machine_name = m.clone(),
                None => return usage(),
            },
            "--exec" => do_exec = true,
            "--trace" => trace = true,
            "--profile" => profile = true,
            "--trace-json" => match it.next() {
                Some(p) => trace_json = Some(p.clone()),
                None => return usage(),
            },
            "--timeline" => match it.next().and_then(|d| d.parse().ok()) {
                Some(d) => timeline_depth = Some(d),
                None => return usage(),
            },
            "--deadline-budget" => match it.next().and_then(|d| d.parse::<u64>().ok()) {
                Some(ms) => deadline_budget = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(cfg) = machine_by_name(&machine_name) else {
        eprintln!(
            "cfrun: unknown machine `{machine_name}` — valid machines are {}",
            MACHINE_NAMES.join(", ")
        );
        return ExitCode::from(EXIT_BAD_ARGS);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cfrun: cannot read {path}: {e}");
            return ExitCode::from(EXIT_VALIDATION);
        }
    };
    let program = match parse_program(&text) {
        Ok(p) => Arc::new(p),
        Err(e) => {
            eprintln!("cfrun: {path}: parse error: {e}");
            return ExitCode::from(EXIT_VALIDATION);
        }
    };
    println!(
        "{path}: {} instructions, {} KiB external data, machine {}",
        program.instructions().len(),
        program.extern_elems() * 4 / 1024,
        cfg.name
    );

    // With --trace, simulate/exec go through a single-worker cf-runtime
    // pool whose tracer records span events; stdout is unchanged.
    let trace_pool = if trace {
        let tracer = Arc::new(Tracer::new(TRACE_CAPACITY));
        tracer.set_enabled(true);
        let runtime = Runtime::new(RuntimeConfig {
            workers: 1,
            tracer: Some(Arc::clone(&tracer)),
            ..Default::default()
        });
        Some((runtime, tracer))
    } else {
        None
    };

    let t0 = Instant::now();
    let machine = Machine::new(cfg.clone());
    if !budget_left(t0, deadline_budget, "simulation") {
        dump_trace(trace_pool);
        return ExitCode::from(EXIT_JOB_FAILED);
    }
    // --profile takes the direct simulate_profiled path (the pool's
    // cached path cannot attribute anything fresh); timing is identical.
    let simulated = if profile {
        machine
            .simulate_profiled(&program, PROFILE_TOP_SIGNATURES)
            .map(|(report, prof)| (Arc::new(report), Some(prof)))
            .map_err(|e| e.to_string())
    } else {
        match &trace_pool {
            Some((runtime, _)) => runtime
                .submit_simulate(cfg.clone(), Arc::clone(&program))
                .join()
                .map(|sim| (sim.report, None))
                .map_err(|e| e.to_string()),
            None => {
                machine.simulate(&program).map(|r| (Arc::new(r), None)).map_err(|e| e.to_string())
            }
        }
    };
    match simulated {
        Ok((report, prof)) => {
            println!(
                "simulated: {:.3} ms | {:.3} Tops attained ({:.1}% of peak) | root intensity {:.1} ops/B | root traffic {:.3} MB",
                report.makespan_seconds * 1e3,
                report.attained_ops / 1e12,
                report.peak_fraction * 100.0,
                report.root_intensity,
                report.stats.root_traffic_bytes() as f64 / 1e6,
            );
            if let Some(prof) = prof {
                print!("{}", prof.render_table(&cfg));
            }
        }
        Err(e) => {
            eprintln!("cfrun: simulation failed: {e}");
            dump_trace(trace_pool);
            return ExitCode::from(EXIT_JOB_FAILED);
        }
    }

    if let Some(depth) = timeline_depth {
        if !budget_left(t0, deadline_budget, "timeline") {
            dump_trace(trace_pool);
            return ExitCode::from(EXIT_JOB_FAILED);
        }
        match machine.timeline(&program, depth) {
            Ok(tl) => print!("{}", tl.render_ascii(depth + 1, 100)),
            Err(e) => eprintln!("cfrun: timeline failed: {e}"),
        }
    }

    if do_exec {
        if !budget_left(t0, deadline_budget, "functional execution") {
            dump_trace(trace_pool);
            return ExitCode::from(EXIT_JOB_FAILED);
        }
        let elems = program.extern_elems() as usize;
        let mut mem = Memory::new(elems);
        // The traced pool seeds inputs identically (DataGen 0xCAFE), so
        // both paths print the same symbols.
        let ran = match &trace_pool {
            Some((runtime, _)) => runtime
                .submit_exec(cfg.clone(), Arc::clone(&program), 0xCAFE)
                .join()
                .map(|res| mem.as_mut_slice().copy_from_slice(&res.memory))
                .map_err(|e| e.to_string()),
            None => {
                let data = DataGen::new(0xCAFE).uniform(Shape::new(vec![elems]), -1.0, 1.0);
                mem.as_mut_slice().copy_from_slice(data.data());
                machine.run(&program, &mut mem).map_err(|e| e.to_string())
            }
        };
        if let Err(e) = ran {
            eprintln!("cfrun: functional execution failed: {e}");
            dump_trace(trace_pool);
            return ExitCode::from(EXIT_JOB_FAILED);
        }
        for (name, region) in program.symbols().iter().rev().take(3).rev() {
            let t = match mem.read_region(region) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cfrun: cannot read back symbol `{name}`: {e}");
                    dump_trace(trace_pool);
                    return ExitCode::from(EXIT_JOB_FAILED);
                }
            };
            let preview: Vec<String> = t.data().iter().take(6).map(|v| format!("{v:.4}")).collect();
            println!("{name} {} = [{}…]", region.shape(), preview.join(", "));
        }
    }

    if let Some(path) = &trace_json {
        if !budget_left(t0, deadline_budget, "trace export") {
            dump_trace(trace_pool);
            return ExitCode::from(EXIT_JOB_FAILED);
        }
        // Full hierarchy depth unless --timeline narrowed it.
        let depth = timeline_depth.unwrap_or_else(|| cfg.depth());
        match machine.timeline(&program, depth) {
            Ok(tl) => {
                let mut events = cambricon_f::core::profile::chrome_trace_events(&cfg, &tl);
                if let Some((_, tracer)) = &trace_pool {
                    events.extend(tracer.chrome_events());
                }
                let body = serde_json::to_string(&serde_json::Value::Array(events));
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("cfrun: cannot write {path}: {e}");
                    dump_trace(trace_pool);
                    return ExitCode::from(EXIT_JOB_FAILED);
                }
                eprintln!(
                    "cfrun: wrote Chrome trace to {path} (load in chrome://tracing or Perfetto)"
                );
            }
            Err(e) => {
                eprintln!("cfrun: trace export failed: {e}");
                dump_trace(trace_pool);
                return ExitCode::from(EXIT_JOB_FAILED);
            }
        }
    }
    dump_trace(trace_pool);
    ExitCode::SUCCESS
}
