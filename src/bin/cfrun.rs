//! `cfrun` — run a FISA assembly program on a simulated Cambricon-F
//! machine.
//!
//! ```text
//! cfrun <program.cfasm> [--machine f1|f100|embedded|tiny] [--exec] [--timeline N]
//! ```
//!
//! By default the program is performance-simulated; `--exec` additionally
//! executes it functionally (inputs seeded) and prints the output symbols;
//! `--timeline N` prints an N-level Gantt chart.

use std::process::ExitCode;

use cambricon_f::core::Machine;
use cambricon_f::isa::parse_program;
use cambricon_f::runtime::manifest::{machine_by_name, MACHINE_NAMES};
use cambricon_f::tensor::{gen::DataGen, Memory, Shape};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfrun <program.cfasm> [--machine f1|f100|embedded|tiny] [--exec] [--timeline N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else { return usage() };
    let mut machine_name = "f1".to_string();
    let mut do_exec = false;
    let mut timeline_depth: Option<usize> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--machine" => match it.next() {
                Some(m) => machine_name = m.clone(),
                None => return usage(),
            },
            "--exec" => do_exec = true,
            "--timeline" => match it.next().and_then(|d| d.parse().ok()) {
                Some(d) => timeline_depth = Some(d),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(cfg) = machine_by_name(&machine_name) else {
        eprintln!(
            "cfrun: unknown machine `{machine_name}` — valid machines are {}",
            MACHINE_NAMES.join(", ")
        );
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: {} instructions, {} KiB external data, machine {}",
        program.instructions().len(),
        program.extern_elems() * 4 / 1024,
        cfg.name
    );

    let machine = Machine::new(cfg);
    match machine.simulate(&program) {
        Ok(report) => {
            println!(
                "simulated: {:.3} ms | {:.3} Tops attained ({:.1}% of peak) | root intensity {:.1} ops/B | root traffic {:.3} MB",
                report.makespan_seconds * 1e3,
                report.attained_ops / 1e12,
                report.peak_fraction * 100.0,
                report.root_intensity,
                report.stats.root_traffic_bytes() as f64 / 1e6,
            );
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(depth) = timeline_depth {
        match machine.timeline(&program, depth) {
            Ok(tl) => print!("{}", tl.render_ascii(depth + 1, 100)),
            Err(e) => eprintln!("timeline failed: {e}"),
        }
    }

    if do_exec {
        let mut mem = Memory::new(program.extern_elems() as usize);
        let data = DataGen::new(0xCAFE).uniform(
            Shape::new(vec![program.extern_elems() as usize]),
            -1.0,
            1.0,
        );
        mem.as_mut_slice().copy_from_slice(data.data());
        if let Err(e) = machine.run(&program, &mut mem) {
            eprintln!("functional execution failed: {e}");
            return ExitCode::FAILURE;
        }
        for (name, region) in program.symbols().iter().rev().take(3).rev() {
            let t = mem.read_region(region).expect("read back");
            let preview: Vec<String> = t.data().iter().take(6).map(|v| format!("{v:.4}")).collect();
            println!("{name} {} = [{}…]", region.shape(), preview.join(", "));
        }
    }
    ExitCode::SUCCESS
}
