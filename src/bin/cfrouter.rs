//! `cfrouter` — a fault-tolerant shard router over a fleet of `cfserve`
//! backends.
//!
//! ```text
//! cfrouter --backend HOST:PORT [--backend HOST:PORT ...] [--port N]
//!          [--vnodes N] [--probe-interval-ms N] [--probe-timeout-ms N]
//!          [--eject-after N] [--readmit-after N] [--failover-retries N]
//!          [--hedge-after-ms N] [--breaker-failures N]
//!          [--breaker-open-ms N] [--max-body-bytes N]
//! ```
//!
//! Jobs POSTed to the router's `/jobs` are consistent-hashed by
//! plan-cache fingerprint (machine × program identity) onto the backend
//! whose plan cache is already warm for that key range, and polled back
//! through `GET /jobs/<id>` under fleet-wide ids — a client cannot tell
//! the fleet from one big `cfserve`. A background prober watches every
//! backend's `/healthz`, ejecting failed instances (`--eject-after`
//! consecutive failed probes) and re-admitting them after
//! `--readmit-after` consecutive healthy ones; backends answering
//! `"draining"` are removed as *planned* — no failure counted. Failed
//! requests fail over to the next ring replica with bounded, jittered
//! backoff (`--failover-retries`); submissions slower than the observed
//! p95 (floored by `--hedge-after-ms`; `0` disables hedging) fire one
//! hedged duplicate and the first answer wins; per-backend circuit
//! breakers (`--breaker-failures` / `--breaker-open-ms`) stop hammering
//! a dying instance between probes. `GET /metrics` merges every
//! backend's Prometheus exposition (distinct `instance` labels) with
//! the router's own `cf_router_*` series; `GET /stats` and `GET /ring`
//! expose the counters and the routing table. The listener binds
//! 127.0.0.1 only. See DESIGN.md §10.
//!
//! Exit codes: `0` clean shutdown, `2` bad arguments.

use std::process::ExitCode;
use std::time::Duration;

use cambricon_f::runtime::api::DEFAULT_MAX_BODY_BYTES;
use cambricon_f::runtime::router::{Router, RouterConfig, RouterServer};
use cambricon_f::runtime::{BreakerConfig, RetryPolicy};

const EXIT_BAD_ARGS: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfrouter --backend HOST:PORT [--backend HOST:PORT ...] [--port N] \\\n\
         \x20               [--vnodes N] [--probe-interval-ms N] [--probe-timeout-ms N] \\\n\
         \x20               [--eject-after N] [--readmit-after N] [--failover-retries N] \\\n\
         \x20               [--hedge-after-ms N] [--breaker-failures N] \\\n\
         \x20               [--breaker-open-ms N] [--max-body-bytes N]"
    );
    eprintln!("each --backend is one cfserve --status-port address, e.g. 127.0.0.1:8100");
    ExitCode::from(EXIT_BAD_ARGS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RouterConfig::default();
    let mut port: u16 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--backend" => match it.next() {
                Some(addr) => config.backends.push(addr.clone()),
                None => return usage(),
            },
            "--port" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => port = n,
                None => return usage(),
            },
            "--vnodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.vnodes = n,
                None => return usage(),
            },
            "--probe-interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.probe_interval = Duration::from_millis(n),
                None => return usage(),
            },
            "--probe-timeout-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.probe_timeout = Duration::from_millis(n),
                None => return usage(),
            },
            "--eject-after" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.eject_after = n,
                None => return usage(),
            },
            "--readmit-after" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.readmit_after = n,
                None => return usage(),
            },
            "--failover-retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.retry = RetryPolicy { max_retries: n, ..config.retry };
                }
                None => return usage(),
            },
            "--hedge-after-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.hedge_floor = Duration::from_millis(n),
                None => return usage(),
            },
            "--breaker-failures" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.breaker = BreakerConfig { failure_threshold: n, ..config.breaker };
                }
                None => return usage(),
            },
            "--breaker-open-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.breaker =
                        BreakerConfig { open_for: Duration::from_millis(n), ..config.breaker };
                }
                None => return usage(),
            },
            "--max-body-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_body = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if config.backends.is_empty() {
        eprintln!("cfrouter: at least one --backend HOST:PORT is required");
        return usage();
    }
    if config.max_body == 0 {
        config.max_body = DEFAULT_MAX_BODY_BYTES;
    }

    let backends = config.backends.len();
    let router = Router::new(config);
    let server = match RouterServer::bind(port, router) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cfrouter: cannot bind port {port}: {e}");
            return ExitCode::from(EXIT_BAD_ARGS);
        }
    };
    eprintln!(
        "cfrouter: routing {backends} backend(s) on http://{} (GET /healthz /stats /ring /metrics, POST /jobs)",
        server.local_addr(),
    );
    // Serve until killed: the accept loop and the prober run on
    // background threads; this thread just keeps the process alive.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
