//! `cfrouter` — a fault-tolerant shard router over a fleet of `cfserve`
//! backends.
//!
//! ```text
//! cfrouter --backend HOST:PORT [--backend HOST:PORT ...] [--port N]
//!          [--vnodes N] [--probe-interval-ms N] [--probe-timeout-ms N]
//!          [--eject-after N] [--readmit-after N] [--failover-retries N]
//!          [--hedge-after-ms N] [--breaker-failures N]
//!          [--breaker-open-ms N] [--max-body-bytes N]
//!          [--quarantine-after N] [--quarantine-ms N]
//!          [--netfault-seed N] [--netfault-spec SPEC]
//!          [--slo-ms N] [--slo-objective F]
//! cfrouter --fault-proxy HOST:PORT [--port N] --netfault-seed N
//!          --netfault-spec SPEC
//! cfrouter --help
//! ```
//!
//! Jobs POSTed to the router's `/jobs` are consistent-hashed by
//! plan-cache fingerprint (machine × program identity) onto the backend
//! whose plan cache is already warm for that key range, and polled back
//! through `GET /jobs/<id>` under fleet-wide ids — a client cannot tell
//! the fleet from one big `cfserve`. A background prober watches every
//! backend's `/healthz`, ejecting failed instances (`--eject-after`
//! consecutive failed probes) and re-admitting them after
//! `--readmit-after` consecutive healthy ones; backends answering
//! `"draining"` are removed as *planned* — no failure counted. Failed
//! requests fail over to the next ring replica with bounded, jittered
//! backoff (`--failover-retries`); submissions slower than the observed
//! p95 (floored by `--hedge-after-ms`; `0` disables hedging) fire one
//! hedged duplicate and the first answer wins; per-backend circuit
//! breakers (`--breaker-failures` / `--breaker-open-ms`) stop hammering
//! a dying instance between probes.
//!
//! Every backend response is integrity-checked (`X-CF-Digest` header +
//! per-record digest field) before the router trusts it: a mismatch
//! counts in `cf_router_corrupt_responses`, fails over, and —
//! after `--quarantine-after` consecutive mismatches — quarantines the
//! backend for at least `--quarantine-ms` (distinct from `ejected` in
//! `/ring` and `/stats`). `--netfault-seed`/`--netfault-spec` decorate
//! the router's own dialer with the seeded wire-fault plan from
//! `cf_runtime::netfault` (chaos testing); `--fault-proxy HOST:PORT`
//! instead runs a standalone byte-level fault proxy in front of one
//! upstream — black-box chaos with no router involved. `GET /metrics`
//! merges every backend's Prometheus exposition (distinct `instance`
//! labels) with the router's own `cf_router_*` series; `GET /stats` and
//! `GET /ring` expose the counters and the routing table. The listener
//! binds 127.0.0.1 only. See DESIGN.md §10 and §11.
//!
//! **Tracing and SLOs.** Every accepted job gets a distributed trace
//! context (`X-CF-Trace` response header; a client-supplied header
//! parents the router's spans); `GET /trace/<trace-id>` merges the
//! router's dispatch/attempt spans with matching spans scraped from
//! every backend into one Chrome-trace JSON document. Finished records
//! carry an `X-CF-Attribution` latency breakdown. `--slo-ms N` sets a
//! latency target and turns on the `cf_slo_*` metric families
//! (good/bad counters, error-budget remaining, 5m/1h burn rates);
//! `--slo-objective F` sets the availability objective (default 0.99).
//! See DESIGN.md §16.
//!
//! Exit codes: `0` clean shutdown, `2` bad arguments.

use std::process::ExitCode;
use std::time::Duration;

use cambricon_f::runtime::api::DEFAULT_MAX_BODY_BYTES;
use cambricon_f::runtime::netfault::{FaultProxy, NetFaultPlan, NetFaultSpec};
use cambricon_f::runtime::router::{Router, RouterConfig, RouterServer};
use cambricon_f::runtime::{BreakerConfig, RetryPolicy};

const EXIT_BAD_ARGS: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfrouter --backend HOST:PORT [--backend HOST:PORT ...] [options]\n\
         \x20      cfrouter --fault-proxy HOST:PORT [--port N] --netfault-seed N --netfault-spec SPEC\n\
         \x20      cfrouter --help"
    );
    eprintln!("each --backend is one cfserve --status-port address, e.g. 127.0.0.1:8100");
    ExitCode::from(EXIT_BAD_ARGS)
}

/// The full flag list with the `RouterConfig` defaults filled in, so
/// `--help` is the documentation of record for tuning the fleet.
fn help() -> ExitCode {
    let d = RouterConfig::default();
    println!(
        "cfrouter — consistent-hash front door over N cfserve backends\n\
         \n\
         usage:\n\
         \x20 cfrouter --backend HOST:PORT [--backend HOST:PORT ...] [options]\n\
         \x20 cfrouter --fault-proxy HOST:PORT [--port N] --netfault-seed N --netfault-spec SPEC\n\
         \n\
         routing:\n\
         \x20 --backend HOST:PORT      a cfserve --status-port address (repeatable, required)\n\
         \x20 --port N                 listen port on 127.0.0.1 (default 0 = pick a free port)\n\
         \x20 --vnodes N               consistent-hash points per backend (default {vnodes})\n\
         \x20 --max-body-bytes N       client request-body cap (default {max_body})\n\
         \n\
         health probing:\n\
         \x20 --probe-interval-ms N    /healthz probe cadence (default {probe_interval})\n\
         \x20 --probe-timeout-ms N     per-probe connect/read timeout (default {probe_timeout})\n\
         \x20 --eject-after N          consecutive probe failures that eject (default {eject_after})\n\
         \x20 --readmit-after N        consecutive healthy probes that readmit (default {readmit_after})\n\
         \n\
         failover, hedging, breakers:\n\
         \x20 --failover-retries N     failover retry budget per request (default {retries})\n\
         \x20 --hedge-after-ms N       hedge-duplicate floor over the p95; 0 disables (default {hedge})\n\
         \x20 --breaker-failures N     consecutive failures that open a breaker (default {brk_fail})\n\
         \x20 --breaker-open-ms N      how long an open breaker rejects (default {brk_open})\n\
         \n\
         tracing and SLOs:\n\
         \x20 --slo-ms N               per-job latency target; enables the cf_slo_* series\n\
         \x20                          (default off; latency = backend total + submit dial + backoff)\n\
         \x20 --slo-objective F        availability objective in [0,1) (default {slo_obj})\n\
         \n\
         integrity and chaos:\n\
         \x20 --quarantine-after N     consecutive corrupt responses that quarantine (default {q_after})\n\
         \x20 --quarantine-ms N        minimum quarantine window (default {q_ms})\n\
         \x20 --netfault-seed N        seed for the wire-fault plan (default 0)\n\
         \x20 --netfault-spec SPEC     comma-separated site=rate pairs enabling wire faults:\n\
         \x20                          refuse, connect_latency, trickle, tear, garbage, corrupt\n\
         \x20                          (rates in [0,1]) plus latency_ms=N, trickle_ms=N\n\
         \x20 --fault-proxy HOST:PORT  run as a standalone byte-level fault proxy for this\n\
         \x20                          upstream instead of a router (black-box chaos)\n\
         \x20 --help                   this text",
        vnodes = d.vnodes,
        max_body = d.max_body,
        probe_interval = d.probe_interval.as_millis(),
        probe_timeout = d.probe_timeout.as_millis(),
        eject_after = d.eject_after,
        readmit_after = d.readmit_after,
        retries = d.retry.max_retries,
        hedge = d.hedge_floor.as_millis(),
        brk_fail = d.breaker.failure_threshold,
        brk_open = d.breaker.open_for.as_millis(),
        q_after = d.quarantine_after,
        q_ms = d.quarantine_for.as_millis(),
        slo_obj = d.slo_objective,
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RouterConfig::default();
    let mut port: u16 = 0;
    let mut netfault_seed: u64 = 0;
    let mut netfault_spec: Option<NetFaultSpec> = None;
    let mut fault_proxy: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return help(),
            "--backend" => match it.next() {
                Some(addr) => config.backends.push(addr.clone()),
                None => return usage(),
            },
            "--port" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => port = n,
                None => return usage(),
            },
            "--vnodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.vnodes = n,
                None => return usage(),
            },
            "--probe-interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.probe_interval = Duration::from_millis(n),
                None => return usage(),
            },
            "--probe-timeout-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.probe_timeout = Duration::from_millis(n),
                None => return usage(),
            },
            "--eject-after" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.eject_after = n,
                None => return usage(),
            },
            "--readmit-after" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.readmit_after = n,
                None => return usage(),
            },
            "--failover-retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.retry = RetryPolicy { max_retries: n, ..config.retry };
                }
                None => return usage(),
            },
            "--hedge-after-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.hedge_floor = Duration::from_millis(n),
                None => return usage(),
            },
            "--breaker-failures" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.breaker = BreakerConfig { failure_threshold: n, ..config.breaker };
                }
                None => return usage(),
            },
            "--breaker-open-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.breaker =
                        BreakerConfig { open_for: Duration::from_millis(n), ..config.breaker };
                }
                None => return usage(),
            },
            "--max-body-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_body = n,
                None => return usage(),
            },
            "--quarantine-after" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.quarantine_after = n,
                None => return usage(),
            },
            "--quarantine-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.quarantine_for = Duration::from_millis(n),
                None => return usage(),
            },
            "--slo-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.slo_target = Some(Duration::from_millis(n)),
                None => return usage(),
            },
            "--slo-objective" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if (0.0..1.0).contains(&f) => config.slo_objective = f,
                _ => return usage(),
            },
            "--netfault-seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => netfault_seed = n,
                None => return usage(),
            },
            "--netfault-spec" => match it.next() {
                Some(text) => match NetFaultSpec::parse(text) {
                    Ok(spec) => netfault_spec = Some(spec),
                    Err(e) => {
                        eprintln!("cfrouter: {e}");
                        return ExitCode::from(EXIT_BAD_ARGS);
                    }
                },
                None => return usage(),
            },
            "--fault-proxy" => match it.next() {
                Some(addr) => fault_proxy = Some(addr.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if let Some(upstream) = fault_proxy {
        if !config.backends.is_empty() {
            eprintln!("cfrouter: --fault-proxy and --backend are mutually exclusive");
            return usage();
        }
        let plan =
            NetFaultPlan::new(netfault_seed, netfault_spec.unwrap_or_else(NetFaultSpec::none));
        let proxy = match FaultProxy::bind(port, &upstream, plan) {
            Ok(proxy) => proxy,
            Err(e) => {
                eprintln!("cfrouter: cannot bind port {port}: {e}");
                return ExitCode::from(EXIT_BAD_ARGS);
            }
        };
        eprintln!(
            "cfrouter: fault proxy for {upstream} on http://{} (seed {netfault_seed})",
            proxy.local_addr(),
        );
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    if config.backends.is_empty() {
        eprintln!("cfrouter: at least one --backend HOST:PORT is required");
        return usage();
    }
    if config.max_body == 0 {
        config.max_body = DEFAULT_MAX_BODY_BYTES;
    }
    config.netfault = netfault_spec.map(|spec| NetFaultPlan::new(netfault_seed, spec));
    let chaos = config.netfault.is_some();

    let backends = config.backends.len();
    let router = Router::new(config);
    let server = match RouterServer::bind(port, router) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cfrouter: cannot bind port {port}: {e}");
            return ExitCode::from(EXIT_BAD_ARGS);
        }
    };
    let chaos_note = if chaos { ", netfault on" } else { "" };
    eprintln!(
        "cfrouter: routing {backends} backend(s) on http://{} (GET /healthz /stats /ring /metrics /trace/<trace-id>, POST /jobs{chaos_note})",
        server.local_addr(),
    );
    // Serve until killed: the accept loop and the prober run on
    // background threads; this thread just keeps the process alive.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
