//! `cfserve` — serve a manifest of simulation jobs through the
//! cf-runtime pool, streaming JSON-lines results.
//!
//! ```text
//! cfserve <manifest> [--workers N] [--cache-capacity N] [--no-cache]
//! ```
//!
//! The manifest grammar is documented in `cf_runtime::manifest` (one job
//! per line: `workload=vgg16 machine=f1 repeat=4 …`). Every job becomes
//! one JSON object on stdout, **in manifest order**, carrying only
//! deterministic fields — so two serves of the same manifest produce
//! byte-identical stdout regardless of worker count or cache settings.
//! Wall-clock timing and the runtime-stats summary go to stderr.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use cambricon_f::runtime::manifest::{self, JobKind, JobSpec};
use cambricon_f::runtime::{JobError, JobHandle, Runtime, RuntimeConfig};
use cambricon_f::tensor::fingerprint::StableHasher;

fn usage() -> ExitCode {
    eprintln!("usage: cfserve <manifest> [--workers N] [--cache-capacity N] [--no-cache]");
    eprintln!("manifest lines: workload=<name>|program=<file.cfasm> \\");
    eprintln!("    [machine=f1|f100|embedded|tiny] [mode=simulate|exec] [seed=N]");
    eprintln!("    [batch=N] [order=N] [size=small|paper] [repeat=N] [label=TAG]");
    ExitCode::from(2)
}

/// Escapes a string for a JSON value position.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

enum Outcome {
    Sim(JobHandle<cambricon_f::runtime::SimResult>),
    Exec(JobHandle<cambricon_f::runtime::ExecResult>),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(manifest_path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let mut workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut cache_capacity = 256usize;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = n,
                None => return usage(),
            },
            "--cache-capacity" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cache_capacity = n,
                None => return usage(),
            },
            "--no-cache" => cache_capacity = 0,
            _ => return usage(),
        }
    }

    let text = match std::fs::read_to_string(manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cfserve: cannot read {manifest_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let specs = match manifest::parse_manifest(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cfserve: {manifest_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if specs.is_empty() {
        eprintln!("cfserve: {manifest_path}: no jobs");
        return ExitCode::from(2);
    }

    // Resolve every program up front (shared across repeats via Arc) so
    // resolution errors abort before any job runs.
    let mut resolved: Vec<(JobSpec, Arc<cambricon_f::isa::Program>)> = Vec::new();
    for spec in specs {
        match manifest::resolve_program(&spec.source) {
            Ok(p) => resolved.push((spec, Arc::new(p))),
            Err(e) => {
                eprintln!("cfserve: {manifest_path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let runtime = Runtime::new(RuntimeConfig { workers, cache_capacity, ..Default::default() });
    let t0 = Instant::now();

    // Submit everything first (the pool interleaves freely), then join in
    // submission order so stdout is deterministic.
    let mut jobs: Vec<(usize, String, String, &'static str, Outcome)> = Vec::new();
    for (spec, program) in &resolved {
        for _ in 0..spec.repeat {
            let index = jobs.len();
            let outcome = match spec.kind {
                JobKind::Simulate => {
                    let cfg = manifest::machine_by_name(&spec.machine)
                        .expect("machine validated at parse time");
                    Outcome::Sim(runtime.submit_simulate(cfg, Arc::clone(program)))
                }
                JobKind::Exec { seed } => {
                    let cfg = manifest::machine_by_name(&spec.machine)
                        .expect("machine validated at parse time");
                    Outcome::Exec(runtime.submit_exec(cfg, Arc::clone(program), seed))
                }
            };
            let mode = match spec.kind {
                JobKind::Simulate => "simulate",
                JobKind::Exec { .. } => "exec",
            };
            jobs.push((index, spec.label.clone(), spec.machine.clone(), mode, outcome));
        }
    }
    let submitted = jobs.len();

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut failures = 0usize;
    for (index, label, machine, mode, outcome) in jobs {
        let head = format!(
            "{{\"job\":{index},\"label\":{},\"machine\":{},\"mode\":{}",
            json_str(&label),
            json_str(&machine),
            json_str(mode),
        );
        let line = match outcome {
            Outcome::Sim(handle) => match handle.join() {
                Ok(sim) => {
                    let r = &sim.report;
                    format!(
                        "{head},\"ok\":true,\"makespan_s\":{:?},\"steady_s\":{:?},\"attained_tops\":{:?},\"peak_fraction\":{:?},\"root_intensity\":{:?}}}",
                        r.makespan_seconds,
                        r.steady_seconds,
                        r.attained_ops / 1e12,
                        r.peak_fraction,
                        r.root_intensity,
                    )
                }
                Err(e) => job_error_line(&head, &e, &mut failures),
            },
            Outcome::Exec(handle) => match handle.join() {
                Ok(exec) => {
                    let mut h = StableHasher::new();
                    for v in &exec.memory {
                        h.write_f32(*v);
                    }
                    format!(
                        "{head},\"ok\":true,\"elems\":{},\"memory_hash\":\"{:016x}\"}}",
                        exec.memory.len(),
                        h.finish(),
                    )
                }
                Err(e) => job_error_line(&head, &e, &mut failures),
            },
        };
        if writeln!(out, "{line}").is_err() {
            return ExitCode::FAILURE;
        }
    }
    drop(out);

    let wall = t0.elapsed();
    let snap = runtime.stats().snapshot();
    eprintln!(
        "cfserve: {submitted} jobs in {:.3}s on {workers} worker(s) | cache {} hits / {} misses ({:.0}% hit rate) | mean queue wait {:.3}ms",
        wall.as_secs_f64(),
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_hit_rate() * 100.0,
        if submitted > 0 {
            snap.queue_wait.as_secs_f64() * 1e3 / submitted as f64
        } else {
            0.0
        },
    );
    for (i, w) in snap.per_worker.iter().enumerate() {
        eprintln!("cfserve:   worker {i}: {} job(s), {:.3}s busy", w.jobs, w.busy.as_secs_f64());
    }
    runtime.shutdown();

    if failures > 0 {
        eprintln!("cfserve: {failures} job(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn job_error_line(head: &str, e: &JobError, failures: &mut usize) -> String {
    *failures += 1;
    format!("{head},\"ok\":false,\"error\":{}}}", json_str(&e.to_string()))
}
