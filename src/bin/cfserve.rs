//! `cfserve` — serve a manifest of simulation jobs through the
//! cf-runtime pool, streaming JSON-lines results.
//!
//! ```text
//! cfserve <manifest> [--workers N] [--cache-capacity N] [--no-cache]
//!         [--retries N] [--fault-seed S] [--fault-spec SPEC]
//!         [--journal PATH] [--resume] [--compact-threshold BYTES]
//!         [--max-inflight N] [--stats-json PATH] [--status-port N]
//!         [--instance NAME]
//! ```
//!
//! The manifest grammar is documented in `cf_runtime::manifest` (one job
//! per line: `workload=vgg16 machine=f1 repeat=4 …`). Every job becomes
//! one JSON object on stdout, **in manifest order**, carrying only
//! deterministic fields — so two serves of the same manifest produce
//! byte-identical stdout regardless of worker count, cache settings or
//! (when retries mask them) injected faults. Wall-clock timing, the
//! runtime-stats summary and the failure summary go to stderr.
//!
//! `--journal PATH` write-ahead journals every finished job (fsync'd,
//! checksummed JSONL); after a crash, the same command line plus
//! `--resume` skips the journaled jobs and merges their recorded
//! outputs, producing stdout byte-identical to an uninterrupted run.
//! Journals past `--compact-threshold BYTES` (default 1 MiB, `0`
//! disables) are compacted in place: superseded and failed records are
//! dropped, the run-identity header and checksummed framing are
//! preserved, and the merged report is unchanged.
//! `--max-inflight N` sheds over-capacity submissions immediately
//! instead of queueing them unboundedly. `--stats-json PATH` dumps the
//! final runtime counters as one JSON object.
//!
//! `--status-port N` starts a loopback HTTP/1.1 status server (port `0`
//! picks a free port, printed to stderr) serving `GET /healthz` (200
//! with admission headroom, 503 when overloaded), `GET /stats` (the
//! live runtime-stats JSON), `GET /trace` (recent span events +
//! per-stage latency histograms) and `GET /metrics` (Prometheus text
//! exposition: every runtime counter, stage-latency histograms and the
//! simulator profile aggregate fed by `profile=true` manifest jobs)
//! while the run is in flight. `--instance NAME` sets the `instance`
//! label stamped on every `/metrics` series (default `cf-serve`).
//!
//! Exit codes: `0` all jobs succeeded, `2` bad arguments, `3` manifest
//! or journal validation failed — including resume onto a different
//! manifest or fault seed — (nothing ran), `4` at least one job
//! ultimately failed (after retries).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use std::sync::Arc;

use cambricon_f::runtime::obs::Obs;
use cambricon_f::runtime::serve::{
    render_record_json, serve_manifest, JournalOptions, ServeOptions, DEFAULT_COMPACT_THRESHOLD,
};
use cambricon_f::runtime::status::StatusServer;
use cambricon_f::runtime::{FaultPlan, FaultSpec, RetryPolicy};

/// Span-ring capacity behind `--status-port`'s `/trace` endpoint.
const TRACE_CAPACITY: usize = 4096;

const EXIT_BAD_ARGS: u8 = 2;
const EXIT_VALIDATION: u8 = 3;
const EXIT_JOB_FAILED: u8 = 4;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfserve <manifest> [--workers N] [--cache-capacity N] [--no-cache] \\\n\
         \x20              [--retries N] [--fault-seed S] [--fault-spec SPEC] \\\n\
         \x20              [--journal PATH] [--resume] [--compact-threshold BYTES] \\\n\
         \x20              [--max-inflight N] [--stats-json PATH] [--status-port N] \\\n\
         \x20              [--instance NAME]"
    );
    eprintln!("manifest lines: workload=<name>|program=<file.cfasm> \\");
    eprintln!("    [machine=f1|f100|embedded|tiny] [mode=simulate|exec] [seed=N]");
    eprintln!("    [batch=N] [order=N] [size=small|paper] [repeat=N] [label=TAG]");
    eprintln!("    [profile=true] [trace_json=PATH]");
    eprintln!("fault spec: comma-separated site=rate pairs, e.g.");
    eprintln!(
        "    panic=0.1,corrupt=0.05,latency=0.02,latency_ms=5,expire=0.01,mem=0.001,kill=0.005"
    );
    ExitCode::from(EXIT_BAD_ARGS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(manifest_path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let mut opts = ServeOptions::default();
    let mut fault_seed: Option<u64> = None;
    let mut fault_spec: Option<FaultSpec> = None;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut compact_threshold = DEFAULT_COMPACT_THRESHOLD;
    let mut stats_json: Option<String> = None;
    let mut status_port: Option<u16> = None;
    let mut instance: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => match it.next() {
                Some(p) => journal_path = Some(p.clone()),
                None => return usage(),
            },
            "--resume" => resume = true,
            "--compact-threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => compact_threshold = n,
                None => return usage(),
            },
            "--status-port" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => status_port = Some(n),
                None => return usage(),
            },
            "--instance" => match it.next() {
                Some(n) => instance = Some(n.clone()),
                None => return usage(),
            },
            "--max-inflight" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.load.max_in_flight = n,
                None => return usage(),
            },
            "--stats-json" => match it.next() {
                Some(p) => stats_json = Some(p.clone()),
                None => return usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.workers = n,
                None => return usage(),
            },
            "--cache-capacity" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.cache_capacity = n,
                None => return usage(),
            },
            "--no-cache" => opts.cache_capacity = 0,
            "--retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.retry = RetryPolicy::retries(n),
                None => return usage(),
            },
            "--fault-seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => fault_seed = Some(s),
                None => return usage(),
            },
            "--fault-spec" => match it.next().map(|v| FaultSpec::parse(v)) {
                Some(Ok(spec)) => fault_spec = Some(spec),
                Some(Err(e)) => {
                    eprintln!("cfserve: --fault-spec: {e}");
                    return ExitCode::from(EXIT_BAD_ARGS);
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if fault_seed.is_some() || fault_spec.is_some() {
        let spec = fault_spec.unwrap_or_else(FaultSpec::chaos);
        opts.fault_plan = Some(FaultPlan::new(fault_seed.unwrap_or(0), spec));
    }
    match journal_path {
        Some(path) => {
            opts.journal = Some(JournalOptions { path: path.into(), resume, compact_threshold });
        }
        None if resume => {
            eprintln!("cfserve: --resume requires --journal PATH");
            return usage();
        }
        None => {}
    }

    // Bind the status server before the run starts so probes can watch
    // the whole lifecycle; the bound port goes to stderr immediately.
    let mut _status_server = None;
    if let Some(port) = status_port {
        let obs = Obs::new(TRACE_CAPACITY);
        if let Some(name) = &instance {
            obs.set_instance(name);
        }
        match StatusServer::bind(port, Arc::clone(&obs)) {
            Ok(server) => {
                eprintln!(
                    "cfserve: status on http://{} (GET /healthz /stats /trace /metrics)",
                    server.local_addr()
                );
                _status_server = Some(server);
                opts.obs = Some(obs);
            }
            Err(e) => {
                eprintln!("cfserve: cannot bind status port {port}: {e}");
                return ExitCode::from(EXIT_BAD_ARGS);
            }
        }
    }

    let text = match std::fs::read_to_string(manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cfserve: cannot read {manifest_path}: {e}");
            return ExitCode::from(EXIT_VALIDATION);
        }
    };
    if text.lines().all(|l| l.split('#').next().unwrap_or("").trim().is_empty()) {
        eprintln!("cfserve: {manifest_path}: no jobs");
        return ExitCode::from(EXIT_VALIDATION);
    }

    let t0 = Instant::now();
    let report = match serve_manifest(&text, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cfserve: {manifest_path}: {e}");
            return ExitCode::from(EXIT_VALIDATION);
        }
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for record in &report.records {
        if writeln!(out, "{}", render_record_json(record)).is_err() {
            return ExitCode::from(EXIT_JOB_FAILED);
        }
    }
    drop(out);

    let wall = t0.elapsed();
    let snap = &report.stats;
    let submitted = report.records.len();
    eprintln!(
        "cfserve: {submitted} jobs in {:.3}s on {} worker(s) | cache {} hits / {} misses ({:.0}% hit rate) | mean queue wait {:.3}ms",
        wall.as_secs_f64(),
        report.workers,
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_hit_rate() * 100.0,
        if submitted > 0 {
            snap.queue_wait.as_secs_f64() * 1e3 / submitted as f64
        } else {
            0.0
        },
    );
    eprintln!(
        "cfserve: resilience | {} retries, {} corrupt cache hits healed, {} faults injected, {} worker respawns, {} shed",
        snap.retries, snap.cache_corruptions, snap.faults_injected, snap.worker_respawns, snap.shed,
    );
    if snap.shed_jobs > 0 || snap.resumed_jobs > 0 || snap.journal_bytes > 0 {
        eprintln!(
            "cfserve: durability | {} resumed from journal, {} journal bytes written, {} compaction(s) reclaimed {} bytes, {} submissions shed",
            snap.resumed_jobs,
            snap.journal_bytes,
            snap.journal_compactions,
            snap.journal_bytes_reclaimed,
            snap.shed_jobs,
        );
    }
    for (i, w) in snap.per_worker.iter().enumerate() {
        eprintln!("cfserve:   worker {i}: {} job(s), {:.3}s busy", w.jobs, w.busy.as_secs_f64());
    }

    if let Some(path) = &stats_json {
        if let Err(e) = std::fs::write(path, snap.render_json() + "\n") {
            eprintln!("cfserve: cannot write {path}: {e}");
            return ExitCode::from(EXIT_JOB_FAILED);
        }
    }

    let failures = report.failures();
    if failures > 0 {
        eprintln!("cfserve: {failures} job(s) failed:");
        for r in report.failed_records() {
            let err = match &r.outcome {
                Err(e) => e.to_string(),
                Ok(_) => continue,
            };
            eprintln!("cfserve:   job {} ({}): {err}", r.index, r.label);
        }
        return ExitCode::from(EXIT_JOB_FAILED);
    }
    ExitCode::SUCCESS
}
