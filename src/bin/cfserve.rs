//! `cfserve` — serve a manifest of simulation jobs through the
//! cf-runtime pool, streaming JSON-lines results.
//!
//! ```text
//! cfserve <manifest>|- [--workers N] [--cache-capacity N] [--no-cache]
//!         [--retries N] [--fault-seed S] [--fault-spec SPEC]
//!         [--journal PATH] [--resume] [--compact-threshold BYTES]
//!         [--max-inflight N] [--stats-json PATH] [--status-port N]
//!         [--instance NAME] [--listen] [--max-body-bytes N]
//! ```
//!
//! The manifest grammar is documented in `cf_runtime::manifest` (one job
//! per line: `workload=vgg16 machine=f1 repeat=4 …`). Every job becomes
//! one JSON object on stdout, **in manifest order**, carrying only
//! deterministic fields — so two serves of the same manifest produce
//! byte-identical stdout regardless of worker count, cache settings or
//! (when retries mask them) injected faults. Wall-clock timing, the
//! runtime-stats summary and the failure summary go to stderr.
//!
//! `--journal PATH` write-ahead journals every finished job (fsync'd,
//! checksummed JSONL); after a crash, the same command line plus
//! `--resume` skips the journaled jobs and merges their recorded
//! outputs, producing stdout byte-identical to an uninterrupted run.
//! Journals past `--compact-threshold BYTES` (default 1 MiB, `0`
//! disables) are compacted in place: superseded and failed records are
//! dropped, the run-identity header and checksummed framing are
//! preserved, and the merged report is unchanged.
//! `--max-inflight N` sheds over-capacity submissions immediately
//! instead of queueing them unboundedly. `--stats-json PATH` dumps the
//! final runtime counters as one JSON object.
//!
//! `--status-port N` starts a loopback HTTP/1.1 server (port `0` picks
//! a free port, printed to stderr) serving `GET /healthz`, `/stats`,
//! `/trace`, `/metrics` (Prometheus text exposition) and `/version` —
//! plus the **job API**: `POST /jobs` accepts a JSON job spec (the same
//! fields as one manifest line), journals the acceptance durably
//! *before* acknowledging the id, and `GET /jobs/<id>` long-polls the
//! finished record (byte-identical to the record the same manifest line
//! would produce). With `--status-port`, the manifest run and the job
//! API share one worker pool and one stats registry, so `cf_api_*`
//! counters land on the same `/metrics` page. The API's write-ahead
//! journal lives at `<--journal PATH>.api`; `--resume` replays it —
//! completed jobs answer from disk, journaled-but-unanswered accepts
//! re-run under their original ids. A manifest of `-` serves the API
//! only (requires `--status-port`); `--listen` keeps serving the API
//! after the manifest run finishes. `--max-body-bytes N` bounds request
//! bodies (413 beyond it; default 1 MiB). `--instance NAME` sets the
//! `instance` label stamped on every `/metrics` series (default
//! `cf-serve`).
//!
//! **Graceful drain.** In `--listen` / API-only mode, `SIGTERM` or
//! `POST /drain` begins a drain: `/healthz` flips to 503
//! `"status":"draining"` (so a router treats the removal as planned,
//! not failed), new `POST /jobs` submissions are refused, in-flight
//! jobs run to completion and stay pollable, the API journal is
//! fsync'd, and the process exits 0. Rolling restarts behind `cfrouter`
//! lose nothing.
//!
//! Exit codes: `0` all jobs succeeded, `2` bad arguments, `3` manifest
//! or journal validation failed — including resume onto a different
//! manifest or fault seed — (nothing ran), `4` at least one job
//! ultimately failed (after retries). In `--listen` / API-only mode the
//! process serves until killed or drained.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use std::sync::Arc;

use cambricon_f::runtime::api::{JobApi, DEFAULT_MAX_BODY_BYTES};
use cambricon_f::runtime::manifest;
use cambricon_f::runtime::obs::Obs;
use cambricon_f::runtime::serve::{
    render_record_json, serve_manifest, serve_specs_on, JournalOptions, ServeOptions, ServeReport,
    DEFAULT_COMPACT_THRESHOLD,
};
use cambricon_f::runtime::status::StatusServer;
use cambricon_f::runtime::{FaultPlan, FaultSpec, RetryPolicy, Runtime, RuntimeConfig};

/// Span-ring capacity behind `--status-port`'s `/trace` endpoint.
const TRACE_CAPACITY: usize = 4096;

/// How often the listen loop polls for a drain request.
const DRAIN_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// How often the drain path re-checks the pending-job count.
const DRAIN_SETTLE_POLL: std::time::Duration = std::time::Duration::from_millis(25);

/// SIGTERM-to-drain plumbing: the handler only flips an atomic (the one
/// operation that is async-signal-safe), and the listen loop polls it.
/// Declared against libc's `signal` directly — std already links libc on
/// unix, so this needs no new dependency.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Routes SIGTERM into the drain flag instead of immediate death.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a SIGTERM has arrived since [`install`].
    pub fn requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

const EXIT_BAD_ARGS: u8 = 2;
const EXIT_VALIDATION: u8 = 3;
const EXIT_JOB_FAILED: u8 = 4;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cfserve <manifest>|- [--workers N] [--cache-capacity N] [--no-cache] \\\n\
         \x20              [--retries N] [--fault-seed S] [--fault-spec SPEC] \\\n\
         \x20              [--journal PATH] [--resume] [--compact-threshold BYTES] \\\n\
         \x20              [--max-inflight N] [--stats-json PATH] [--status-port N] \\\n\
         \x20              [--instance NAME] [--listen] [--max-body-bytes N]"
    );
    eprintln!("manifest `-` serves the HTTP job API only (requires --status-port)");
    eprintln!("manifest lines: workload=<name>|program=<file.cfasm> \\");
    eprintln!("    [machine=f1|f100|embedded|tiny] [mode=simulate|exec] [seed=N]");
    eprintln!("    [batch=N] [order=N] [size=small|paper] [repeat=N] [label=TAG]");
    eprintln!("    [profile=true] [trace_json=PATH]");
    eprintln!("fault spec: comma-separated site=rate pairs, e.g.");
    eprintln!(
        "    panic=0.1,corrupt=0.05,latency=0.02,latency_ms=5,expire=0.01,mem=0.001,kill=0.005"
    );
    ExitCode::from(EXIT_BAD_ARGS)
}

/// Streams the report's records to stdout and its summaries to stderr;
/// `Err` carries the exit code.
fn emit_report(
    report: &ServeReport,
    wall: std::time::Duration,
    stats_json: Option<&str>,
) -> Result<(), ExitCode> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for record in &report.records {
        if writeln!(out, "{}", render_record_json(record)).is_err() {
            return Err(ExitCode::from(EXIT_JOB_FAILED));
        }
    }
    drop(out);

    let snap = &report.stats;
    let submitted = report.records.len();
    eprintln!(
        "cfserve: {submitted} jobs in {:.3}s on {} worker(s) | cache {} hits / {} misses ({:.0}% hit rate) | mean queue wait {:.3}ms",
        wall.as_secs_f64(),
        report.workers,
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_hit_rate() * 100.0,
        if submitted > 0 {
            snap.queue_wait.as_secs_f64() * 1e3 / submitted as f64
        } else {
            0.0
        },
    );
    eprintln!(
        "cfserve: resilience | {} retries, {} corrupt cache hits healed, {} faults injected, {} worker respawns, {} shed",
        snap.retries, snap.cache_corruptions, snap.faults_injected, snap.worker_respawns, snap.shed,
    );
    if snap.shed_jobs > 0 || snap.resumed_jobs > 0 || snap.journal_bytes > 0 {
        eprintln!(
            "cfserve: durability | {} resumed from journal, {} journal bytes written, {} compaction(s) reclaimed {} bytes, {} submissions shed",
            snap.resumed_jobs,
            snap.journal_bytes,
            snap.journal_compactions,
            snap.journal_bytes_reclaimed,
            snap.shed_jobs,
        );
    }
    for (i, w) in snap.per_worker.iter().enumerate() {
        eprintln!("cfserve:   worker {i}: {} job(s), {:.3}s busy", w.jobs, w.busy.as_secs_f64());
    }

    if let Some(path) = stats_json {
        if let Err(e) = std::fs::write(path, snap.render_json() + "\n") {
            eprintln!("cfserve: cannot write {path}: {e}");
            return Err(ExitCode::from(EXIT_JOB_FAILED));
        }
    }

    let failures = report.failures();
    if failures > 0 {
        eprintln!("cfserve: {failures} job(s) failed:");
        for r in report.failed_records() {
            let err = match &r.outcome {
                Err(e) => e.to_string(),
                Ok(_) => continue,
            };
            eprintln!("cfserve:   job {} ({}): {err}", r.index, r.label);
        }
        return Err(ExitCode::from(EXIT_JOB_FAILED));
    }
    Ok(())
}

/// One-line visibility for span-ring overflow: a dropped span means a
/// trace scraped later may be missing events (a `seq` gap marks the
/// spot), which is silent data loss for whoever reads the merged trace.
fn warn_dropped_spans(obs: &Obs) {
    let dropped = obs.tracer().dropped();
    if dropped > 0 {
        eprintln!(
            "cfserve: warning: {dropped} span(s) dropped from the /trace ring (capacity {TRACE_CAPACITY}); merged traces may have seq gaps"
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(manifest_path) = args.first().filter(|a| !a.starts_with("--") || *a == "-") else {
        return usage();
    };
    let api_only = manifest_path == "-";
    let mut opts = ServeOptions::default();
    let mut fault_seed: Option<u64> = None;
    let mut fault_spec: Option<FaultSpec> = None;
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut compact_threshold = DEFAULT_COMPACT_THRESHOLD;
    let mut stats_json: Option<String> = None;
    let mut status_port: Option<u16> = None;
    let mut instance: Option<String> = None;
    let mut listen = false;
    let mut max_body_bytes = DEFAULT_MAX_BODY_BYTES;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => match it.next() {
                Some(p) => journal_path = Some(p.clone()),
                None => return usage(),
            },
            "--resume" => resume = true,
            "--listen" => listen = true,
            "--compact-threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => compact_threshold = n,
                None => return usage(),
            },
            "--status-port" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => status_port = Some(n),
                None => return usage(),
            },
            "--instance" => match it.next() {
                Some(n) => instance = Some(n.clone()),
                None => return usage(),
            },
            "--max-inflight" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.load.max_in_flight = n,
                None => return usage(),
            },
            "--max-body-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_body_bytes = n,
                None => return usage(),
            },
            "--stats-json" => match it.next() {
                Some(p) => stats_json = Some(p.clone()),
                None => return usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.workers = n,
                None => return usage(),
            },
            "--cache-capacity" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.cache_capacity = n,
                None => return usage(),
            },
            "--no-cache" => opts.cache_capacity = 0,
            "--retries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.retry = RetryPolicy::retries(n),
                None => return usage(),
            },
            "--fault-seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => fault_seed = Some(s),
                None => return usage(),
            },
            "--fault-spec" => match it.next().map(|v| FaultSpec::parse(v)) {
                Some(Ok(spec)) => fault_spec = Some(spec),
                Some(Err(e)) => {
                    eprintln!("cfserve: --fault-spec: {e}");
                    return ExitCode::from(EXIT_BAD_ARGS);
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if fault_seed.is_some() || fault_spec.is_some() {
        let spec = fault_spec.unwrap_or_else(FaultSpec::chaos);
        opts.fault_plan = Some(FaultPlan::new(fault_seed.unwrap_or(0), spec));
    }
    match &journal_path {
        Some(path) => {
            opts.journal = Some(JournalOptions { path: path.into(), resume, compact_threshold });
        }
        None if resume => {
            eprintln!("cfserve: --resume requires --journal PATH");
            return usage();
        }
        None => {}
    }
    if (api_only || listen) && status_port.is_none() {
        eprintln!("cfserve: manifest `-` / --listen require --status-port");
        return usage();
    }

    // Bind the status server before the run starts so probes can watch
    // the whole lifecycle. The bound address is announced on stderr only
    // after the job API is published below, so a client that scrapes the
    // announce line can POST /jobs immediately.
    let mut _status_server = None;
    let mut obs_handle: Option<Arc<Obs>> = None;
    let mut status_addr = None;
    if let Some(port) = status_port {
        let obs = Obs::new(TRACE_CAPACITY);
        if let Some(name) = &instance {
            obs.set_instance(name);
        }
        match StatusServer::bind(port, Arc::clone(&obs)) {
            Ok(server) => {
                status_addr = Some(server.local_addr());
                _status_server = Some(server);
                obs_handle = Some(Arc::clone(&obs));
                opts.obs = Some(obs);
            }
            Err(e) => {
                eprintln!("cfserve: cannot bind status port {port}: {e}");
                return ExitCode::from(EXIT_BAD_ARGS);
            }
        }
    }

    let text = if api_only {
        String::new()
    } else {
        match std::fs::read_to_string(manifest_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cfserve: cannot read {manifest_path}: {e}");
                return ExitCode::from(EXIT_VALIDATION);
            }
        }
    };
    if !api_only && text.lines().all(|l| l.split('#').next().unwrap_or("").trim().is_empty()) {
        eprintln!("cfserve: {manifest_path}: no jobs");
        return ExitCode::from(EXIT_VALIDATION);
    }

    let t0 = Instant::now();
    if let Some(obs) = obs_handle {
        // Shared-runtime path: the manifest run and the HTTP job API use
        // one pool, one plan cache and one stats registry, so /metrics
        // tells a single story (cf_api_* included) and coalescing spans
        // both ingestion paths.
        let runtime = Arc::new(Runtime::new(RuntimeConfig {
            workers: opts.workers,
            cache_capacity: opts.cache_capacity,
            retry: opts.retry.clone(),
            breaker: opts.breaker.clone(),
            fault_plan: opts.fault_plan.clone(),
            load: opts.load,
            tracer: Some(Arc::clone(obs.tracer())),
            ..Default::default()
        }));
        obs.publish(runtime.stats_arc(), runtime.load_policy());

        // The API's write-ahead journal rides next to the manifest's.
        let api = match &journal_path {
            Some(path) => {
                let api_path = std::path::PathBuf::from(format!("{path}.api"));
                match JobApi::with_journal(
                    Arc::clone(&runtime),
                    &api_path,
                    resume,
                    compact_threshold,
                    max_body_bytes,
                ) {
                    Ok((api, summary)) => {
                        if summary.replayed > 0 || summary.resubmitted > 0 {
                            eprintln!(
                                "cfserve: api journal | {} job(s) replayed, {} accepted job(s) re-run",
                                summary.replayed, summary.resubmitted,
                            );
                        }
                        api
                    }
                    Err(e) => {
                        eprintln!("cfserve: api journal {}: {e}", api_path.display());
                        return ExitCode::from(EXIT_VALIDATION);
                    }
                }
            }
            None => JobApi::new(Arc::clone(&runtime), max_body_bytes),
        };
        obs.publish_api(Arc::clone(&api));
        if let Some(addr) = status_addr {
            eprintln!(
                "cfserve: status on http://{addr} (GET /healthz /stats /trace /metrics /version, POST /jobs /drain)"
            );
        }

        let mut exit = ExitCode::SUCCESS;
        if !api_only {
            let specs = match manifest::parse_manifest(&text) {
                Ok(specs) => specs,
                Err(e) => {
                    eprintln!("cfserve: {manifest_path}: {e}");
                    return ExitCode::from(EXIT_VALIDATION);
                }
            };
            let report = match serve_specs_on(&specs, &opts, &runtime) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cfserve: {manifest_path}: {e}");
                    return ExitCode::from(EXIT_VALIDATION);
                }
            };
            if let Err(code) = emit_report(&report, t0.elapsed(), stats_json.as_deref()) {
                exit = code;
            }
        }
        if api_only || listen {
            #[cfg(unix)]
            sigterm::install();
            eprintln!(
                "cfserve: serving the job API until killed or drained (POST /jobs, POST /drain)"
            );
            loop {
                std::thread::sleep(DRAIN_POLL);
                #[cfg(unix)]
                if sigterm::requested() {
                    obs.begin_drain();
                }
                if obs.draining() {
                    // Graceful drain: stop admitting (the status server
                    // already refuses POST /jobs), let in-flight jobs
                    // settle — they stay pollable throughout — then make
                    // the journal durable and exit cleanly.
                    eprintln!("cfserve: draining ({} job(s) pending)", api.pending());
                    while api.pending() > 0 {
                        std::thread::sleep(DRAIN_SETTLE_POLL);
                    }
                    api.sync_journal();
                    warn_dropped_spans(&obs);
                    eprintln!("cfserve: drained; exiting");
                    return exit;
                }
            }
        }
        warn_dropped_spans(&obs);
        return exit;
    }

    // No status server: the classic one-shot manifest path.
    let report = match serve_manifest(&text, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cfserve: {manifest_path}: {e}");
            return ExitCode::from(EXIT_VALIDATION);
        }
    };
    match emit_report(&report, t0.elapsed(), stats_json.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}
