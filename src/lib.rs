//! **cambricon-f** — a from-scratch Rust reproduction of *Cambricon-F:
//! Machine Learning Computers with Fractal von Neumann Architecture*
//! (Zhao et al., ISCA 2019).
//!
//! This façade crate re-exports the workspace:
//!
//! * [`tensor`] — shapes, strided regions, memories ([`cf_tensor`])
//! * [`isa`] — FISA, the fractal instruction set ([`cf_isa`])
//! * [`ops`] — reference kernels + fractal decomposition theory ([`cf_ops`])
//! * [`core`] — the fractal machine: controller, pipeline, simulator
//!   ([`cf_core`])
//! * [`model`] — roofline/MBOI/area/energy/GPU models ([`cf_model`])
//! * [`workloads`] — the paper's benchmark suite ([`cf_workloads`])
//! * [`runtime`] — concurrent simulation service: scheduler, plan cache,
//!   batch sweeps ([`cf_runtime`])
//!
//! # Quickstart
//!
//! ```
//! use cambricon_f::core::{Machine, MachineConfig};
//! use cambricon_f::isa::{Opcode, ProgramBuilder};
//! use cambricon_f::tensor::Memory;
//!
//! // Write one sequential program…
//! let mut b = ProgramBuilder::new();
//! let x = b.alloc("x", vec![64, 64]);
//! let w = b.alloc("w", vec![64, 64]);
//! b.apply(Opcode::MatMul, [x, w])?;
//! let program = b.build();
//!
//! // …and run the same binary on machines of any scale.
//! for cfg in [MachineConfig::cambricon_f1(), MachineConfig::cambricon_f100()] {
//!     let report = Machine::new(cfg).simulate(&program)?;
//!     assert!(report.makespan_seconds > 0.0);
//! }
//!
//! // Functionally, fractal execution is exact.
//! let machine = Machine::new(MachineConfig::tiny(2, 2, 16 << 10));
//! let mut mem = Memory::new(program.extern_elems() as usize);
//! machine.run(&program, &mut mem)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use cf_core as core;
pub use cf_isa as isa;
pub use cf_model as model;
pub use cf_ops as ops;
pub use cf_runtime as runtime;
pub use cf_tensor as tensor;
pub use cf_workloads as workloads;
