//! Property tests for the execution-timeline extractor: after the
//! extraction-time coalescing pass, every `(level, kind)` row is a
//! sorted sequence of disjoint intervals inside the makespan, and the
//! timeline's makespan agrees with the performance simulator's — the
//! Gantt chart and the headline number must tell the same story.

use cf_core::timeline::EventKind;
use cf_core::{Machine, MachineConfig};
use cf_isa::Program;
use cf_isa::{Opcode, ProgramBuilder};
use proptest::prelude::*;

/// A small random-shaped program: elementwise → matmul → activation,
/// the same mix the equivalence properties use.
fn program(rows: usize, cols: usize, with_act: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let x = b.alloc("x", vec![rows, cols]);
    let y = b.alloc("y", vec![rows, cols]);
    let z = b.apply(Opcode::Mul1D, [x, y]).unwrap();
    let w = b.alloc("w", vec![cols, rows]);
    let mm = b.apply(Opcode::MatMul, [z[0], w]).unwrap();
    if with_act {
        b.apply(Opcode::Act1D, [mm[0]]).unwrap();
    }
    b.build()
}

fn machine_for(choice: u8) -> MachineConfig {
    match choice % 3 {
        0 => MachineConfig::cambricon_f1(),
        1 => MachineConfig::cambricon_f_embedded(),
        _ => MachineConfig::tiny(3, 2, 1 << 20),
    }
}

proptest! {
    #[test]
    fn coalesced_rows_are_disjoint_and_sorted(
        rows in 2usize..48,
        cols in 2usize..48,
        with_act in any::<bool>(),
        machine in 0u8..3,
        depth in 1usize..4,
    ) {
        let cfg = machine_for(machine);
        let tl = Machine::new(cfg).timeline(&program(rows, cols, with_act), depth).unwrap();
        prop_assert!(tl.makespan > 0.0);
        let max_level = tl.events.iter().map(|e| e.level).max().unwrap_or(0);
        for level in 0..=max_level {
            for kind in [EventKind::Dma, EventKind::Compute] {
                let row: Vec<_> =
                    tl.level_events(level).filter(|e| e.kind == kind).collect();
                for e in &row {
                    prop_assert!(e.end > e.start, "degenerate interval at L{level}");
                    prop_assert!(e.start >= 0.0 && e.end <= tl.makespan + 1e-12,
                        "interval outside makespan at L{level}");
                }
                for pair in row.windows(2) {
                    prop_assert!(pair[0].end <= pair[1].start + 1e-15,
                        "L{level} {kind:?} overlap: [{:.3e},{:.3e}) then [{:.3e},{:.3e})",
                        pair[0].start, pair[0].end, pair[1].start, pair[1].end);
                }
            }
        }
    }

    #[test]
    fn timeline_makespan_matches_perf_sim(
        rows in 2usize..48,
        cols in 2usize..48,
        with_act in any::<bool>(),
        machine in 0u8..3,
        depth in 1usize..4,
    ) {
        let cfg = machine_for(machine);
        let program = program(rows, cols, with_act);
        let machine = Machine::new(cfg);
        let report = machine.simulate(&program).unwrap();
        let tl = machine.timeline(&program, depth).unwrap();
        let rel = (tl.makespan - report.makespan_seconds).abs()
            / report.makespan_seconds.max(f64::MIN_POSITIVE);
        prop_assert!(rel < 1e-9,
            "timeline {:.6e}s vs simulate {:.6e}s (rel err {rel:.3e})",
            tl.makespan, report.makespan_seconds);
    }
}
