//! Property tests for the cold-path optimisations: across randomized
//! machines and programs, the shape-memoized / arena-allocated /
//! parallel simulator must be **byte-identical** to the naive reference
//! path (same `PerfReport` numbers, same `Timeline` makespan), and the
//! shape-memo counters must reconcile (every table probe ends as exactly
//! one hit or one computed-and-inserted miss).

use cf_core::arena::PlanArena;
use cf_core::memo::PlanMemo;
use cf_core::perf::PerfSim;
use cf_core::plan::Planner;
use cf_core::{Machine, MachineConfig};
use cf_isa::{Opcode, Program, ProgramBuilder};
use proptest::prelude::*;

/// A random-ish program: a chain of ops over a `[rows, cols]` tile,
/// each step picked by one byte of `ops` (matmul, elementwise mul/add,
/// activation), so shapes stay valid by construction.
fn program_of(ops: &[u8], rows: usize, cols: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let mut cur = b.alloc("x0", vec![rows, cols]);
    let (r, mut c) = (rows, cols);
    for (i, &op) in ops.iter().enumerate() {
        cur = match op % 4 {
            0 => {
                let w = b.alloc(&format!("w{i}"), vec![c, rows]);
                c = rows;
                b.apply(Opcode::MatMul, [cur, w]).unwrap()[0]
            }
            1 => {
                let y = b.alloc(&format!("y{i}"), vec![r, c]);
                b.apply(Opcode::Mul1D, [cur, y]).unwrap()[0]
            }
            2 => b.apply(Opcode::Act1D, [cur]).unwrap()[0],
            _ => {
                let y = b.alloc(&format!("a{i}"), vec![r, c]);
                b.apply(Opcode::Add1D, [cur, y]).unwrap()[0]
            }
        };
    }
    b.build()
}

fn config_of(pick: u8, depth: usize, fanout: usize) -> MachineConfig {
    match pick % 3 {
        0 => MachineConfig::cambricon_f1(),
        1 => MachineConfig::tiny(depth, fanout, 8 << 10),
        _ => MachineConfig::tiny(depth, fanout, 32 << 10),
    }
}

proptest! {
    /// The headline invariant: optimized (memo + arena) and parallel
    /// cold paths produce bit-identical outcomes to the naive reference
    /// (disabled memo, fresh buffers), and the extracted timeline's
    /// makespan agrees to the bit.
    #[test]
    fn optimized_and_parallel_paths_match_naive_bit_for_bit(
        ops in prop::collection::vec(any::<u8>(), 1..5),
        rows in 4usize..48,
        cols in 4usize..48,
        pick in any::<u8>(),
        depth in 1usize..3,
        fanout in 2usize..4,
    ) {
        let program = program_of(&ops, rows, cols);
        let cfg = config_of(pick, depth, fanout);

        let naive = PerfSim::naive(&cfg).simulate(&program);
        let opt_sim = PerfSim::new(&cfg);
        let opt = opt_sim.simulate(&program);
        let par_sim = PerfSim::new(&cfg);
        let par = par_sim.simulate_parallel(&program, 3);

        // Tiny machines may legitimately refuse a program (capacity);
        // then every path must refuse it the same way.
        match (&naive, &opt, &par) {
            (Ok(n), Ok(o), Ok(p)) => {
                prop_assert_eq!(n.makespan.to_bits(), o.makespan.to_bits());
                prop_assert_eq!(n.steady.to_bits(), o.steady.to_bits());
                prop_assert_eq!(&n.stats, &o.stats);
                prop_assert_eq!(n.makespan.to_bits(), p.makespan.to_bits());
                prop_assert_eq!(n.steady.to_bits(), p.steady.to_bits());
                prop_assert_eq!(&n.stats, &p.stats);

                let tl = Machine::new(cfg.clone()).timeline(&program, 2).unwrap();
                prop_assert_eq!(tl.makespan.to_bits(), n.makespan.to_bits());
            }
            (Err(ne), Err(oe), Err(pe)) => {
                prop_assert_eq!(ne.to_string(), oe.to_string());
                prop_assert_eq!(ne.to_string(), pe.to_string());
            }
            other => prop_assert!(false, "paths disagree on success: {other:?}"),
        }
    }

    /// Counter reconciliation: every shape-memo probe resolves to exactly
    /// one hit or one computed-and-inserted miss — no lost inserts, no
    /// double fills — and the simulator reports the same counts through
    /// `cold_stats` as the memo it owns.
    #[test]
    fn shape_memo_counters_reconcile(
        ops in prop::collection::vec(any::<u8>(), 1..5),
        rows in 4usize..48,
        cols in 4usize..48,
        pick in any::<u8>(),
        depth in 1usize..3,
        fanout in 2usize..4,
    ) {
        let program = program_of(&ops, rows, cols);
        let cfg = config_of(pick, depth, fanout);

        let memo = PlanMemo::new();
        let arena = PlanArena::new();
        let planned = Planner::new(&cfg)
            .plan_root_with(program.instructions(), program.extern_elems(), &memo, &arena);
        prop_assert_eq!(memo.probes(), memo.hits() + memo.misses(),
            "probes {} != hits {} + misses {}", memo.probes(), memo.hits(), memo.misses());

        if planned.is_ok() {
            let sim = PerfSim::new(&cfg);
            if sim.simulate(&program).is_ok() {
                let cold = sim.cold_stats();
                // Deterministic: a second identical run reports identical
                // counters.
                let sim2 = PerfSim::new(&cfg);
                sim2.simulate(&program).unwrap();
                prop_assert_eq!(cold, sim2.cold_stats());
            }
        }
    }
}
