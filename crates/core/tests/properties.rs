//! Property tests for the fractal machine internals: the segmented
//! allocator never hands out overlapping live blocks, the pipeline
//! scheduler respects resource and ordering constraints under arbitrary
//! stage times, and arbitrary programs execute equivalently on arbitrary
//! machines.

use cf_core::memory::{SegmentedAllocator, RECYCLED_SEGMENTS};
use cf_core::{Machine, MachineConfig};
use cf_isa::{Opcode, ProgramBuilder};
use cf_tensor::{gen::DataGen, Memory, Shape};
use proptest::prelude::*;

proptest! {
    #[test]
    fn allocator_blocks_never_overlap_within_live_window(
        total in 400u64..4000,
        sizes in prop::collection::vec(1u64..60, 1..40),
    ) {
        let mut alloc = SegmentedAllocator::new(total);
        // Simulate a pipeline: each step allocates some blocks; blocks of
        // the last RECYCLED_SEGMENTS steps must never overlap each other.
        let mut live: Vec<(usize, u64, u64)> = Vec::new(); // (step, lo, hi)
        for (step, chunk) in sizes.chunks(3).enumerate() {
            alloc.begin_step(step);
            live.retain(|(s, _, _)| step < RECYCLED_SEGMENTS || *s > step - RECYCLED_SEGMENTS);
            for &sz in chunk {
                // Err means the segment is full — fine.
                if let Ok(off) = alloc.alloc(step, sz) {
                    let (lo, hi) = (off, off + sz);
                    for &(_, l, h) in &live {
                        prop_assert!(hi <= l || lo >= h, "overlap: [{lo},{hi}) vs [{l},{h})");
                    }
                    live.push((step, lo, hi));
                }
            }
        }
    }

    #[test]
    fn allocator_static_stacks_never_collide(
        total in 400u64..4000,
        ops in prop::collection::vec((any::<bool>(), 1u64..50), 1..30),
    ) {
        let mut alloc = SegmentedAllocator::new(total);
        let mut even: Vec<(u64, u64)> = Vec::new();
        let mut odd: Vec<(u64, u64)> = Vec::new();
        for (parity, sz) in ops {
            if let Ok(off) = alloc.alloc_static(parity, sz) {
                let block = (off, off + sz);
                for &(l, h) in even.iter().chain(&odd) {
                    prop_assert!(block.1 <= l || block.0 >= h, "static overlap");
                }
                if parity { odd.push(block) } else { even.push(block) }
            }
        }
    }

    #[test]
    fn random_programs_execute_equivalently(
        seed in 0u64..2000,
        depth in 1usize..3,
        fanout in 2usize..4,
        rows in 2usize..24,
        cols in 2usize..24,
    ) {
        // A random-ish three-instruction program over a [rows, cols] tile.
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![rows, cols]);
        let y = b.alloc("y", vec![rows, cols]);
        let z = b.apply(Opcode::Mul1D, [x, y]).unwrap();
        let w = b.alloc("w", vec![cols, rows]);
        let mm = b.apply(Opcode::MatMul, [z[0], w]).unwrap();
        b.apply(Opcode::Act1D, [mm[0]]).unwrap();
        let program = b.build();

        let mut flat = Memory::new(program.extern_elems() as usize);
        let data = DataGen::new(seed).uniform(
            Shape::new(vec![program.extern_elems() as usize]), -1.0, 1.0);
        flat.as_mut_slice().copy_from_slice(data.data());
        let mut fractal = flat.clone();
        cf_ops::exec::execute_program(&program, &mut flat).unwrap();
        Machine::new(MachineConfig::tiny(depth, fanout, 8 << 10))
            .run(&program, &mut fractal)
            .unwrap();
        for (name, region) in program.symbols() {
            let a = flat.read_region(region).unwrap();
            let c = fractal.read_region(region).unwrap();
            prop_assert!(
                a.approx_eq(&c, 1e-2),
                "symbol {} diverged by {:?}", name, a.max_abs_diff(&c)
            );
        }
    }

    #[test]
    fn simulation_time_scales_sanely_with_work(
        small in 64usize..128,
        factor in 2usize..4,
    ) {
        // More work must not take less time on the same machine.
        let build = |n: usize| {
            let mut b = ProgramBuilder::new();
            let a = b.alloc("a", vec![n, n]);
            let w = b.alloc("w", vec![n, n]);
            b.apply(Opcode::MatMul, [a, w]).unwrap();
            b.build()
        };
        let machine = Machine::new(MachineConfig::cambricon_f1());
        let t_small = machine.simulate(&build(small)).unwrap().makespan_seconds;
        let t_big = machine.simulate(&build(small * factor)).unwrap().makespan_seconds;
        prop_assert!(t_big >= t_small, "{t_big} < {t_small}");
    }
}

#[test]
fn perf_report_fields_are_internally_consistent() {
    let mut b = ProgramBuilder::new();
    let a = b.alloc("a", vec![512, 512]);
    let w = b.alloc("w", vec![512, 512]);
    b.apply(Opcode::MatMul, [a, w]).unwrap();
    let p = b.build();
    let r = Machine::new(MachineConfig::cambricon_f1()).simulate(&p).unwrap();
    let recomputed = r.attained_ops * r.makespan_seconds;
    assert!((recomputed - r.stats.total_ops() as f64).abs() / recomputed < 1e-9);
    assert!(r.root_intensity > 0.0);
}
