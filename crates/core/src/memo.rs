//! Shape-level memoization of fractal split decisions (the cold-path
//! optimisation).
//!
//! Every split choice the planner makes — SD's axis scoring, PD's
//! balanced grid — depends only on the opcode, the parameters and the
//! operand *shapes and strides*, never on absolute addresses: slicing is
//! pure offset arithmetic relative to each operand's base. K self-similar
//! sibling pieces therefore share one split computation. The memo keys
//! each decision on the canonical (offset-zeroed) form of the instruction
//! and rebases the cached outcome onto each sibling's real operand
//! addresses by translating every piece region by its operand's offset.
//!
//! One [`PlanMemo`] lives for the duration of one planner client — a
//! [`crate::perf::PerfSim`] keeps one across a whole simulation, the
//! functional executor one per plan — so entries never outlive the
//! machine configuration they were computed under.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::hash::{FxBuildHasher, FxHasher};

use cf_isa::{Instruction, Opcode};
use cf_ops::fractal::{PartialPiece, SplitOutcome};
use cf_tensor::Region;

/// Which planner decision an entry caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemoKind {
    /// [`Planner::parallel_split`](crate::plan::Planner) with fan-out `n`.
    Parallel {
        /// Target number of pieces.
        n: usize,
    },
    /// The best direct (non-reducing) split into `parts` pieces — the
    /// inner loop of the balanced-grid PD search.
    Direct {
        /// Number of pieces.
        parts: usize,
    },
    /// SD's axis choice at `level` under the static headroom it saw.
    Sd {
        /// Hierarchy level (the LFU op cost depends on it).
        level: usize,
        /// Static-segment bytes available (reduction feasibility).
        static_avail: u64,
    },
    /// The reduce-fallback outcome PD would take at fan-out `n` when no
    /// direct split exists — cached only for its partial footprint.
    PdFallback {
        /// Target number of pieces.
        n: usize,
    },
}

/// One cached split decision, stored in canonical coordinates.
#[derive(Debug)]
struct Entry {
    op: Opcode,
    params: [u64; 8],
    /// Per-operand (dims, strides), inputs then outputs.
    operands: Vec<(Vec<usize>, Vec<u64>)>,
    kind: MemoKind,
    /// The outcome for the offset-zeroed instruction (`None` = no split).
    value: Option<SplitOutcome>,
}

/// Memoization table for split decisions, keyed by instruction shape.
///
/// A disabled memo turns every lookup into a miss that is not recorded,
/// which makes the planner behave exactly like the naive (pre-memo)
/// implementation — the reference for byte-identity tests.
#[derive(Debug, Default)]
pub struct PlanMemo {
    enabled: bool,
    table: RefCell<HashMap<u64, Vec<Entry>, FxBuildHasher>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    probes: Cell<u64>,
}

impl PlanMemo {
    /// An empty, enabled memo.
    pub fn new() -> Self {
        PlanMemo { enabled: true, ..Default::default() }
    }

    /// A memo that never caches: the planner recomputes every split.
    pub fn disabled() -> Self {
        PlanMemo::default()
    }

    /// Whether lookups are served.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Split decisions served from the table.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Split decisions actually computed (and inserted).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Table probes (`lookup` calls). Every probe must
    /// end as exactly one hit or one computed-and-inserted miss, so
    /// `probes() == hits() + misses()` once planning completes — the
    /// reconciliation invariant the property tests check.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// Looks up the canonical outcome for `(inst, kind)` and maps it
    /// under the table borrow. `None` means a miss.
    pub(crate) fn lookup<R>(
        &self,
        inst: &Instruction,
        kind: MemoKind,
        map: impl FnOnce(&Option<SplitOutcome>) -> R,
    ) -> Option<R> {
        debug_assert!(self.enabled);
        self.probes.set(self.probes.get() + 1);
        let fp = fingerprint(inst, kind);
        let table = self.table.borrow();
        let hit = table
            .get(&fp)
            .and_then(|bucket| bucket.iter().find(|e| matches(e, inst, kind)))
            .map(|e| map(&e.value));
        if hit.is_some() {
            self.hits.set(self.hits.get() + 1);
        }
        hit
    }

    /// Records a computed canonical outcome.
    pub(crate) fn insert(&self, inst: &Instruction, kind: MemoKind, value: Option<SplitOutcome>) {
        debug_assert!(self.enabled);
        self.misses.set(self.misses.get() + 1);
        let fp = fingerprint(inst, kind);
        let entry = Entry {
            op: inst.op,
            params: inst.params.stable_bits(),
            operands: inst
                .inputs
                .iter()
                .chain(&inst.outputs)
                .map(|r| (r.shape().dims().to_vec(), r.strides().to_vec()))
                .collect(),
            kind,
            value,
        };
        self.table.borrow_mut().entry(fp).or_default().push(entry);
    }
}

/// Hash of everything a split decision can depend on. Allocation-free so
/// lookups stay cheap.
fn fingerprint(inst: &Instruction, kind: MemoKind) -> u64 {
    let mut h = FxHasher::default();
    (inst.op as u64).hash(&mut h);
    inst.params.stable_bits().hash(&mut h);
    for r in inst.inputs.iter().chain(&inst.outputs) {
        r.shape().dims().hash(&mut h);
        r.strides().hash(&mut h);
    }
    inst.inputs.len().hash(&mut h);
    match kind {
        MemoKind::Parallel { n } => (0u8, n as u64, 0u64).hash(&mut h),
        MemoKind::Sd { level, static_avail } => (1u8, level as u64, static_avail).hash(&mut h),
        MemoKind::Direct { parts } => (2u8, parts as u64, 0u64).hash(&mut h),
        MemoKind::PdFallback { n } => (3u8, n as u64, 0u64).hash(&mut h),
    }
    h.finish()
}

/// Exact key comparison against the live instruction (no allocation).
fn matches(e: &Entry, inst: &Instruction, kind: MemoKind) -> bool {
    e.kind == kind
        && e.op == inst.op
        && e.params == inst.params.stable_bits()
        && e.operands.len() == inst.inputs.len() + inst.outputs.len()
        && inst.inputs.iter().chain(&inst.outputs).zip(&e.operands).all(|(r, (dims, strides))| {
            r.shape().dims() == &dims[..] && r.strides() == &strides[..]
        })
}

/// The canonical (offset-zeroed) form of an instruction: same opcode,
/// parameters, shapes and strides, every operand based at element 0.
pub(crate) fn canonical(inst: &Instruction) -> Instruction {
    let zero = |r: &Region| Region::strided(0, r.shape().clone(), r.strides().to_vec());
    Instruction {
        op: inst.op,
        params: inst.params,
        inputs: inst.inputs.iter().map(zero).collect(),
        outputs: inst.outputs.iter().map(zero).collect(),
    }
}

/// Rebases a canonical outcome onto `inst`'s real operands: piece operand
/// `i` derives from parent operand `i`, so each region translates by the
/// parent operand's offset.
pub(crate) fn rebase(canon: &SplitOutcome, inst: &Instruction) -> SplitOutcome {
    let translate = |pieces: &[Region], bases: &[Region]| -> Vec<Region> {
        pieces.iter().zip(bases).map(|(p, b)| p.translated(b.offset())).collect()
    };
    match canon {
        SplitOutcome::Direct(pieces) => SplitOutcome::Direct(
            pieces
                .iter()
                .map(|p| Instruction {
                    op: p.op,
                    params: p.params,
                    inputs: translate(&p.inputs, &inst.inputs),
                    outputs: translate(&p.outputs, &inst.outputs),
                })
                .collect(),
        ),
        SplitOutcome::Reduce { pieces, kind } => SplitOutcome::Reduce {
            pieces: pieces
                .iter()
                .map(|p| PartialPiece {
                    op: p.op,
                    params: p.params,
                    inputs: translate(&p.inputs, &inst.inputs),
                    partial_shapes: p.partial_shapes.clone(),
                })
                .collect(),
            kind: *kind,
        },
    }
}

/// Total partial-output bytes of a canonical outcome (`Direct` ⇒ 0).
pub(crate) fn partial_bytes_of(outcome: &Option<SplitOutcome>) -> u64 {
    match outcome {
        Some(SplitOutcome::Reduce { pieces, .. }) => {
            pieces.iter().flat_map(|p| p.partial_shapes.iter()).map(cf_tensor::Shape::bytes).sum()
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{OpParams, Opcode};
    use cf_tensor::Shape;

    fn reg(offset: u64, dims: &[usize]) -> Region {
        Region::contiguous(offset, Shape::new(dims.to_vec()))
    }

    fn matmul(off: u64, m: usize, k: usize, n: usize) -> Instruction {
        Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(off, &[m, k]), reg(off + (m * k) as u64, &[k, n])],
            vec![reg(off + (m * k + k * n) as u64, &[m, n])],
        )
        .unwrap()
    }

    #[test]
    fn siblings_share_one_entry() {
        let memo = PlanMemo::new();
        let a = matmul(0, 64, 64, 64);
        let b = matmul(1_000_000, 64, 64, 64);
        let kind = MemoKind::Parallel { n: 4 };
        assert!(memo.lookup(&a, kind, |_| ()).is_none());
        memo.insert(&a, kind, None);
        assert!(memo.lookup(&b, kind, |v| assert!(v.is_none())).is_some());
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn kind_and_shape_discriminate() {
        let memo = PlanMemo::new();
        let a = matmul(0, 64, 64, 64);
        memo.insert(&a, MemoKind::Parallel { n: 4 }, None);
        assert!(memo.lookup(&a, MemoKind::Parallel { n: 2 }, |_| ()).is_none());
        assert!(memo.lookup(&a, MemoKind::Sd { level: 0, static_avail: 0 }, |_| ()).is_none());
        let c = matmul(0, 64, 64, 128);
        assert!(memo.lookup(&c, MemoKind::Parallel { n: 4 }, |_| ()).is_none());
    }

    #[test]
    fn rebase_translates_by_operand_offsets() {
        let base = matmul(4096, 32, 32, 32);
        let canon = canonical(&base);
        assert!(canon.inputs.iter().all(|r| r.offset() == 0));
        // A fake "split" of the canonical instruction: the pieces are the
        // canonical operands themselves.
        let outcome = SplitOutcome::Direct(vec![canon.clone()]);
        let rebased = rebase(&outcome, &base);
        let SplitOutcome::Direct(pieces) = rebased else { panic!() };
        assert_eq!(pieces[0].inputs[0].offset(), base.inputs[0].offset());
        assert_eq!(pieces[0].inputs[1].offset(), base.inputs[1].offset());
        assert_eq!(pieces[0].outputs[0].offset(), base.outputs[0].offset());
    }
}
