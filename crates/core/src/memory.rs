//! The controller's memory management (paper §3.5, Figure 9).
//!
//! A node's local storage is divided into four spaces: three *recycled*
//! segments rotated by the pipeline (an instruction reaching LD may reuse
//! the segment of the instruction at WB — with five stages and the DMA
//! shared between LD and WB, at most three instructions hold memory at
//! once), and one *static* segment for sequential-decomposition data that
//! lives across multiple FISA cycles, allocated double-ended by instruction
//! parity to keep adjacent lifecycles from overlapping.
//!
//! Allocation is a bump pointer per stack ("memory space is always
//! allocated in the list order, consistent with the time order that the
//! Controller requests") and is never explicitly freed: recycled segments
//! are simply re-filled by the instruction three cycles later.

use crate::CoreError;

/// Number of recycled segments (pipeline slots able to hold operand data
/// simultaneously).
pub const RECYCLED_SEGMENTS: usize = 3;

/// Bump allocator over one node's local storage, laid out as
/// `[recycled 0 | recycled 1 | recycled 2 | static-even → … ← static-odd]`.
#[derive(Debug, Clone)]
pub struct SegmentedAllocator {
    seg_elems: u64,
    static_elems: u64,
    cursors: [u64; RECYCLED_SEGMENTS],
    static_even: u64,
    static_odd: u64,
    high_water: u64,
}

impl SegmentedAllocator {
    /// Divides `total_elems` of local storage into the four segments.
    /// Each recycled segment gets a quarter; the static segment the rest.
    pub fn new(total_elems: u64) -> Self {
        let seg_elems = total_elems / 4;
        SegmentedAllocator {
            seg_elems,
            static_elems: total_elems - RECYCLED_SEGMENTS as u64 * seg_elems,
            cursors: [0; RECYCLED_SEGMENTS],
            static_even: 0,
            static_odd: 0,
            high_water: 0,
        }
    }

    /// Capacity of one recycled segment in elements — the budget the
    /// sequential decomposer must fit each sub-instruction into.
    pub fn segment_elems(&self) -> u64 {
        self.seg_elems
    }

    /// Capacity of the static segment in elements.
    pub fn static_elems(&self) -> u64 {
        self.static_elems
    }

    /// Begins pipeline slot `step` (the instruction entering LD), recycling
    /// the segment of the instruction that left WB three cycles ago.
    /// Returns the `[lo, hi)` element range of the segment being recycled,
    /// so stale residency records over it can be invalidated.
    pub fn begin_step(&mut self, step: usize) -> (u64, u64) {
        let slot = step % RECYCLED_SEGMENTS;
        self.cursors[slot] = 0;
        (self.base(slot), self.base(slot) + self.seg_elems)
    }

    fn base(&self, slot: usize) -> u64 {
        slot as u64 * self.seg_elems
    }

    /// Allocates `elems` in the recycled segment of pipeline slot `step`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CapacityExceeded`] when the segment is full —
    /// which means the sequential decomposer under-split (a bug) or the
    /// instruction is genuinely too large for this node.
    pub fn alloc(&mut self, step: usize, elems: u64) -> Result<u64, CoreError> {
        let slot = step % RECYCLED_SEGMENTS;
        if self.cursors[slot] + elems > self.seg_elems {
            return Err(CoreError::CapacityExceeded {
                level: usize::MAX,
                needed: (self.cursors[slot] + elems) * cf_tensor::ELEM_BYTES,
                available: self.seg_elems * cf_tensor::ELEM_BYTES,
            });
        }
        let offset = self.base(slot) + self.cursors[slot];
        self.cursors[slot] += elems;
        self.high_water = self.high_water.max(offset + elems);
        Ok(offset)
    }

    /// Allocates `elems` in the static segment; `parity` selects the even
    /// (grows from the low end) or odd (grows from the high end) stack.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CapacityExceeded`] when the two stacks would
    /// collide.
    pub fn alloc_static(&mut self, parity: bool, elems: u64) -> Result<u64, CoreError> {
        if self.static_even + self.static_odd + elems > self.static_elems {
            return Err(CoreError::CapacityExceeded {
                level: usize::MAX,
                needed: (self.static_even + self.static_odd + elems) * cf_tensor::ELEM_BYTES,
                available: self.static_elems * cf_tensor::ELEM_BYTES,
            });
        }
        let static_base = RECYCLED_SEGMENTS as u64 * self.seg_elems;
        let offset = if !parity {
            let o = static_base + self.static_even;
            self.static_even += elems;
            o
        } else {
            self.static_odd += elems;
            static_base + self.static_elems - self.static_odd
        };
        self.high_water = self.high_water.max(offset + elems);
        Ok(offset)
    }

    /// Releases the static stack of one parity (the instruction of that
    /// parity has fully retired).
    pub fn reset_static(&mut self, parity: bool) {
        if !parity {
            self.static_even = 0;
        } else {
            self.static_odd = 0;
        }
    }

    /// Current depth of one static stack — a marker for
    /// [`SegmentedAllocator::release_static_to`].
    pub fn static_mark(&self, parity: bool) -> u64 {
        if !parity {
            self.static_even
        } else {
            self.static_odd
        }
    }

    /// Pops one static stack back to a previous marker. Sequential
    /// decomposition groups release their partial buffers as soon as the
    /// group's reduction has consumed them; groups nest, so release is
    /// strictly LIFO.
    pub fn release_static_to(&mut self, parity: bool, mark: u64) {
        if !parity {
            self.static_even = mark.min(self.static_even);
        } else {
            self.static_odd = mark.min(self.static_odd);
        }
    }

    /// Elements still free in the static segment (both stacks).
    pub fn static_remaining(&self) -> u64 {
        self.static_elems - self.static_even - self.static_odd
    }

    /// Largest element address ever allocated plus one — how much backing
    /// memory a functional run must actually materialise.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_segments_rotate() {
        let mut a = SegmentedAllocator::new(400);
        assert_eq!(a.segment_elems(), 100);
        a.begin_step(0);
        let x = a.alloc(0, 60).unwrap();
        assert_eq!(x, 0);
        a.begin_step(1);
        let y = a.alloc(1, 60).unwrap();
        assert_eq!(y, 100);
        a.begin_step(2);
        let z = a.alloc(2, 60).unwrap();
        assert_eq!(z, 200);
        // Step 3 recycles segment 0.
        a.begin_step(3);
        let w = a.alloc(3, 60).unwrap();
        assert_eq!(w, 0);
    }

    #[test]
    fn segment_overflow_is_reported() {
        let mut a = SegmentedAllocator::new(400);
        a.begin_step(0);
        a.alloc(0, 80).unwrap();
        assert!(matches!(a.alloc(0, 30), Err(CoreError::CapacityExceeded { .. })));
        // But the next slot is fresh.
        a.begin_step(1);
        assert!(a.alloc(1, 90).is_ok());
    }

    #[test]
    fn static_stacks_are_double_ended() {
        let mut a = SegmentedAllocator::new(400);
        let even = a.alloc_static(false, 10).unwrap();
        let odd = a.alloc_static(true, 10).unwrap();
        assert_eq!(even, 300);
        assert_eq!(odd, 390);
        // They collide only when jointly exhausted.
        assert!(a.alloc_static(false, 85).is_err());
        a.reset_static(true);
        assert!(a.alloc_static(false, 80).is_ok());
    }

    #[test]
    fn within_step_allocations_are_ordered() {
        // "Memory space is always allocated in the list order."
        let mut a = SegmentedAllocator::new(4000);
        a.begin_step(0);
        let first = a.alloc(0, 7).unwrap();
        let second = a.alloc(0, 9).unwrap();
        assert!(second > first);
        assert_eq!(second, first + 7);
    }

    #[test]
    fn high_water_tracks_usage() {
        let mut a = SegmentedAllocator::new(4000);
        assert_eq!(a.high_water(), 0);
        a.begin_step(2);
        a.alloc(2, 10).unwrap();
        assert_eq!(a.high_water(), 2 * 1000 + 10);
    }
}
