//! A small multiplicative hasher for the simulator's hot lookup tables.
//!
//! The outcome cache and the shape memo probe on every subtree visit; the
//! default SipHash costs more than the probes themselves. Keys are
//! internal (never attacker-controlled), so a fast non-cryptographic mix
//! is appropriate. Collisions only cost an extra equality check — both
//! tables compare keys exactly.

use std::hash::{BuildHasherDefault, Hasher};

/// Rotate-xor-multiply word hasher (the rustc `FxHash` construction).
pub(crate) struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Default for FxHasher {
    // Starting from the (nonzero) seed rather than 0 keeps zero words
    // non-degenerate: from 0, every all-zero input would fold to 0
    // regardless of length.
    fn default() -> Self {
        FxHasher { hash: SEED }
    }
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_hashes() {
        let h = |words: &[u64]| {
            let mut hh = FxHasher::default();
            for &w in words {
                hh.write_u64(w);
            }
            hh.finish()
        };
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
        assert_ne!(h(&[0]), h(&[0, 0]));
    }

    #[test]
    fn byte_and_word_paths_are_deterministic() {
        let mut a = FxHasher::default();
        a.write(b"hello world tail");
        let mut b = FxHasher::default();
        b.write(b"hello world tail");
        assert_eq!(a.finish(), b.finish());
    }
}
