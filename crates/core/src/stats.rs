//! Simulation statistics: traffic, operations and busy time per level.
//!
//! These counters feed the roofline analysis (operational intensity =
//! flops ÷ root traffic, Figure 15), the traffic-reduction discussion
//! (§7), and the energy model in `cf-model` (which converts byte and op
//! counts into joules).

/// Counters for one level of the hierarchy (index 0 = root link, i.e. the
/// traffic between the global memory and the level-1 nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelStats {
    /// FISA sub-instructions processed by nodes at this level.
    pub insts: u64,
    /// Bytes moved over the link from the parent level (DMA loads +
    /// writebacks), after TTT elision.
    pub dma_bytes: u64,
    /// Bytes of loads elided by the Tensor Transposition Table.
    pub elided_bytes: u64,
    /// Bytes of parent-memory reads saved by data broadcasting.
    pub broadcast_saved_bytes: u64,
    /// Scalar operations executed on this level's LFUs.
    pub lfu_ops: u64,
    /// Bytes exchanged over sibling links (the §8 extension; zero on the
    /// published H-tree machine).
    pub sibling_bytes: u64,
}

impl LevelStats {
    fn merge(&mut self, other: &LevelStats) {
        self.insts += other.insts;
        self.dma_bytes += other.dma_bytes;
        self.elided_bytes += other.elided_bytes;
        self.broadcast_saved_bytes += other.broadcast_saved_bytes;
        self.lfu_ops += other.lfu_ops;
        self.sibling_bytes += other.sibling_bytes;
    }

    fn scale(&mut self, k: u64) {
        self.insts *= k;
        self.dma_bytes *= k;
        self.elided_bytes *= k;
        self.broadcast_saved_bytes *= k;
        self.lfu_ops *= k;
        self.sibling_bytes *= k;
    }
}

/// Aggregated counters for a (sub)tree simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Per-level counters; index 0 is the level the subtree is rooted at.
    pub levels: Vec<LevelStats>,
    /// Useful arithmetic work (MAC ops on leaves).
    pub mac_ops: u64,
    /// Non-MAC work executed on leaf vector paths.
    pub vec_ops: u64,
}

impl Stats {
    /// Empty statistics.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Accumulates a child-subtree's statistics one level down.
    pub fn absorb_child(&mut self, child: &Stats) {
        for (i, ls) in child.levels.iter().enumerate() {
            if self.levels.len() <= i + 1 {
                self.levels.resize(i + 2, LevelStats::default());
            }
            self.levels[i + 1].merge(ls);
        }
        self.mac_ops += child.mac_ops;
        self.vec_ops += child.vec_ops;
    }

    /// Accumulates same-level statistics.
    pub fn absorb(&mut self, other: &Stats) {
        for (i, ls) in other.levels.iter().enumerate() {
            if self.levels.len() <= i {
                self.levels.resize(i + 1, LevelStats::default());
            }
            self.levels[i].merge(ls);
        }
        self.mac_ops += other.mac_ops;
        self.vec_ops += other.vec_ops;
    }

    /// Multiplies every counter by `k` (for memoized repeated subtrees).
    pub fn scaled(mut self, k: u64) -> Stats {
        for ls in &mut self.levels {
            ls.scale(k);
        }
        self.mac_ops *= k;
        self.vec_ops *= k;
        self
    }

    /// Counter record for the level rooted at this subtree.
    pub fn root_level_mut(&mut self) -> &mut LevelStats {
        if self.levels.is_empty() {
            self.levels.push(LevelStats::default());
        }
        &mut self.levels[0]
    }

    /// Traffic over the root link in bytes (loads + writebacks of the
    /// level-1 nodes) — the denominator of root operational intensity.
    pub fn root_traffic_bytes(&self) -> u64 {
        self.levels.get(1).map(|l| l.dma_bytes).unwrap_or(0)
    }

    /// Total useful work in scalar operations.
    pub fn total_ops(&self) -> u64 {
        self.mac_ops + self.vec_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_child_shifts_levels() {
        let mut child = Stats::new();
        child.root_level_mut().dma_bytes = 100;
        child.mac_ops = 7;
        let mut parent = Stats::new();
        parent.root_level_mut().dma_bytes = 10;
        parent.absorb_child(&child);
        assert_eq!(parent.levels[0].dma_bytes, 10);
        assert_eq!(parent.levels[1].dma_bytes, 100);
        assert_eq!(parent.mac_ops, 7);
        assert_eq!(parent.root_traffic_bytes(), 100);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let mut s = Stats::new();
        s.root_level_mut().insts = 3;
        s.vec_ops = 5;
        let s2 = s.scaled(4);
        assert_eq!(s2.levels[0].insts, 12);
        assert_eq!(s2.vec_ops, 20);
    }

    #[test]
    fn absorb_same_level() {
        let mut a = Stats::new();
        a.root_level_mut().lfu_ops = 2;
        let mut b = Stats::new();
        b.root_level_mut().lfu_ops = 3;
        a.absorb(&b);
        assert_eq!(a.levels[0].lfu_ops, 5);
    }
}
