use cf_isa::Program;
use cf_tensor::Memory;

use crate::perf::PerfSim;
use crate::stats::Stats;
use crate::timeline::Timeline;
use crate::{CoreError, MachineConfig};

/// A Cambricon-F machine instance: the public façade over the planner,
/// the functional executor and the performance simulator.
///
/// # Examples
///
/// ```
/// use cf_core::{Machine, MachineConfig};
/// use cf_isa::{Opcode, ProgramBuilder};
/// use cf_tensor::Memory;
///
/// let mut b = ProgramBuilder::new();
/// let x = b.alloc("x", vec![32]);
/// let y = b.alloc("y", vec![32]);
/// let z = b.alloc("z", vec![32]);
/// b.emit(Opcode::Add1D, [x, y], [z])?;
/// let program = b.build();
///
/// let machine = Machine::new(MachineConfig::tiny(1, 2, 4096));
/// let mut mem = Memory::new(program.extern_elems() as usize);
/// machine.run(&program, &mut mem)?;          // functional
/// let report = machine.simulate(&program)?;  // performance
/// assert!(report.makespan_seconds > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct Machine {
    config: MachineConfig,
    fault_hook: Option<std::sync::Arc<dyn crate::fault::DmaFaultHook>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("fault_hook", &self.fault_hook.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Result of a performance simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// End-to-end execution time in seconds.
    pub makespan_seconds: f64,
    /// Steady-state spacing of back-to-back runs (pipeline concatenating).
    pub steady_seconds: f64,
    /// Per-level traffic/op statistics.
    pub stats: Stats,
    /// Useful arithmetic throughput attained, in ops/s.
    pub attained_ops: f64,
    /// Attained as a fraction of machine peak.
    pub peak_fraction: f64,
    /// Operational intensity at the root memory in flops/byte.
    pub root_intensity: f64,
}

impl Machine {
    /// A machine with the given configuration.
    pub fn new(config: MachineConfig) -> Self {
        Machine { config, fault_hook: None }
    }

    /// Attaches a DMA fault hook consulted on every functional-execution
    /// transfer (see [`crate::fault`]); performance simulation is
    /// unaffected.
    pub fn with_fault_hook(mut self, hook: std::sync::Arc<dyn crate::fault::DmaFaultHook>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Functionally executes `program` with external data in `mem`
    /// (which is grown if scratch space is needed).
    ///
    /// # Errors
    ///
    /// Propagates planning and kernel errors, plus
    /// [`CoreError::TransientFault`] for transfers an attached fault hook
    /// fails.
    pub fn run(&self, program: &Program, mem: &mut Memory) -> Result<(), CoreError> {
        crate::exec::run_program_hooked(&self.config, program, mem, self.fault_hook.as_deref())
    }

    /// Simulates `program` and reports timing, utilisation and traffic.
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn simulate(&self, program: &Program) -> Result<PerfReport, CoreError> {
        let sim = PerfSim::new(&self.config);
        let out = sim.simulate(program)?;
        Ok(self.report_of(out))
    }

    /// Simulates `program` with unique cold subtrees fanned out across up
    /// to `threads` worker threads (`threads <= 1` runs sequentially),
    /// additionally returning the cold-path instrumentation counters. The
    /// report is byte-identical to [`Machine::simulate`] — the parallel
    /// pass only pre-computes outcome-cache entries the sequential walk
    /// would produce anyway.
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn simulate_parallel(
        &self,
        program: &Program,
        threads: usize,
    ) -> Result<(PerfReport, crate::perf::ColdStats), CoreError> {
        let sim = PerfSim::new(&self.config);
        let out = sim.simulate_parallel(program, threads)?;
        let cold = sim.cold_stats();
        Ok((self.report_of(out), cold))
    }

    /// Simulates `program` with profiling on, additionally returning the
    /// per-level / per-signature attribution with the `top` hottest
    /// signatures (see [`crate::profile`]). Timing results are identical
    /// to [`Machine::simulate`].
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn simulate_profiled(
        &self,
        program: &Program,
        top: usize,
    ) -> Result<(PerfReport, crate::profile::ProfileReport), CoreError> {
        let sim = PerfSim::with_profiling(&self.config);
        let out = sim.simulate(program)?;
        let profile = sim.profile_report(out.makespan, top).unwrap_or_default();
        Ok((self.report_of(out), profile))
    }

    fn report_of(&self, out: crate::perf::NodeOutcome) -> PerfReport {
        let ops = out.stats.total_ops();
        let attained = if out.makespan > 0.0 { ops as f64 / out.makespan } else { 0.0 };
        let traffic = out.stats.root_traffic_bytes();
        PerfReport {
            makespan_seconds: out.makespan,
            steady_seconds: out.steady,
            attained_ops: attained,
            peak_fraction: attained / self.config.peak_ops(),
            root_intensity: if traffic > 0 { ops as f64 / traffic as f64 } else { f64::INFINITY },
            stats: out.stats,
        }
    }

    /// Extracts a Figure-13-style execution timeline, recursing
    /// `max_depth` levels.
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn timeline(&self, program: &Program, max_depth: usize) -> Result<Timeline, CoreError> {
        crate::timeline::extract_timeline(&self.config, program, max_depth, 100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{Opcode, ProgramBuilder};

    #[test]
    fn report_fields_consistent() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![128, 128]);
        let w = b.alloc("w", vec![128, 128]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        let p = b.build();
        let m = Machine::new(MachineConfig::cambricon_f1());
        let r = m.simulate(&p).unwrap();
        assert!(r.peak_fraction > 0.0 && r.peak_fraction <= 1.0);
        assert!(r.root_intensity > 0.0);
        assert!(r.steady_seconds <= r.makespan_seconds + 1e-12);
    }

    #[test]
    fn same_program_runs_on_different_machines() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![64, 64]);
        let y = b.alloc("y", vec![64, 64]);
        b.apply(Opcode::MatMul, [x, y]).unwrap();
        let p = b.build();
        for cfg in [MachineConfig::cambricon_f1(), MachineConfig::cambricon_f100()] {
            let r = Machine::new(cfg).simulate(&p).unwrap();
            assert!(r.makespan_seconds > 0.0);
        }
    }
}
