//! The Tensor Transposition Table (paper §3.6).
//!
//! The TTT records which parent-memory regions are currently resident in
//! local memory (loaded by, or written back from, a recent
//! sub-instruction), so the demotion decoder can rebind an operand's
//! loading source to the local copy and elide the remote DMA entirely —
//! including the "pipeline forwarding" case where an instruction consumes
//! its predecessor's result.
//!
//! Consistency is enforced exactly as in the paper: records live in two
//! banks, each owned by one in-flight instruction, and a record is valid
//! for at most **two FISA cycles** — precisely the window during which the
//! recycled memory segment holding the data has not yet been re-filled
//! (see [`crate::memory::SegmentedAllocator`]). Writes to overlapping
//! parent regions invalidate records eagerly.

use cf_tensor::Region;

#[derive(Debug, Clone)]
struct Entry {
    parent: Region,
    local: Region,
}

/// Two-banked table of parent-region → local-region residency records.
#[derive(Debug, Clone, Default)]
pub struct Ttt {
    banks: [Vec<Entry>; 2],
    cycle: u64,
}

impl Ttt {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances to FISA cycle `cycle` (monotone). The bank owned by this
    /// cycle's parity is cleared: its records were made two cycles ago and
    /// their backing segment is about to be recycled.
    ///
    /// Call this *after* performing the cycle's lookups, mirroring the
    /// decode order of the demotion decoder.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.banks[(cycle % 2) as usize].clear();
    }

    /// Looks up a parent region; on a hit returns the local region holding
    /// a live copy. Only exact region matches forward (same offset, shape
    /// and strides) — partial overlap cannot be rebound by the DD.
    pub fn lookup(&self, parent: &Region) -> Option<&Region> {
        self.banks.iter().flat_map(|b| b.iter()).find(|e| &e.parent == parent).map(|e| &e.local)
    }

    /// Records that `parent` is now resident at `local` (either loaded or
    /// produced there). The record goes into the current cycle's bank.
    pub fn record(&mut self, parent: Region, local: Region) {
        self.banks[(self.cycle % 2) as usize].push(Entry { parent, local });
    }

    /// Invalidates every record whose parent region may overlap `written`
    /// — a new write makes stale local copies unusable.
    pub fn invalidate_overlapping(&mut self, written: &Region) {
        for bank in &mut self.banks {
            bank.retain(|e| !e.parent.may_overlap(written));
        }
    }

    /// Invalidates every record whose *local* copy lies in
    /// `[lo, hi)` — called when a recycled memory segment is about to be
    /// re-filled, so no record can outlive its backing storage.
    pub fn invalidate_local_range(&mut self, lo: u64, hi: u64) {
        for bank in &mut self.banks {
            bank.retain(|e| e.local.end() < lo || e.local.offset() >= hi);
        }
    }

    /// Number of live records (diagnostics).
    pub fn len(&self) -> usize {
        self.banks.iter().map(Vec::len).sum()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_tensor::Shape;

    fn reg(offset: u64, n: usize) -> Region {
        Region::contiguous(offset, Shape::new(vec![n]))
    }

    #[test]
    fn record_and_lookup_exact() {
        let mut t = Ttt::new();
        t.begin_cycle(0);
        t.record(reg(100, 8), reg(0, 8));
        assert_eq!(t.lookup(&reg(100, 8)), Some(&reg(0, 8)));
        // Overlapping but non-identical regions do not forward.
        assert_eq!(t.lookup(&reg(100, 4)), None);
    }

    #[test]
    fn records_expire_after_two_cycles() {
        let mut t = Ttt::new();
        t.begin_cycle(0);
        t.record(reg(100, 8), reg(0, 8));
        // Cycle 1 uses the other bank: record still visible.
        t.begin_cycle(1);
        assert!(t.lookup(&reg(100, 8)).is_some());
        // Cycle 2 reclaims bank 0: the record is gone.
        t.begin_cycle(2);
        assert!(t.lookup(&reg(100, 8)).is_none());
    }

    #[test]
    fn writes_invalidate_overlapping_records() {
        let mut t = Ttt::new();
        t.begin_cycle(0);
        t.record(reg(100, 8), reg(0, 8));
        t.record(reg(200, 8), reg(8, 8));
        t.invalidate_overlapping(&reg(104, 2));
        assert!(t.lookup(&reg(100, 8)).is_none());
        assert!(t.lookup(&reg(200, 8)).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table() {
        let t = Ttt::new();
        assert!(t.is_empty());
        assert!(t.lookup(&reg(0, 1)).is_none());
    }
}
