//! Decomposition inspection: how a program actually unfolds across the
//! hierarchy — sub-instruction counts per level and opcode, DMA volumes,
//! reduction counts. This is the quantitative companion to the paper's
//! Figure 12 (the STMH execution model): every level sees the same task at
//! a different granularity, and this module shows exactly how.

use std::collections::BTreeMap;

use cf_isa::{Instruction, Opcode, Program};

use crate::plan::{Planner, Step};
use crate::{CoreError, MachineConfig};

/// Per-level decomposition statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelBreakdown {
    /// Pipeline steps executed by nodes of this level (total).
    pub steps: u64,
    /// Sub-instructions issued to this level's FFUs, by opcode.
    pub child_ops: BTreeMap<Opcode, u64>,
    /// DMA load volume from the parent level, in bytes.
    pub load_bytes: u64,
    /// DMA writeback volume to the parent level, in bytes.
    pub store_bytes: u64,
    /// Reduction (`g(·)`) steps executed here.
    pub reductions: u64,
    /// Instructions executed whole on this level's LFU or leaf compute.
    pub local_execs: u64,
    /// Steps with no read-after-write dependence on their predecessor —
    /// the ones pipeline concatenating can pre-assign (§3.6).
    pub preassignable_steps: u64,
}

/// The full decomposition picture of one program on one machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecompositionReport {
    /// Per-level breakdowns, index 0 = root.
    pub levels: Vec<LevelBreakdown>,
}

impl DecompositionReport {
    /// Fraction of all pipeline steps machine-wide that pipeline
    /// concatenating can pre-assign — the paper's 93.11 % ResNet metric.
    pub fn preassignable_fraction(&self) -> f64 {
        let total: u64 = self.levels.iter().map(|l| l.steps).sum();
        let ok: u64 = self.levels.iter().map(|l| l.preassignable_steps).sum();
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// Mean granularity (operand elements per sub-instruction) issued *to*
    /// `level` — Figure 12's "each hierarchy sees a part of the task with
    /// different granularity", quantified.
    pub fn mean_granularity_into(&self, level: usize) -> f64 {
        // Granularity proxies: bytes loaded per step at that level.
        self.levels
            .get(level)
            .map(|l| {
                if l.steps == 0 {
                    0.0
                } else {
                    (l.load_bytes + l.store_bytes) as f64 / l.steps as f64
                }
            })
            .unwrap_or(0.0)
    }

    /// Renders an aligned text summary.
    pub fn render(&self, cfg: &MachineConfig) -> String {
        let mut out = String::new();
        out.push_str(&format!("decomposition on {}:\n", cfg.name));
        for (i, l) in self.levels.iter().enumerate() {
            let name = if i < cfg.levels.len() { cfg.levels[i].name.as_str() } else { "Core" };
            let ops: Vec<String> = l.child_ops.iter().map(|(op, n)| format!("{op}×{n}")).collect();
            out.push_str(&format!(
                "  L{i} {name:<7} steps {:>9}  ld {:>10} B  wb {:>10} B  g(·) {:>6}  local {:>7}  issues [{}]\n",
                l.steps,
                l.load_bytes,
                l.store_bytes,
                l.reductions,
                l.local_execs,
                ops.join(", ")
            ));
        }
        out
    }
}

/// Computes the decomposition report of `program` on `cfg`, walking each
/// distinct sub-instruction signature once per occurrence down to the
/// leaves (exact counts, no sampling).
///
/// # Errors
///
/// Propagates planning errors.
pub fn decomposition_report(
    cfg: &MachineConfig,
    program: &Program,
) -> Result<DecompositionReport, CoreError> {
    let planner = Planner::new(cfg);
    let mut report = DecompositionReport::default();
    let plan = planner.plan_root(program.instructions(), program.extern_elems())?;
    // Memoize subtree breakdowns per (level, signature) to keep this
    // tractable on paper-scale programs.
    let mut cache: std::collections::HashMap<(usize, String), DecompositionReport> =
        std::collections::HashMap::new();
    for step in &plan.steps {
        absorb_step(&planner, 0, 0, step, &mut report, &mut cache)?;
    }
    Ok(report)
}

fn signature(inst: &Instruction) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{:?}|{:?}", inst.op, inst.params);
    for r in inst.inputs.iter().chain(&inst.outputs) {
        let _ = write!(s, "|{}", r.shape());
    }
    s
}

fn absorb_step(
    planner: &Planner<'_>,
    abs_level: usize,
    rel_level: usize,
    step: &Step,
    report: &mut DecompositionReport,
    cache: &mut std::collections::HashMap<(usize, String), DecompositionReport>,
) -> Result<(), CoreError> {
    if report.levels.len() <= rel_level {
        report.levels.resize(rel_level + 1, LevelBreakdown::default());
    }
    {
        let l = &mut report.levels[rel_level];
        l.steps += 1;
        l.load_bytes += step.loads.iter().map(|d| d.parent.bytes()).sum::<u64>();
        l.store_bytes += step.stores.iter().map(|d| d.parent.bytes()).sum::<u64>();
        if step.reduce.is_some() {
            l.reductions += 1;
        }
        if step.local_exec.is_some() || step.streaming_exec.is_some() {
            l.local_execs += 1;
        }
        if !step.raw_dep_prev {
            l.preassignable_steps += 1;
        }
        for child in &step.child_insts {
            *l.child_ops.entry(child.inst.op).or_insert(0) += 1;
        }
    }
    for child in &step.child_insts {
        let key = (abs_level + 1, signature(&child.inst));
        let sub = match cache.get(&key) {
            Some(sub) => sub.clone(),
            None => {
                let plan = planner.plan_instruction(abs_level + 1, &child.inst, false)?;
                let mut sub = DecompositionReport::default();
                for s in &plan.steps {
                    absorb_step(planner, abs_level + 1, 0, s, &mut sub, cache)?;
                }
                cache.insert(key, sub.clone());
                sub
            }
        };
        // Shift the sub-report below this level and merge.
        for (i, lb) in sub.levels.iter().enumerate() {
            let dst = rel_level + 1 + i;
            if report.levels.len() <= dst {
                report.levels.resize(dst + 1, LevelBreakdown::default());
            }
            merge(&mut report.levels[dst], lb);
        }
    }
    Ok(())
}

fn merge(dst: &mut LevelBreakdown, src: &LevelBreakdown) {
    dst.steps += src.steps;
    dst.preassignable_steps += src.preassignable_steps;
    dst.load_bytes += src.load_bytes;
    dst.store_bytes += src.store_bytes;
    dst.reductions += src.reductions;
    dst.local_execs += src.local_execs;
    for (op, n) in &src.child_ops {
        *dst.child_ops.entry(*op).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::ProgramBuilder;

    fn matmul_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![n, n]);
        let w = b.alloc("w", vec![n, n]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        b.build()
    }

    #[test]
    fn report_covers_every_level() {
        let cfg = MachineConfig::cambricon_f1();
        let report = decomposition_report(&cfg, &matmul_program(512)).unwrap();
        assert_eq!(report.levels.len(), cfg.depth());
        // The root issues exactly as many sub-instructions as it has steps
        // times pieces; leaves never issue.
        assert!(report.levels.last().unwrap().child_ops.is_empty());
        assert!(report.levels.last().unwrap().steps > 0);
    }

    #[test]
    fn granularity_shrinks_down_the_hierarchy() {
        // Figure 12: each level sees the task at finer granularity.
        let cfg = MachineConfig::cambricon_f1();
        let report = decomposition_report(&cfg, &matmul_program(1024)).unwrap();
        let g1 = report.mean_granularity_into(1);
        let g2 = report.mean_granularity_into(2);
        assert!(g1 > g2, "FMP step granularity {g1} should exceed core step granularity {g2}");
    }

    #[test]
    fn render_is_nonempty_and_mentions_levels() {
        let cfg = MachineConfig::tiny(2, 2, 64 << 10);
        let report = decomposition_report(&cfg, &matmul_program(64)).unwrap();
        let text = report.render(&cfg);
        assert!(text.contains("L0"));
        assert!(text.contains("Core"));
    }
}
