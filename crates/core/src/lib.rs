//! The Cambricon-F fractal von Neumann machine (paper §3).
//!
//! A Cambricon-F machine is a tree of identical-looking nodes: each node has
//! a controller, a local memory, several fractal functional units (FFUs —
//! which are themselves Cambricon-F nodes) and local functional units
//! (LFUs). The controller decomposes every incoming FISA instruction in
//! three phases — sequential decomposition (SD), demotion (DD) and parallel
//! decomposition (PD) — with a reduction controller (RC) scheduling the
//! retrieving operator `g(·)` and a DMA controller moving regions between
//! the node's memory and its parent's.
//!
//! Two execution modes share one planner ([`plan`]):
//!
//! * **functional** ([`exec`]) — really computes every tensor through the
//!   full fractal decomposition, for correctness validation;
//! * **performance** ([`perf`]) — times the same plans with a
//!   resource-constrained five-stage pipeline model (ID/LD/EX/RD/WB) and
//!   memoized recursion, fast enough for the paper's full-scale workloads.
//!
//! # Examples
//!
//! Run a program on the desktop-scale Cambricon-F1 and on the
//! supercomputer-scale Cambricon-F100 — same binary, different machines
//! (the paper's programming-productivity thesis):
//!
//! ```
//! use cf_core::{Machine, MachineConfig};
//! use cf_isa::{Opcode, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! let a = b.alloc("a", vec![64, 64]);
//! let w = b.alloc("w", vec![64, 64]);
//! let c = b.apply(Opcode::MatMul, [a, w])?;
//! assert_eq!(b.shape(c[0]).dims(), &[64, 64]);
//! let program = b.build();
//!
//! let f1 = Machine::new(MachineConfig::cambricon_f1());
//! let f100 = Machine::new(MachineConfig::cambricon_f100());
//! let r1 = f1.simulate(&program)?;
//! let r100 = f100.simulate(&program)?;
//! assert!(r1.makespan_seconds > 0.0 && r100.makespan_seconds > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod arena;
mod config;
mod error;
pub mod exec;
pub mod fault;
mod hash;
pub mod inspect;
mod machine;
pub mod memo;
pub mod memory;
pub mod perf;
pub mod plan;
pub mod profile;
pub mod stats;
pub mod timeline;
pub mod ttt;

pub use config::{LeafSpec, LevelSpec, MachineConfig, OptFlags};
pub use error::CoreError;
pub use machine::{Machine, PerfReport};
pub use profile::{LevelProfile, PipeStage, ProfileReport, SignatureProfile, StageSeconds};
pub use stats::{LevelStats, Stats};
