//! Functional execution of FISA programs on a fractal machine.
//!
//! Every plan produced by the controller ([`crate::plan`]) is *performed*:
//! DMA transfers really copy regions between per-node memories, leaves run
//! the `cf-ops` reference kernels, LFUs apply the retrieving operators.
//! The result must be (ε-)identical to flat execution with
//! [`cf_ops::exec::execute_program`] — the central correctness property of
//! fractal computing, exercised heavily by the test suite.
//!
//! Functional mode ignores the performance-only annotations of the plan
//! (residency masks, broadcast sharing): those change *when* data moves,
//! never *what* is computed.

use cf_isa::Program;
use cf_ops::fractal::ReduceKind;
use cf_ops::kernels;
use cf_tensor::{Memory, Tensor};

use crate::fault::{DmaFaultHook, FaultSession};
use crate::plan::{NodePlan, Planner, ReduceStep, Space, Step};
use crate::{CoreError, MachineConfig};

/// Runs `program` functionally on a machine configured by `cfg`, with its
/// external data in `global` (laid out per [`Program::symbols`]).
///
/// `global` is grown if the plan needs scratch space beyond the program's
/// footprint.
///
/// # Errors
///
/// Propagates planning and kernel errors.
pub fn run_program(
    cfg: &MachineConfig,
    program: &Program,
    global: &mut Memory,
) -> Result<(), CoreError> {
    run_program_hooked(cfg, program, global, None)
}

/// [`run_program`] with an optional DMA fault hook: every load/store the
/// fractal plan performs is numbered in plan order and offered to the hook
/// before the copy happens (see [`crate::fault`]).
///
/// # Errors
///
/// Propagates planning and kernel errors, plus
/// [`CoreError::TransientFault`] for transfers the hook fails.
pub fn run_program_hooked(
    cfg: &MachineConfig,
    program: &Program,
    global: &mut Memory,
    hook: Option<&dyn DmaFaultHook>,
) -> Result<(), CoreError> {
    let session = FaultSession::new(hook);
    let planner = Planner::new(cfg);
    let plan = planner.plan_root(program.instructions(), program.extern_elems())?;
    if (global.len() as u64) < plan.local_elems {
        let mut grown = Memory::new(plan.local_elems as usize);
        grown.as_mut_slice()[..global.len()].copy_from_slice(global.as_slice());
        *global = grown;
    }
    for step in &plan.steps {
        exec_step(&planner, 0, step, None, global, &session)?;
    }
    Ok(())
}

/// Executes one planned incoming instruction at `level`, with operands in
/// `parent`.
fn exec_plan(
    planner: &Planner<'_>,
    level: usize,
    plan: &NodePlan,
    parent: &mut Memory,
    session: &FaultSession<'_>,
) -> Result<(), CoreError> {
    let mut local = Memory::new(plan.local_elems as usize);
    for step in &plan.steps {
        for l in &step.loads {
            session.dma()?;
            local.copy_from(&l.local, parent, &l.parent)?;
        }
        exec_step(planner, level, step, Some(parent), &mut local, session)?;
        for s in &step.stores {
            session.dma()?;
            parent.copy_from(&s.parent, &local, &s.local)?;
        }
    }
    Ok(())
}

/// Executes the compute portion of one step. `parent` is `None` at the
/// root, where the local memory *is* the global memory.
fn exec_step(
    planner: &Planner<'_>,
    level: usize,
    step: &Step,
    parent: Option<&mut Memory>,
    local: &mut Memory,
    session: &FaultSession<'_>,
) -> Result<(), CoreError> {
    if let Some(inst) = &step.streaming_exec {
        // Streaming ops address the incoming (parent) space directly.
        match parent {
            Some(parent) => cf_ops::exec::execute_instruction(inst, parent)?,
            None => cf_ops::exec::execute_instruction(inst, local)?,
        }
        return Ok(());
    }
    if let Some(inst) = &step.local_exec {
        cf_ops::exec::execute_instruction(inst, local)?;
    }
    for child in &step.child_insts {
        let child_plan = planner.plan_instruction(level + 1, &child.inst, false)?;
        exec_plan(planner, level + 1, &child_plan, local, session)?;
    }
    if let Some(reduce) = &step.reduce {
        apply_reduce(reduce, parent, local)?;
    }
    Ok(())
}

/// Applies the retrieving operator `g(·)` of a reduce step.
fn apply_reduce(
    r: &ReduceStep,
    parent: Option<&mut Memory>,
    local: &mut Memory,
) -> Result<(), CoreError> {
    // Gather partials from local memory first (outputs may alias scratch).
    let partials: Vec<Vec<Tensor>> = r
        .partials
        .iter()
        .map(|regions| regions.iter().map(|reg| local.read_region(reg)).collect())
        .collect::<Result<_, _>>()?;
    // A reduce step with no partials (or a partial with no tensors) is a
    // planner bug; surface it as a typed error rather than an index panic
    // so the service layer can fail just this job.
    let malformed = || CoreError::Internal("reduce step carries no partials".to_string());
    let first = partials.first().ok_or_else(malformed)?;
    let first_tensor = first.first().ok_or_else(malformed)?;
    let combined: Vec<Tensor> = match r.kind {
        ReduceKind::Add | ReduceKind::Mul => {
            let mut acc = first_tensor.clone();
            for p in &partials[1..] {
                let operand = p.first().ok_or_else(malformed)?;
                acc = if r.kind == ReduceKind::Add {
                    kernels::eltwise_add(&acc, operand)?
                } else {
                    kernels::eltwise_mul(&acc, operand)?
                };
            }
            vec![acc]
        }
        ReduceKind::Merge => {
            let with_payload = first.len() == 2;
            let mut keys = first_tensor.clone();
            let mut payload = with_payload.then(|| first[1].clone());
            for p in &partials[1..] {
                let head = p.first().ok_or_else(malformed)?;
                let (k, pl) = kernels::merge(&keys, head, payload.as_ref(), p.get(1))?;
                keys = k;
                payload = pl;
            }
            match payload {
                Some(pl) => vec![keys, pl],
                None => vec![keys],
            }
        }
    };
    let dst: &mut Memory = match (r.output_space, parent) {
        (Space::Parent, Some(parent)) => parent,
        _ => local,
    };
    for (region, tensor) in r.outputs.iter().zip(&combined) {
        // Reduction results may be written through a reshape (e.g. a
        // partial accumulated as a flat buffer into a matrix region).
        let t = if tensor.shape() == region.shape() {
            tensor.clone()
        } else {
            tensor.clone().reshape(region.shape().clone())?
        };
        dst.write_region(region, &t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{Opcode, ProgramBuilder};
    use cf_tensor::gen::DataGen;
    use cf_tensor::Shape;

    /// Builds external memory for a program with seeded data in every
    /// input symbol.
    fn seeded_memory(program: &Program, seed: u64) -> Memory {
        let mut mem = Memory::new(program.extern_elems() as usize);
        let t = DataGen::new(seed).uniform(
            Shape::new(vec![program.extern_elems() as usize]),
            -1.5,
            1.5,
        );
        mem.as_mut_slice().copy_from_slice(t.data());
        mem
    }

    /// Fractal execution must match flat execution for the program.
    fn check_program(program: &Program, cfg: &MachineConfig, seed: u64, tol: f32) {
        let mut flat = seeded_memory(program, seed);
        cf_ops::exec::execute_program(program, &mut flat).unwrap();
        let mut fractal = seeded_memory(program, seed);
        run_program(cfg, program, &mut fractal).unwrap();
        for (name, region) in program.symbols() {
            let a = flat.read_region(region).unwrap();
            let b = fractal.read_region(region).unwrap();
            assert!(
                a.approx_eq(&b, tol),
                "symbol `{name}` diverged on {} (max diff {:?})",
                cfg.name,
                a.max_abs_diff(&b)
            );
        }
    }

    #[test]
    fn matmul_chain_matches_flat() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![24, 16]);
        let w1 = b.alloc("w1", vec![16, 20]);
        let w2 = b.alloc("w2", vec![20, 12]);
        let h = b.apply(Opcode::MatMul, [a, w1]).unwrap();
        let h = b.apply(Opcode::Act1D, [h[0]]).unwrap();
        b.apply(Opcode::MatMul, [h[0], w2]).unwrap();
        let p = b.build();
        check_program(&p, &MachineConfig::tiny(2, 2, 16 << 10), 1, 1e-3);
    }

    #[test]
    fn conv_pool_net_matches_flat() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![2, 8, 8, 3]);
        let w = b.alloc("w", vec![3, 3, 3, 4]);
        let c = b
            .apply_with(
                Opcode::Cv2D,
                cf_isa::OpParams::Conv(cf_isa::ConvParams::same(1, 1)),
                [x, w],
            )
            .unwrap();
        let r = b.apply(Opcode::Act1D, [c[0]]).unwrap();
        b.apply(Opcode::Max2D, [r[0]]).unwrap();
        let p = b.build();
        check_program(&p, &MachineConfig::tiny(2, 2, 8 << 10), 2, 1e-3);
    }

    #[test]
    fn sort_and_count_match_flat() {
        let mut b = ProgramBuilder::new();
        let keys = b.alloc("keys", vec![64]);
        let vals = b.alloc("vals", vec![64]);
        let sorted = b.apply(Opcode::Sort1D, [keys, vals]).unwrap();
        b.apply_with(
            Opcode::Count1D,
            cf_isa::OpParams::Count(cf_isa::CountParams { value: 0.5, tol: 0.75 }),
            [sorted[1]],
        )
        .unwrap();
        let p = b.build();
        check_program(&p, &MachineConfig::tiny(1, 4, 2 << 10), 3, 0.0);
    }

    #[test]
    fn euclidean_distance_matches_flat() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![12, 10]);
        let y = b.alloc("y", vec![9, 10]);
        b.apply(Opcode::Euclidian1D, [x, y]).unwrap();
        let p = b.build();
        check_program(&p, &MachineConfig::tiny(2, 3, 2 << 10), 4, 1e-3);
    }

    #[test]
    fn horizontal_reductions_match_flat() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![500]);
        b.apply(Opcode::HSum1D, [x]).unwrap();
        let p = b.build();
        // Node memory of 2 KiB forces SD-level reductions.
        check_program(&p, &MachineConfig::tiny(1, 2, 2 << 10), 5, 1e-2);
    }

    #[test]
    fn deep_machine_matches_shallow() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![18, 18]);
        let w = b.alloc("w", vec![18, 18]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        let p = b.build();
        for depth in 1..=3 {
            check_program(&p, &MachineConfig::tiny(depth, 2, 8 << 10), 6, 1e-3);
        }
    }

    #[test]
    fn ttt_forwarding_never_serves_recycled_segments() {
        // Regression: inner-axis accumulation interleaves reduce steps
        // with instruction steps; if FISA cycles were counted over reduce
        // steps too, a still-valid TTT record's backing segment could be
        // recycled under it and forwarding would serve garbage.
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![64, 96]);
        let w = b.alloc("w", vec![96, 96]);
        b.apply(Opcode::MatMul, [x, w]).unwrap();
        let p = b.build();
        check_program(&p, &MachineConfig::tiny(3, 2, 16 << 10), 7, 1e-3);
    }

    #[test]
    fn ttt_off_gives_identical_results() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![6, 8, 8, 3]);
        let w = b.alloc("w", vec![3, 3, 3, 5]);
        b.apply_with(Opcode::Cv2D, cf_isa::OpParams::Conv(cf_isa::ConvParams::same(1, 1)), [x, w])
            .unwrap();
        let p = b.build();
        let on = MachineConfig::tiny(2, 2, 8 << 10);
        let off = MachineConfig::tiny(2, 2, 8 << 10).with_opts(crate::OptFlags::none());
        check_program(&p, &on, 7, 1e-3);
        check_program(&p, &off, 7, 1e-3);
    }
}
