//! Deterministic fault hooks for the simulator core.
//!
//! The functional executor ([`crate::exec`]) performs real DMA transfers
//! between per-node memories. A [`DmaFaultHook`] lets a harness (the
//! `cf-runtime` fault-injection layer, or a test) fail individual
//! transfers with a *transient* error — the software analogue of a bit
//! flip on the wire or a dropped burst — without the core knowing who is
//! injecting or why.
//!
//! Determinism: the executor numbers DMA operations in plan order
//! (single-threaded per run), so a hook that decides purely from the op
//! index — e.g. by hashing `(seed, op)` — produces the same fault at the
//! same transfer on every run. Injected faults surface as
//! [`CoreError::TransientFault`], which callers may retry; a clean retry
//! of the same program is bit-identical to a fault-free run because the
//! fault fires *before* the copy touches memory.

use crate::CoreError;

/// Decides whether a given DMA transfer of one functional run faults.
///
/// `op` is the zero-based index of the transfer within the run (loads and
/// stores count alike, in plan order). Return `true` to inject a
/// [`CoreError::TransientFault`] at that transfer.
pub trait DmaFaultHook: Send + Sync {
    /// Whether transfer number `op` should fail transiently.
    fn fires(&self, op: u64) -> bool;
}

/// Per-run fault session: the hook plus the run-local DMA op counter.
pub(crate) struct FaultSession<'a> {
    hook: Option<&'a dyn DmaFaultHook>,
    ops: std::cell::Cell<u64>,
}

impl<'a> FaultSession<'a> {
    pub(crate) fn new(hook: Option<&'a dyn DmaFaultHook>) -> Self {
        FaultSession { hook, ops: std::cell::Cell::new(0) }
    }

    /// Counts one DMA transfer; errors if the hook injects a fault on it.
    pub(crate) fn dma(&self) -> Result<(), CoreError> {
        let op = self.ops.get();
        self.ops.set(op + 1);
        match self.hook {
            Some(hook) if hook.fires(op) => Err(CoreError::TransientFault { op }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EveryNth(u64);
    impl DmaFaultHook for EveryNth {
        fn fires(&self, op: u64) -> bool {
            self.0 != 0 && op.is_multiple_of(self.0)
        }
    }

    #[test]
    fn session_counts_ops_and_injects() {
        let hook = EveryNth(3);
        let s = FaultSession::new(Some(&hook));
        assert!(matches!(s.dma(), Err(CoreError::TransientFault { op: 0 })));
        assert!(s.dma().is_ok());
        assert!(s.dma().is_ok());
        assert!(matches!(s.dma(), Err(CoreError::TransientFault { op: 3 })));
    }

    #[test]
    fn no_hook_never_faults() {
        let s = FaultSession::new(None);
        for _ in 0..100 {
            assert!(s.dma().is_ok());
        }
    }
}
