use std::fmt;

use cf_isa::IsaError;
use cf_ops::OpsError;
use cf_tensor::TensorError;

/// Errors from planning or executing on a fractal machine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An instruction (or a decomposed piece) cannot be made to fit the
    /// local memory of a node no matter how it is split.
    CapacityExceeded {
        /// Level at which planning failed.
        level: usize,
        /// Bytes the smallest achievable piece needs.
        needed: u64,
        /// Segment capacity available.
        available: u64,
    },
    /// The machine configuration is unusable (zero fan-out at an inner
    /// level, zero bandwidth, …).
    BadConfig(String),
    /// An underlying ISA error.
    Isa(IsaError),
    /// An underlying kernel/decomposition error.
    Ops(OpsError),
    /// An underlying tensor error.
    Tensor(TensorError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CapacityExceeded { level, needed, available } => write!(
                f,
                "instruction cannot fit level-{level} memory: needs {needed} B, segment holds {available} B"
            ),
            CoreError::BadConfig(s) => write!(f, "bad machine configuration: {s}"),
            CoreError::Isa(e) => write!(f, "ISA error: {e}"),
            CoreError::Ops(e) => write!(f, "ops error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Isa(e) => Some(e),
            CoreError::Ops(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CoreError {
    fn from(e: IsaError) -> Self {
        CoreError::Isa(e)
    }
}

impl From<OpsError> for CoreError {
    fn from(e: OpsError) -> Self {
        CoreError::Ops(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}
