use std::fmt;

use cf_isa::IsaError;
use cf_ops::OpsError;
use cf_tensor::TensorError;

/// Errors from planning or executing on a fractal machine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An instruction (or a decomposed piece) cannot be made to fit the
    /// local memory of a node no matter how it is split.
    CapacityExceeded {
        /// Level at which planning failed.
        level: usize,
        /// Bytes the smallest achievable piece needs.
        needed: u64,
        /// Segment capacity available.
        available: u64,
    },
    /// The machine configuration is unusable (zero fan-out at an inner
    /// level, zero bandwidth, …).
    BadConfig(String),
    /// An underlying ISA error.
    Isa(IsaError),
    /// An underlying kernel/decomposition error.
    Ops(OpsError),
    /// An underlying tensor error.
    Tensor(TensorError),
    /// A transient memory/DMA fault (injected via
    /// [`DmaFaultHook`](crate::fault::DmaFaultHook)). Retrying the run is
    /// expected to succeed and to produce bit-identical results.
    TransientFault {
        /// The DMA transfer index within the run at which the fault hit.
        op: u64,
    },
    /// An internal invariant did not hold (a planner/executor bug surfaced
    /// as an error instead of a panic so the service layer can degrade
    /// gracefully).
    Internal(String),
}

impl CoreError {
    /// Whether a retry of the same operation may succeed (only transient
    /// faults qualify; every other error is deterministic).
    pub fn is_transient(&self) -> bool {
        matches!(self, CoreError::TransientFault { .. })
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CapacityExceeded { level, needed, available } => write!(
                f,
                "instruction cannot fit level-{level} memory: needs {needed} B, segment holds {available} B"
            ),
            CoreError::BadConfig(s) => write!(f, "bad machine configuration: {s}"),
            CoreError::Isa(e) => write!(f, "ISA error: {e}"),
            CoreError::Ops(e) => write!(f, "ops error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::TransientFault { op } => {
                write!(f, "transient memory/DMA fault at transfer {op} (retryable)")
            }
            CoreError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Isa(e) => Some(e),
            CoreError::Ops(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CoreError {
    fn from(e: IsaError) -> Self {
        CoreError::Isa(e)
    }
}

impl From<OpsError> for CoreError {
    fn from(e: OpsError) -> Self {
        CoreError::Ops(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}
