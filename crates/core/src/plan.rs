//! The node controller (paper §3.3): sequential decomposition (SD),
//! demotion (DD), parallel decomposition (PD) and the reduction controller
//! (RC), expressed as a *planner* that turns one incoming FISA instruction
//! into a [`NodePlan`] — a sequence of pipeline [`Step`]s.
//!
//! The same plan drives both execution modes: the functional executor
//! ([`crate::exec`]) performs the plan's DMA and kernels on real memories;
//! the performance simulator ([`crate::perf`]) times the identical plan.
//!
//! Address spaces: an incoming instruction's operands live in the *parent*
//! memory. DD allocates local blocks in the recycled segments and emits
//! [`DmaOp`]s; SD-generated intermediates (partials of an output-dependent
//! sequential split) live in the *static* segment (§3.5); children receive
//! instructions whose operands live in this node's local memory.

use cf_isa::{Instruction, Opcode};
use cf_ops::cost;
use cf_ops::fractal::{ReduceKind, SplitOutcome};
use cf_tensor::{Region, Shape, ELEM_BYTES};

use crate::arena::PlanArena;
use crate::memo::{self, MemoKind, PlanMemo};
use crate::memory::SegmentedAllocator;
use crate::ttt::Ttt;
use crate::{CoreError, MachineConfig};

/// Which memory a region belongs to during planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// The parent node's memory (or the global memory at the root).
    Parent,
    /// This node's local memory.
    Local,
}

/// One DMA transfer between the parent memory and this node's local memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaOp {
    /// Region in the parent memory.
    pub parent: Region,
    /// Region in this node's local memory (always contiguous).
    pub local: Region,
}

impl DmaOp {
    /// Transfer size in bytes.
    pub fn bytes(&self) -> u64 {
        self.parent.bytes()
    }
}

/// A sub-instruction assigned to one FFU slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildInst {
    /// The instruction, operands in this node's local memory.
    pub inst: Instruction,
    /// Inputs the assigned child already holds locally from the previous
    /// one or two steps (cross-cycle TTT forwarding at the child — a
    /// performance-model annotation; the functional executor re-loads).
    pub resident_inputs: Vec<bool>,
    /// For each input, the number of sibling pieces of this step that use
    /// the *identical* region (≥ 1). Counts > 1 are candidates for the
    /// data-broadcasting optimisation (§3.6): the region is served from
    /// local memory once per group instead of once per piece.
    pub shared_inputs: Vec<u32>,
}

/// A reduction `g(·)` scheduled by the reduction controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceStep {
    /// The retrieving operator.
    pub kind: ReduceKind,
    /// Per-piece partial regions, in this node's local memory.
    pub partials: Vec<Vec<Region>>,
    /// Where the combined result goes.
    pub outputs: Vec<Region>,
    /// Address space of `outputs` (`Parent` for SD-level reductions that
    /// stream straight back; `Local` for PD-level reductions that are
    /// written back by the step's WB).
    pub output_space: Space,
    /// Whether the LFU executes it (`false` ⇒ commissioned to FFUs via the
    /// commission register, e.g. on LFU-less levels).
    pub on_lfu: bool,
    /// Scalar-operation estimate for timing.
    pub ops: u64,
}

/// One pipeline step (one FISA cycle at this node).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Step {
    /// LD-stage DMA transfers (TTT-elided loads are *not* listed).
    pub loads: Vec<DmaOp>,
    /// Bytes of loads elided by the Tensor Transposition Table.
    pub elided_bytes: u64,
    /// EX-stage sub-instructions (round-robin over the FFUs).
    pub child_insts: Vec<ChildInst>,
    /// Work executed on this node itself: the kernel at a leaf, or an
    /// LFU-routed low-intensity instruction at an inner node
    /// (operands in local memory).
    pub local_exec: Option<Instruction>,
    /// A streaming operation executed against parent memory without local
    /// staging (`Merge1D` — merges stream through the node).
    pub streaming_exec: Option<Instruction>,
    /// RD-stage reduction.
    pub reduce: Option<ReduceStep>,
    /// WB-stage DMA transfers.
    pub stores: Vec<DmaOp>,
    /// Read-after-write dependency on the previous step that survived TTT
    /// forwarding: LD must wait for the predecessor's WB.
    pub raw_dep_prev: bool,
}

/// The planned execution of one incoming instruction at one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePlan {
    /// Pipeline steps, in order.
    pub steps: Vec<Step>,
    /// Local-memory elements the plan actually touches (what a functional
    /// run must materialise).
    pub local_elems: u64,
}

// ---------------------------------------------------------------------------

/// An instruction whose operands may live in either space (the SD output).
#[derive(Debug, Clone)]
struct SdInst {
    inst: Instruction,
    input_space: Vec<Space>,
    output_space: Vec<Space>,
}

impl SdInst {
    fn all_parent(inst: Instruction) -> Self {
        let input_space = vec![Space::Parent; inst.inputs.len()];
        let output_space = vec![Space::Parent; inst.outputs.len()];
        SdInst { inst, input_space, output_space }
    }
}

#[derive(Debug)]
enum SdItem {
    Inst(SdInst),
    Reduce(ReduceStep),
}

/// The controller planner for one machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct Planner<'a> {
    cfg: &'a MachineConfig,
}

impl<'a> Planner<'a> {
    /// A planner over `cfg`.
    pub fn new(cfg: &'a MachineConfig) -> Self {
        Planner { cfg }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        self.cfg
    }

    /// Peak MAC throughput of the subtree rooted at `level` (one node).
    pub fn subtree_peak_ops(&self, level: usize) -> f64 {
        let cores: u64 = self.cfg.levels[level.min(self.cfg.levels.len())..]
            .iter()
            .map(|l| l.fanout as u64)
            .product();
        cores.max(1) as f64 * self.cfg.leaf.mac_ops
    }

    fn seg_cap_bytes(&self, level: usize) -> u64 {
        self.cfg.mem_bytes_at(level) / 4
    }

    /// Extra local bytes a PD split of `inst` would need for partials.
    ///
    /// Fast path on the memoized route: [`Planner::parallel_split_raw`]
    /// produces a `Direct` outcome (zero partials) exactly when the
    /// two-way direct split of the whole instruction succeeds — the
    /// halving loop only ever keeps going from that seed — so the full
    /// grid never needs to be built just to learn the partial footprint.
    /// Only the reduce fallback's partials must be sized for real.
    fn pd_partial_bytes(&self, level: usize, inst: &Instruction, mm: &PlanMemo) -> u64 {
        let fanout = self.cfg.fanout_at(level);
        if fanout == 0 || inst.op == Opcode::Merge1D {
            return 0;
        }
        if !mm.is_enabled() {
            return match self.parallel_split_raw(inst, fanout, mm) {
                Some(SplitOutcome::Reduce { pieces, .. }) => {
                    pieces.iter().flat_map(|p| p.partial_shapes.iter()).map(Shape::bytes).sum()
                }
                _ => 0,
            };
        }
        if fanout >= 2 {
            if let Some(SplitOutcome::Direct(pieces)) = self.direct_split(inst, 2, mm) {
                if pieces.len() >= 2 {
                    return 0;
                }
            }
        }
        let kind = MemoKind::PdFallback { n: fanout };
        if let Some(bytes) = mm.lookup(inst, kind, memo::partial_bytes_of) {
            return bytes;
        }
        let outcome = self.parallel_split_raw(&memo::canonical(inst), fanout, mm);
        let bytes = memo::partial_bytes_of(&outcome);
        mm.insert(inst, kind, outcome);
        bytes
    }

    /// Bytes of local staging one step of `sd` needs.
    fn step_footprint(&self, level: usize, sd: &SdInst, mm: &PlanMemo) -> u64 {
        if sd.inst.op == Opcode::Merge1D {
            return 0; // streams through the node
        }
        let staged: u64 = sd
            .inst
            .inputs
            .iter()
            .zip(&sd.input_space)
            .chain(sd.inst.outputs.iter().zip(&sd.output_space))
            .filter(|(_, s)| **s == Space::Parent)
            .map(|(r, _)| r.bytes())
            .sum();
        staged + self.pd_partial_bytes(level, &sd.inst, mm)
    }

    /// Sequential decomposition: split `sd` until each piece fits one
    /// recycled segment, appending pieces (and SD-level reductions) to
    /// `out` in execution order.
    #[allow(clippy::too_many_arguments)]
    fn sd_rec(
        &self,
        level: usize,
        sd: SdInst,
        alloc: &mut SegmentedAllocator,
        base: u64,
        parity: bool,
        out: &mut Vec<SdItem>,
        resident_base: bool,
        mm: &PlanMemo,
    ) -> Result<(), CoreError> {
        let cap = if resident_base {
            // Root operands are already resident in the global memory: only
            // PD partials need allocation, so the constraint is loose.
            self.cfg.mem_bytes_at(level)
        } else {
            self.seg_cap_bytes(level)
        };
        let footprint = if resident_base {
            self.pd_partial_bytes(level, &sd.inst, mm)
        } else {
            self.step_footprint(level, &sd, mm)
        };
        if footprint <= cap {
            out.push(SdItem::Inst(sd));
            return Ok(());
        }
        // Split two ways per recursion step. Scoring by byte overhead makes
        // the recursion alternate axes (the replicated operand grows until
        // another axis becomes cheaper), which yields balanced, square-ish
        // tiles — the blocked execution a real controller wants. Output-
        // dependent axes compete on equal footing but pay for their
        // partials and for the `g(·)` work, and are infeasible when the
        // partials exceed the remaining static segment.
        let static_avail = alloc.static_remaining() * ELEM_BYTES;
        let Some(outcome) = self.choose_sd_split(level, &sd.inst, static_avail, mm) else {
            return Err(CoreError::CapacityExceeded { level, needed: footprint, available: cap });
        };
        match outcome {
            SplitOutcome::Direct(pieces) => {
                for piece in pieces {
                    let piece_sd = SdInst {
                        inst: piece,
                        input_space: sd.input_space.clone(),
                        output_space: sd.output_space.clone(),
                    };
                    self.sd_rec(level, piece_sd, alloc, base, parity, out, resident_base, mm)?;
                }
            }
            SplitOutcome::Reduce { pieces, kind }
                if matches!(kind, ReduceKind::Add | ReduceKind::Mul)
                    && !pieces.is_empty()
                    && pieces.iter().all(|p| p.partial_shapes.len() == 1) =>
            {
                // Additive/multiplicative reductions ACCUMULATE: one static
                // accumulator plus two alternating temporaries, with an
                // LFU accumulate step after each piece. Memory stays flat
                // (3× the output block) no matter how deep the reduction
                // axis splits — the blocked-matmul K-accumulation pattern.
                let static_mark = alloc.static_mark(parity);
                let out_elems: u64 = sd.inst.outputs.iter().map(Region::numel).sum();
                let out_shape = pieces[0].partial_shapes[0].clone();
                let acc = Region::contiguous(
                    alloc.alloc_static(parity, out_elems)? + base,
                    out_shape.clone(),
                );
                let temps = [
                    Region::contiguous(
                        alloc.alloc_static(parity, out_elems)? + base,
                        out_shape.clone(),
                    ),
                    Region::contiguous(alloc.alloc_static(parity, out_elems)? + base, out_shape),
                ];
                let n_pieces = pieces.len();
                for (i, piece) in pieces.into_iter().enumerate() {
                    let dest = if i == 0 { acc.clone() } else { temps[i % 2].clone() };
                    let inst = piece.into_instruction(vec![dest.clone()])?;
                    let piece_sd = SdInst {
                        inst,
                        input_space: sd.input_space.clone(),
                        output_space: vec![Space::Local],
                    };
                    self.sd_rec(level, piece_sd, alloc, base, parity, out, resident_base, mm)?;
                    if i > 0 {
                        out.push(SdItem::Reduce(ReduceStep {
                            kind,
                            partials: vec![vec![acc.clone()], vec![dest]],
                            outputs: vec![acc.clone()],
                            output_space: Space::Local,
                            on_lfu: self.reduce_on_lfu(level, out_elems),
                            ops: out_elems,
                        }));
                    }
                }
                let _ = n_pieces;
                // Final step: stream the accumulator to the destination.
                let output_space = if sd.output_space.iter().all(|s| *s == Space::Local) {
                    Space::Local
                } else {
                    Space::Parent
                };
                out.push(SdItem::Reduce(ReduceStep {
                    kind,
                    partials: vec![vec![acc]],
                    outputs: sd.inst.outputs.clone(),
                    output_space,
                    on_lfu: true,
                    ops: 0,
                }));
                alloc.release_static_to(parity, static_mark);
            }
            SplitOutcome::Reduce { pieces, kind } => {
                // Merge-style reductions (sorts): partials live in the
                // static segment for the whole FISA cycle (§3.5) — or in
                // scratch space at a resident root — and are released
                // (LIFO) once the group's reduction has consumed them.
                let static_mark = alloc.static_mark(parity);
                let mut partial_regions: Vec<Vec<Region>> = Vec::with_capacity(pieces.len());
                for piece in &pieces {
                    let regions = piece
                        .partial_shapes
                        .iter()
                        .map(|s| {
                            let off = alloc.alloc_static(parity, s.numel())?;
                            Ok(Region::contiguous(off + base, s.clone()))
                        })
                        .collect::<Result<Vec<_>, CoreError>>()?;
                    partial_regions.push(regions);
                }
                let total_partial_elems: u64 =
                    partial_regions.iter().flat_map(|v| v.iter()).map(Region::numel).sum();
                let ops = match kind {
                    ReduceKind::Add | ReduceKind::Mul => total_partial_elems,
                    ReduceKind::Merge => total_partial_elems * (pieces.len().max(2)).ilog2() as u64,
                };
                let outputs = sd.inst.outputs.clone();
                let out_space = sd.output_space.clone();
                for (piece, regions) in pieces.into_iter().zip(&partial_regions) {
                    let inst = piece.into_instruction(regions.clone())?;
                    let piece_sd = SdInst {
                        inst,
                        input_space: sd.input_space.clone(),
                        output_space: vec![Space::Local; regions.len()],
                    };
                    self.sd_rec(level, piece_sd, alloc, base, parity, out, resident_base, mm)?;
                }
                // SD-level reductions stream partials (local) into the
                // destination (usually parent space).
                let output_space = if out_space.iter().all(|s| *s == Space::Local) {
                    Space::Local
                } else {
                    Space::Parent
                };
                out.push(SdItem::Reduce(ReduceStep {
                    kind,
                    partials: partial_regions,
                    outputs,
                    output_space,
                    on_lfu: self.reduce_on_lfu(level, ops),
                    ops,
                }));
                alloc.release_static_to(parity, static_mark);
            }
        }
        Ok(())
    }

    /// RC's prediction (§3.3): run `g(·)` on the LFU unless it is absent or
    /// FFU execution is predicted much faster.
    fn reduce_on_lfu(&self, level: usize, ops: u64) -> bool {
        if self.cfg.is_leaf(level) {
            return true; // leaf vector unit
        }
        let spec = &self.cfg.levels[level];
        if spec.lfu_lanes == 0 {
            return false; // must commission through the CMR
        }
        let lfu_rate = spec.lfu_lanes as f64 * spec.lfu_lane_ops;
        let lfu_time = ops as f64 / lfu_rate;
        // Commissioned execution streams partials through child links.
        let ffu_time = ops as f64 * 3.0 * ELEM_BYTES as f64 / spec.bw_bytes
            + ops as f64 / self.subtree_peak_ops(level + 1).max(1.0);
        lfu_time <= 4.0 * ffu_time
    }

    /// Byte-equivalent cost of one LFU operation at `level` (how many
    /// bytes of memory traffic take as long as one reduction op).
    fn lfu_op_byte_equiv(&self, level: usize) -> f64 {
        if self.cfg.is_leaf(level) {
            self.cfg.leaf.bw_bytes / self.cfg.leaf.vec_ops
        } else {
            let l = &self.cfg.levels[level];
            if l.lfu_lanes == 0 {
                // Commissioned reductions stream partials through children.
                8.0
            } else {
                l.bw_bytes / (l.lfu_lanes as f64 * l.lfu_lane_ops)
            }
        }
    }

    /// SD's axis choice: a two-way split minimising byte overhead plus the
    /// byte-equivalent of the reduction work; reductions whose partials
    /// would overflow the static segment are infeasible.
    ///
    /// Memoized on the canonical instruction (plus level and static
    /// headroom, which both influence the choice) and rebased on a hit.
    fn choose_sd_split(
        &self,
        level: usize,
        inst: &Instruction,
        static_avail_bytes: u64,
        mm: &PlanMemo,
    ) -> Option<SplitOutcome> {
        if !mm.is_enabled() {
            return self.choose_sd_split_raw(level, inst, static_avail_bytes);
        }
        let kind = MemoKind::Sd { level, static_avail: static_avail_bytes };
        if let Some(cached) = mm.lookup(inst, kind, |v| v.as_ref().map(|c| memo::rebase(c, inst))) {
            return cached;
        }
        let outcome = self.choose_sd_split_raw(level, &memo::canonical(inst), static_avail_bytes);
        let rebased = outcome.as_ref().map(|c| memo::rebase(c, inst));
        mm.insert(inst, kind, outcome);
        rebased
    }

    fn choose_sd_split_raw(
        &self,
        level: usize,
        inst: &Instruction,
        static_avail_bytes: u64,
    ) -> Option<SplitOutcome> {
        use cf_ops::fractal::{apply_split, split_axes, split_overhead_bytes};
        let op_cost = self.lfu_op_byte_equiv(level);
        let mut best: Option<(f64, SplitOutcome)> = None;
        for axis in split_axes(inst) {
            if axis.extent < 2 {
                continue;
            }
            let Ok(outcome) = apply_split(inst, axis.index, 2) else { continue };
            if outcome.len() < 2 {
                continue;
            }
            let mut score = split_overhead_bytes(inst, &outcome) as f64;
            if let SplitOutcome::Reduce { pieces, kind } = &outcome {
                let partial_bytes: u64 =
                    pieces.iter().flat_map(|q| q.partial_shapes.iter()).map(Shape::bytes).sum();
                // Accumulating reductions need 3× the output block in the
                // static segment regardless of piece count; merges need
                // every partial at once.
                let static_need = match kind {
                    ReduceKind::Add | ReduceKind::Mul => {
                        3 * pieces[0].partial_shapes.iter().map(Shape::bytes).sum::<u64>()
                    }
                    ReduceKind::Merge => partial_bytes,
                };
                if static_need > static_avail_bytes {
                    continue;
                }
                score += (partial_bytes / ELEM_BYTES) as f64 * op_cost;
            }
            if best.as_ref().is_none_or(|(c, _)| score < *c) {
                best = Some((score, outcome));
            }
        }
        best.map(|(_, o)| o)
    }

    /// Broadcast-aware byte overhead of a PD split: inputs shared by every
    /// piece are served from local memory once (§3.6), so a split that
    /// replicates a shared operand is far cheaper than its naive byte
    /// count — which is exactly why the PD prefers batch/row splits with
    /// broadcast weights over inner-axis reductions.
    fn pd_overhead(&self, inst: &Instruction, outcome: &SplitOutcome) -> u64 {
        let base: u64 = inst.inputs.iter().map(Region::bytes).sum();
        match outcome {
            SplitOutcome::Direct(pieces) => {
                let mut total = 0u64;
                if self.cfg.opts.broadcast {
                    // Each distinct region is served from local memory once.
                    let mut seen = std::collections::HashSet::new();
                    for q in pieces {
                        for (i, r) in q.inputs.iter().enumerate() {
                            if seen.insert((i, r)) {
                                total += r.bytes();
                            }
                        }
                    }
                } else {
                    total +=
                        pieces.iter().flat_map(|q| q.inputs.iter()).map(Region::bytes).sum::<u64>();
                }
                total.saturating_sub(base)
            }
            SplitOutcome::Reduce { pieces, .. } => {
                let inputs: u64 =
                    pieces.iter().flat_map(|q| q.inputs.iter()).map(Region::bytes).sum();
                let partials: u64 =
                    pieces.iter().flat_map(|q| q.partial_shapes.iter()).map(Shape::bytes).sum();
                (inputs + 2 * partials).saturating_sub(base)
            }
        }
    }

    /// PD's axis choice: minimal broadcast-aware overhead.
    fn choose_pd_split(&self, inst: &Instruction, parts: usize) -> Option<SplitOutcome> {
        use cf_ops::fractal::{apply_split, split_axes};
        let mut best: Option<(u64, SplitOutcome)> = None;
        for axis in split_axes(inst) {
            if axis.extent < 2 {
                continue;
            }
            let Ok(outcome) = apply_split(inst, axis.index, parts) else { continue };
            if outcome.len() < 2 {
                continue;
            }
            let cost = self.pd_overhead(inst, &outcome);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, outcome));
            }
        }
        best.map(|(_, o)| o)
    }

    /// Multi-axis parallel split filling up to `n` slots, memoized on the
    /// canonical instruction and rebased on a hit.
    fn parallel_split(&self, inst: &Instruction, n: usize, mm: &PlanMemo) -> Option<SplitOutcome> {
        if !mm.is_enabled() {
            return self.parallel_split_raw(inst, n, mm);
        }
        let kind = MemoKind::Parallel { n };
        if let Some(cached) = mm.lookup(inst, kind, |v| v.as_ref().map(|c| memo::rebase(c, inst))) {
            return cached;
        }
        let outcome = self.parallel_split_raw(&memo::canonical(inst), n, mm);
        let rebased = outcome.as_ref().map(|c| memo::rebase(c, inst));
        mm.insert(inst, kind, outcome);
        rebased
    }

    /// Multi-axis parallel split filling up to `n` slots.
    ///
    /// Builds a balanced grid by repeatedly halving every piece along its
    /// cheapest non-reducing axis (axes alternate as the replicated operand
    /// grows), so each FFU receives a compact, high-intensity tile. When no
    /// direct axis exists at all, falls back to an `n`-way output-dependent
    /// split whose partials the reduction controller combines.
    fn parallel_split_raw(
        &self,
        inst: &Instruction,
        n: usize,
        mm: &PlanMemo,
    ) -> Option<SplitOutcome> {
        if n < 2 {
            return None;
        }
        let mut pieces = vec![inst.clone()];
        while pieces.len() < n {
            let mut next = Vec::with_capacity(pieces.len() * 2);
            let mut progressed = false;
            for piece in &pieces {
                match self.direct_split(piece, 2, mm) {
                    Some(SplitOutcome::Direct(sub)) if sub.len() >= 2 => {
                        progressed = true;
                        next.extend(sub);
                    }
                    _ => next.push(piece.clone()),
                }
            }
            pieces = next;
            if !progressed {
                break;
            }
        }
        if pieces.len() >= 2 {
            return Some(SplitOutcome::Direct(pieces));
        }
        self.choose_pd_split(inst, n)
    }

    /// [`choose_direct_split`], memoized: the halving recursion above
    /// revisits the same piece shape many times per grid.
    fn direct_split(
        &self,
        inst: &Instruction,
        parts: usize,
        mm: &PlanMemo,
    ) -> Option<SplitOutcome> {
        if !mm.is_enabled() {
            return choose_direct_split(inst, parts);
        }
        let kind = MemoKind::Direct { parts };
        if let Some(cached) = mm.lookup(inst, kind, |v| v.as_ref().map(|c| memo::rebase(c, inst))) {
            return cached;
        }
        let outcome = choose_direct_split(&memo::canonical(inst), parts);
        let rebased = outcome.as_ref().map(|c| memo::rebase(c, inst));
        mm.insert(inst, kind, outcome);
        rebased
    }

    /// Whether an instruction should run on this node's LFU rather than be
    /// distributed to FFUs. Tiny-granularity operations always stay local
    /// (distribution cannot amortise the control latency); low-intensity
    /// (Reduction-category) operations stay local only when the LFU is
    /// predicted clearly faster — distributing them preserves the tensor
    /// transposition table's operand forwarding across consecutive FISA
    /// instructions, which the naive byte estimate cannot see.
    fn route_to_lfu(&self, level: usize, inst: &Instruction) -> bool {
        if self.cfg.is_leaf(level) {
            return false;
        }
        let spec = &self.cfg.levels[level];
        if spec.lfu_lanes == 0 {
            return false;
        }
        let flops = cost::flops(inst);
        if flops <= 65_536 {
            return true;
        }
        if !inst.op.prefers_lfu() {
            return false;
        }
        let lfu_time = flops as f64 / (spec.lfu_lanes as f64 * spec.lfu_lane_ops);
        let pd_time = inst.operand_bytes() as f64 / spec.bw_bytes
            + flops as f64 / self.subtree_peak_ops(level + 1).max(1.0);
        lfu_time <= 0.25 * pd_time
    }

    /// Plans one incoming parent-space instruction at `level`.
    ///
    /// `resident_inputs[i]` marks inputs already present in local memory
    /// from a previous FISA cycle (cross-cycle forwarding; ignored by the
    /// functional executor). `parity` selects the static-segment stack.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CapacityExceeded`] when no decomposition fits
    /// this node's memory, and propagates split/validation errors.
    pub fn plan_instruction(
        &self,
        level: usize,
        inst: &Instruction,
        parity: bool,
    ) -> Result<NodePlan, CoreError> {
        self.plan_instruction_with(level, inst, parity, &PlanMemo::new(), &PlanArena::new())
    }

    /// [`Planner::plan_instruction`] against caller-owned memoization and
    /// arena state, so split decisions and buffers are shared across many
    /// plans (the performance simulator keeps both for a whole run).
    pub fn plan_instruction_with(
        &self,
        level: usize,
        inst: &Instruction,
        parity: bool,
        memo: &PlanMemo,
        arena: &PlanArena,
    ) -> Result<NodePlan, CoreError> {
        let mem_elems = self.cfg.mem_bytes_at(level) / ELEM_BYTES;
        let mut alloc = SegmentedAllocator::new(mem_elems);
        let mut items = Vec::new();
        self.sd_rec(
            level,
            SdInst::all_parent(inst.clone()),
            &mut alloc,
            0,
            parity,
            &mut items,
            false,
            memo,
        )?;
        self.build_steps(level, items, alloc, 0, memo, arena)
    }

    /// Plans the whole program at the root, whose operands are resident in
    /// the global memory (the root performs no DMA of its own). PD
    /// partials are allocated in scratch space above `scratch_base`
    /// elements.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::plan_instruction`].
    pub fn plan_root(
        &self,
        instructions: &[Instruction],
        scratch_base: u64,
    ) -> Result<NodePlan, CoreError> {
        self.plan_root_with(instructions, scratch_base, &PlanMemo::new(), &PlanArena::new())
    }

    /// [`Planner::plan_root`] against caller-owned memoization and arena
    /// state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::plan_instruction`].
    pub fn plan_root_with(
        &self,
        instructions: &[Instruction],
        scratch_base: u64,
        memo: &PlanMemo,
        arena: &PlanArena,
    ) -> Result<NodePlan, CoreError> {
        // The global memory the program lives in is the root node's memory
        // (§3.1): the root itself only needs allocator headroom for PD
        // partials, placed in scratch space above the program footprint.
        let mem_elems = self.cfg.mem_bytes_at(0) / ELEM_BYTES;
        let mut alloc = SegmentedAllocator::new(mem_elems);
        let mut items = Vec::new();
        for (i, inst) in instructions.iter().enumerate() {
            // At a resident root the distinction between the recycled and
            // static segments vanishes; use instruction parity as in §3.5.
            let mut sd = SdInst::all_parent(inst.clone());
            // Operands are already local.
            sd.input_space = vec![Space::Local; sd.inst.inputs.len()];
            sd.output_space = vec![Space::Local; sd.inst.outputs.len()];
            self.sd_rec(0, sd, &mut alloc, scratch_base, i % 2 == 1, &mut items, true, memo)?;
        }
        self.build_steps(0, items, alloc, scratch_base, memo, arena)
    }

    /// DD + PD + RC over the SD item list.
    fn build_steps(
        &self,
        level: usize,
        mut items: Vec<SdItem>,
        mut alloc: SegmentedAllocator,
        base: u64,
        memo: &PlanMemo,
        arena: &PlanArena,
    ) -> Result<NodePlan, CoreError> {
        let opts = self.cfg.opts;
        let is_leaf = self.cfg.is_leaf(level);
        let fanout = self.cfg.fanout_at(level);
        // Cross-cycle residency at a child is bounded by what its recycled
        // segments can keep alive between two of its FISA cycles.
        let child_resident_cap = self.cfg.mem_bytes_at(level + 1) / 8;
        let mut ttt = Ttt::new();
        let mut steps: Vec<Step> = arena.take_steps();
        steps.reserve(items.len());
        // FISA cycles advance on instruction steps only: reduce steps
        // allocate no recycled memory, so counting them would let a
        // still-valid TTT record's segment be recycled under it.
        let mut inst_cycle = 0usize;

        for item in items.drain(..) {
            let mut step = arena.take_step();
            match item {
                SdItem::Reduce(r) => {
                    // SD-level reduction: partial regions are already
                    // absolute local addresses.
                    step.reduce = Some(r);
                    // Conservatively serialise with the predecessor: it
                    // produced the last partial.
                    step.raw_dep_prev = true;
                }
                SdItem::Inst(sd) if sd.inst.op == Opcode::Merge1D => {
                    step.streaming_exec = Some(sd.inst);
                    step.raw_dep_prev = true;
                }
                SdItem::Inst(sd) => {
                    let idx = inst_cycle;
                    inst_cycle += 1;
                    let (seg_lo, seg_hi) = alloc.begin_step(idx);
                    // Stale residency over the recycled segment dies now.
                    ttt.invalidate_local_range(seg_lo + base, seg_hi + base);
                    // --- DD: bind local addresses -----------------------
                    let mut local_inputs = Vec::with_capacity(sd.inst.inputs.len());
                    let mut loads = std::mem::take(&mut step.loads);
                    let mut elided = 0u64;
                    for (region, space) in sd.inst.inputs.iter().zip(&sd.input_space) {
                        match space {
                            Space::Local => local_inputs.push(region.clone()),
                            Space::Parent => {
                                if opts.ttt {
                                    if let Some(local) = ttt.lookup(region) {
                                        elided += region.bytes();
                                        local_inputs.push(local.clone());
                                        continue;
                                    }
                                }
                                let off = alloc.alloc(idx, region.numel())?;
                                let local = Region::contiguous(off + base, region.shape().clone());
                                loads.push(DmaOp { parent: region.clone(), local: local.clone() });
                                local_inputs.push(local);
                            }
                        }
                    }
                    let mut local_outputs = Vec::with_capacity(sd.inst.outputs.len());
                    let mut stores = std::mem::take(&mut step.stores);
                    for (region, space) in sd.inst.outputs.iter().zip(&sd.output_space) {
                        match space {
                            Space::Local => local_outputs.push(region.clone()),
                            Space::Parent => {
                                let off = alloc.alloc(idx, region.numel())?;
                                let local = Region::contiguous(off + base, region.shape().clone());
                                stores.push(DmaOp { parent: region.clone(), local: local.clone() });
                                local_outputs.push(local);
                            }
                        }
                    }
                    // RAW dependency: a surviving load reads what the
                    // previous step writes back.
                    if let Some(prev) = steps.last() {
                        step.raw_dep_prev = loads
                            .iter()
                            .any(|l| prev.stores.iter().any(|s| l.parent.may_overlap(&s.parent)));
                    }
                    // TTT bookkeeping (lookup happened above; now advance).
                    ttt.begin_cycle(idx as u64);
                    for l in &loads {
                        ttt.record(l.parent.clone(), l.local.clone());
                    }
                    for s in &stores {
                        ttt.invalidate_overlapping(&s.parent);
                        ttt.record(s.parent.clone(), s.local.clone());
                    }
                    let local_inst =
                        Instruction::new(sd.inst.op, sd.inst.params, local_inputs, local_outputs)?;
                    step.loads = loads;
                    step.stores = stores;
                    step.elided_bytes = elided;

                    // --- routing: leaf / LFU / PD ------------------------
                    if is_leaf || self.route_to_lfu(level, &local_inst) {
                        step.local_exec = Some(local_inst);
                    } else {
                        match self.parallel_split(&local_inst, fanout.max(1), memo) {
                            Some(SplitOutcome::Direct(pieces)) => {
                                step.child_insts =
                                    annotate_pieces(pieces, &steps, opts.ttt, child_resident_cap);
                            }
                            Some(SplitOutcome::Reduce { pieces, kind }) => {
                                let mut partials = Vec::with_capacity(pieces.len());
                                let mut insts = Vec::with_capacity(pieces.len());
                                for piece in pieces {
                                    let regions = piece
                                        .partial_shapes
                                        .iter()
                                        .map(|s| {
                                            let off = alloc.alloc(idx, s.numel())?;
                                            Ok(Region::contiguous(off + base, s.clone()))
                                        })
                                        .collect::<Result<Vec<_>, CoreError>>()?;
                                    insts.push(piece.into_instruction(regions.clone())?);
                                    partials.push(regions);
                                }
                                let total: u64 =
                                    partials.iter().flat_map(|v| v.iter()).map(Region::numel).sum();
                                let out_elems: u64 =
                                    local_inst.outputs.iter().map(Region::numel).sum();
                                let ops = match kind {
                                    ReduceKind::Add | ReduceKind::Mul => {
                                        total.saturating_sub(out_elems)
                                    }
                                    ReduceKind::Merge => {
                                        total * (partials.len().max(2)).ilog2() as u64
                                    }
                                };
                                step.reduce = Some(ReduceStep {
                                    kind,
                                    partials,
                                    outputs: local_inst.outputs.clone(),
                                    output_space: Space::Local,
                                    on_lfu: self.reduce_on_lfu(level, ops),
                                    ops,
                                });
                                step.child_insts =
                                    annotate_pieces(insts, &steps, opts.ttt, child_resident_cap);
                            }
                            None => {
                                // Unsplittable (granularity 1 or fan-out 1):
                                // pass the whole instruction to one child;
                                // only LFU-capable childless cases stay.
                                if fanout >= 1 {
                                    step.child_insts = annotate_pieces(
                                        vec![local_inst],
                                        &steps,
                                        opts.ttt,
                                        child_resident_cap,
                                    );
                                } else {
                                    step.local_exec = Some(local_inst);
                                }
                            }
                        }
                    }
                }
            }
            steps.push(step);
        }
        Ok(NodePlan { steps, local_elems: base + alloc.high_water() })
    }
}

/// Best direct (non-reducing) split of `inst` into `parts`, by minimal
/// byte overhead. `None` when every splittable axis is output-dependent.
fn choose_direct_split(inst: &Instruction, parts: usize) -> Option<SplitOutcome> {
    use cf_ops::fractal::{apply_split, split_axes, split_overhead_bytes, Dependency};
    let mut best: Option<(u64, SplitOutcome)> = None;
    for axis in split_axes(inst) {
        if axis.extent < 2 || axis.dependency == Dependency::OutputDependent {
            continue;
        }
        let Ok(outcome) = apply_split(inst, axis.index, parts) else { continue };
        if outcome.len() < 2 {
            continue;
        }
        let cost = split_overhead_bytes(inst, &outcome);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, outcome));
        }
    }
    best.map(|(_, o)| o)
}

/// Computes residency and sharing masks for a step's pieces.
///
/// An input is marked resident only when (a) the same child slot touched
/// exactly the same region within the last two steps and (b) the region is
/// small enough to have survived in the child's recycled segments
/// (`max_resident_bytes`) — larger operands are physically re-staged.
fn annotate_pieces(
    pieces: Vec<Instruction>,
    prev_steps: &[Step],
    ttt_on: bool,
    max_resident_bytes: u64,
) -> Vec<ChildInst> {
    // Share count per (input index, region): how many sibling pieces read
    // the identical region. Pieces are few (at most the fan-out), so a
    // linear probe per input position beats hashing whole regions — the
    // offset comparison rejects distinct regions on the first word.
    let mut groups: Vec<Vec<(&Region, u32)>> = Vec::new();
    for p in &pieces {
        for (i, r) in p.inputs.iter().enumerate() {
            if groups.len() <= i {
                groups.resize_with(i + 1, Vec::new);
            }
            match groups[i].iter_mut().find(|(g, _)| *g == r) {
                Some((_, c)) => *c += 1,
                None => groups[i].push((r, 1)),
            }
        }
    }
    let shared: Vec<Vec<u32>> = pieces
        .iter()
        .map(|p| {
            p.inputs
                .iter()
                .enumerate()
                .map(|(i, r)| groups[i].iter().find(|(g, _)| *g == r).map(|(_, c)| *c).unwrap_or(1))
                .collect()
        })
        .collect();
    pieces
        .into_iter()
        .enumerate()
        .zip(shared)
        .map(|((slot, inst), shared_inputs)| {
            let resident_inputs = inst
                .inputs
                .iter()
                .map(|r| {
                    ttt_on
                        && r.bytes() <= max_resident_bytes
                        && prev_steps.iter().rev().take(2).any(|s| {
                            s.child_insts.get(slot).is_some_and(|c| {
                                c.inst.inputs.contains(r) || c.inst.outputs.contains(r)
                            })
                        })
                })
                .collect();
            ChildInst { inst, resident_inputs, shared_inputs }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::OpParams;

    fn reg(offset: u64, dims: &[usize]) -> Region {
        Region::contiguous(offset, Shape::new(dims.to_vec()))
    }

    fn matmul(m: usize, k: usize, n: usize) -> Instruction {
        Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(0, &[m, k]), reg((m * k) as u64, &[k, n])],
            vec![reg((m * k + k * n) as u64, &[m, n])],
        )
        .unwrap()
    }

    #[test]
    fn small_instruction_is_one_step() {
        let cfg = MachineConfig::tiny(1, 4, 1 << 20);
        let planner = Planner::new(&cfg);
        let plan = planner.plan_instruction(0, &matmul(64, 64, 64), false).unwrap();
        assert_eq!(plan.steps.len(), 1);
        let step = &plan.steps[0];
        assert_eq!(step.loads.len(), 2);
        assert_eq!(step.stores.len(), 1);
        assert!(!step.child_insts.is_empty());
    }

    #[test]
    fn oversized_instruction_is_sequentially_decomposed() {
        // 64 KiB node memory → 16 KiB segment; operands are 3 × 64 KiB.
        let cfg = MachineConfig::tiny(1, 4, 64 << 10);
        let planner = Planner::new(&cfg);
        let plan = planner.plan_instruction(0, &matmul(128, 128, 128), false).unwrap();
        assert!(plan.steps.len() > 1, "expected SD to split");
        // Every step must fit the segment.
        let seg_bytes = (64 << 10) / 4;
        for step in &plan.steps {
            let staged: u64 = step.loads.iter().chain(&step.stores).map(DmaOp::bytes).sum();
            assert!(staged <= seg_bytes, "step stages {staged} bytes > segment {seg_bytes}");
        }
        assert!(plan.local_elems * 4 <= 64 << 10);
    }

    #[test]
    fn ttt_elides_repeated_weight_loads() {
        // A batch-split conv: every piece shares the weight; within the SD
        // sequence the weight should be loaded once per 3 steps at most.
        let cfg = MachineConfig::tiny(1, 2, 32 << 10);
        let planner = Planner::new(&cfg);
        let x = reg(0, &[8, 6, 6, 4]);
        let w = reg(1152, &[3, 3, 4, 8]);
        let o = reg(1440, &[8, 4, 4, 8]);
        let inst = Instruction::new(
            Opcode::Cv2D,
            OpParams::Conv(cf_isa::ConvParams::same(1, 0)),
            vec![x, w],
            vec![o],
        )
        .unwrap();
        let plan = planner.plan_instruction(0, &inst, false).unwrap();
        assert!(plan.steps.len() >= 2);
        let elided: u64 = plan.steps.iter().map(|s| s.elided_bytes).sum();
        assert!(elided > 0, "TTT should elide some weight reloads");

        // With TTT off, nothing is elided.
        let cfg_off = cfg.clone().with_opts(crate::OptFlags::none());
        let plan_off = Planner::new(&cfg_off).plan_instruction(0, &inst, false).unwrap();
        let elided_off: u64 = plan_off.steps.iter().map(|s| s.elided_bytes).sum();
        assert_eq!(elided_off, 0);
        // And more bytes are loaded.
        let loads_on: u64 = plan.steps.iter().flat_map(|s| s.loads.iter()).map(DmaOp::bytes).sum();
        let loads_off: u64 =
            plan_off.steps.iter().flat_map(|s| s.loads.iter()).map(DmaOp::bytes).sum();
        assert!(loads_off > loads_on);
    }

    #[test]
    fn output_dependent_sd_produces_reduce_step() {
        // HSum over a vector far larger than the node memory segment.
        let cfg = MachineConfig::tiny(1, 2, 16 << 10);
        let planner = Planner::new(&cfg);
        let inst = Instruction::new(
            Opcode::HSum1D,
            OpParams::None,
            vec![reg(0, &[4096])],
            vec![reg(4096, &[1])],
        )
        .unwrap();
        let plan = planner.plan_instruction(0, &inst, false).unwrap();
        let reduces: Vec<&Step> =
            plan.steps.iter().filter(|s| s.reduce.is_some() && s.child_insts.is_empty()).collect();
        assert!(!reduces.is_empty(), "expected an SD-level reduce step");
        let r = reduces.last().unwrap().reduce.as_ref().unwrap();
        assert_eq!(r.output_space, Space::Parent);
    }

    #[test]
    fn pd_reduce_for_inner_split() {
        // MatMul with tiny M, N and large K: only the inner axis can fill
        // the fan-out, producing a PD-level reduction.
        let cfg = MachineConfig::tiny(1, 4, 4 << 20);
        let planner = Planner::new(&cfg);
        let inst = matmul(1, 65536, 1);
        let plan = planner.plan_instruction(0, &inst, false).unwrap();
        let step = &plan.steps[0];
        assert!(step.reduce.is_some());
        assert!(step.child_insts.len() >= 2);
        let r = step.reduce.as_ref().unwrap();
        assert_eq!(r.kind, ReduceKind::Add);
        assert_eq!(r.output_space, Space::Local);
    }

    #[test]
    fn shared_inputs_marked_for_broadcast() {
        // Batch-split conv shares the weight across all pieces.
        let cfg = MachineConfig::tiny(1, 4, 1 << 22);
        let planner = Planner::new(&cfg);
        let inst = Instruction::new(
            Opcode::Cv2D,
            OpParams::Conv(cf_isa::ConvParams::same(1, 0)),
            vec![reg(0, &[8, 6, 6, 4]), reg(1152, &[3, 3, 4, 8])],
            vec![reg(1440, &[8, 4, 4, 8])],
        )
        .unwrap();
        let plan = planner.plan_instruction(0, &inst, false).unwrap();
        let step = &plan.steps[0];
        assert!(step.child_insts.len() >= 2);
        for c in &step.child_insts {
            assert!(c.shared_inputs[1] > 1, "weight should be marked shared");
            assert_eq!(c.shared_inputs[0], 1, "input slices are private");
        }
    }

    #[test]
    fn leaf_executes_locally() {
        let cfg = MachineConfig::tiny(1, 2, 1 << 20);
        let planner = Planner::new(&cfg);
        // Level 1 is the leaf.
        let plan = planner.plan_instruction(1, &matmul(8, 8, 8), false).unwrap();
        assert!(plan.steps.iter().all(|s| s.child_insts.is_empty()));
        assert!(plan.steps[0].local_exec.is_some());
    }

    #[test]
    fn reduction_ops_route_to_lfu() {
        let cfg = MachineConfig::tiny(1, 4, 1 << 20);
        let planner = Planner::new(&cfg);
        let inst = Instruction::new(
            Opcode::Add1D,
            OpParams::None,
            vec![reg(0, &[256]), reg(256, &[256])],
            vec![reg(512, &[256])],
        )
        .unwrap();
        let plan = planner.plan_instruction(0, &inst, false).unwrap();
        // tiny level 0 has 4 LFU lanes: the elementwise op stays local.
        assert!(plan.steps[0].local_exec.is_some());
        assert!(plan.steps[0].child_insts.is_empty());
    }

    #[test]
    fn root_plan_covers_program_without_dma() {
        let cfg = MachineConfig::tiny(2, 2, 1 << 20);
        let planner = Planner::new(&cfg);
        let insts = vec![matmul(16, 16, 16)];
        let plan = planner.plan_root(&insts, 1000).unwrap();
        assert!(plan.steps.iter().all(|s| s.loads.is_empty() && s.stores.is_empty()));
        assert!(plan.local_elems >= 1000);
    }

    #[test]
    fn raw_dependency_detected_between_steps() {
        // Two chained matmuls forced into separate SD pieces would need a
        // producer/consumer pair; emulate with an explicit two-instruction
        // root plan where inst 1 consumes inst 0's output.
        let cfg = MachineConfig::tiny(1, 2, 1 << 14);
        let planner = Planner::new(&cfg);
        let a = matmul(32, 32, 32);
        let plan = planner.plan_instruction(0, &a, false).unwrap();
        // SD pieces of one matmul share no outputs, so at most the reduce
        // steps carry dependencies; just assert planning succeeded and
        // dependency flags are well-formed.
        assert!(!plan.steps.is_empty());
        assert!(!plan.steps[0].raw_dep_prev);
    }

    #[test]
    fn merge_streams_through() {
        let cfg = MachineConfig::tiny(1, 2, 1 << 12);
        let planner = Planner::new(&cfg);
        // A merge far bigger than local memory still plans (streaming).
        let inst = Instruction::new(
            Opcode::Merge1D,
            OpParams::None,
            vec![reg(0, &[4096]), reg(4096, &[4096])],
            vec![reg(8192, &[8192])],
        )
        .unwrap();
        let plan = planner.plan_instruction(0, &inst, false).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.steps[0].streaming_exec.is_some());
    }
}
