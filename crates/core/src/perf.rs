//! Performance simulation: times the controller's plans with a
//! resource-constrained five-stage pipeline model (§3.4, Figure 8).
//!
//! Every node runs the ID/LD/EX/RD/WB pipeline over its step list:
//!
//! * **ID** — decode latency of the level's controller;
//! * **LD** — DMA loads over the link from the parent (which all siblings
//!   share: per-child bandwidth is the parent's memory bandwidth divided by
//!   the fan-out; broadcast-shared operands are served once at full
//!   bandwidth when the optimisation is on);
//! * **EX** — the children's own (recursive) pipelines, or the kernel at a
//!   leaf;
//! * **RD** — `g(·)` on the LFU (or commissioned through the CMR);
//! * **WB** — DMA writebacks, sharing the DMA engine with LD.
//!
//! Recursion is memoized on the *signature* of an incoming instruction
//! (opcode, parameters, operand shapes, residency/broadcast masks) — sound
//! because planning depends only on shapes, never on absolute addresses —
//! which lets paper-scale workloads (a 32768² MATMUL on 2048 cores)
//! simulate in milliseconds. Pipeline concatenating (§3.6) admits the next
//! step's children at the *steady-state* spacing instead of the full
//! makespan whenever no read-after-write hazard forbids pre-assignment.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use cf_isa::{Instruction, Program};
use cf_ops::cost;
use cf_tensor::Region;

use crate::arena::PlanArena;
use crate::hash::FxBuildHasher;
use crate::memo::PlanMemo;
use crate::plan::{NodePlan, Planner, Space, Step};
use crate::profile::{ProfileReport, ProfileState};
use crate::stats::Stats;
use crate::{CoreError, MachineConfig};

/// Timing outcome of one incoming instruction at one node (a subtree).
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Wall-clock time from first decode to last writeback.
    pub makespan: f64,
    /// Steady-state spacing: the busiest pipeline resource's total busy
    /// time. Pipeline concatenating lets back-to-back instructions be
    /// spaced at this interval instead of the makespan.
    pub steady: f64,
    /// Subtree statistics (level 0 = this node's own link/LFU counters).
    pub stats: Stats,
}

/// Per-step stage durations.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimes {
    /// Decode.
    pub id: f64,
    /// Loads over the parent link.
    pub ld: f64,
    /// Children from a cold pipeline.
    pub ex_full: f64,
    /// Children at steady state (concatenated pipelines).
    pub ex_steady: f64,
    /// Reduction / LFU work.
    pub rd: f64,
    /// Writebacks over the parent link.
    pub wb: f64,
}

/// Absolute schedule of one step (used by the timeline extractor).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepSchedule {
    /// ID interval (the decoder is a serial resource from t=0).
    pub id: (f64, f64),
    /// LD interval.
    pub ld: (f64, f64),
    /// EX interval.
    pub ex: (f64, f64),
    /// RD interval.
    pub rd: (f64, f64),
    /// WB interval.
    pub wb: (f64, f64),
}

/// The memoizing performance simulator.
#[derive(Debug)]
pub struct PerfSim<'a> {
    planner: Planner<'a>,
    cache: RefCell<HashMap<Key, Rc<NodeOutcome>, FxBuildHasher>>,
    /// Shape-level split memo shared by every plan of this run.
    plan_memo: PlanMemo,
    /// Pooled plan buffers, refilled as timed plans are retired.
    arena: PlanArena,
    /// Subtree simulations fanned out by [`PerfSim::simulate_parallel`].
    parallel_tasks: std::cell::Cell<u64>,
    /// Opt-in attribution state; `None` keeps the hot path to one branch.
    profile: Option<RefCell<ProfileState>>,
}

/// Cold-path instrumentation of one simulation run. Deliberately *not*
/// part of [`crate::PerfReport`]: the optimized and naive paths must
/// produce byte-identical reports, and these counters differ by design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColdStats {
    /// Split decisions served from the shape memo.
    pub shape_memo_hits: u64,
    /// Split decisions computed (and cached).
    pub shape_memo_misses: u64,
    /// High-water bytes of plan buffers retained by the arena.
    pub arena_bytes: u64,
    /// Subtree simulations fanned out to worker threads
    /// (0 on the sequential path).
    pub parallel_tasks: u64,
}

#[derive(Debug, PartialEq, Eq, Hash)]
struct Key {
    level: usize,
    op: cf_isa::Opcode,
    params: [u64; 8],
    /// Operand shapes flattened as `input count, (rank, dims…)*` with
    /// inputs before outputs — injective, and two allocations cheaper per
    /// cache probe than nested per-operand vectors.
    dims: Vec<u64>,
    resident: u32,
    shared: Vec<u32>,
}

fn mask(bits: &[bool]) -> u32 {
    bits.iter().enumerate().fold(0u32, |m, (i, &b)| if b && i < 32 { m | (1 << i) } else { m })
}

impl Key {
    fn new(level: usize, inst: &Instruction, resident: &[bool], shared: &[u32]) -> Self {
        let operands = inst.inputs.len() + inst.outputs.len();
        let mut dims = Vec::with_capacity(1 + 5 * operands);
        dims.push(inst.inputs.len() as u64);
        for r in inst.inputs.iter().chain(&inst.outputs) {
            let d = r.shape().dims();
            dims.push(d.len() as u64);
            dims.extend(d.iter().map(|&x| x as u64));
        }
        Key {
            level,
            op: inst.op,
            params: inst.params.stable_bits(),
            dims,
            resident: mask(resident),
            shared: shared.to_vec(),
        }
    }
}

impl PerfSim<'_> {
    /// Test helper: simulate `program` on an owned config, returning
    /// `(makespan, total sibling bytes)`.
    #[doc(hidden)]
    pub fn new_owned_cfg_for_tests(cfg: MachineConfig, program: &Program) -> (f64, u64) {
        let sim = PerfSim::new(&cfg);
        let out = sim.simulate(program).expect("simulation");
        let sib = out.stats.levels.iter().map(|l| l.sibling_bytes).sum();
        (out.makespan, sib)
    }
}

impl<'a> PerfSim<'a> {
    /// A simulator over `cfg`.
    pub fn new(cfg: &'a MachineConfig) -> Self {
        PerfSim {
            planner: Planner::new(cfg),
            cache: RefCell::new(HashMap::default()),
            plan_memo: PlanMemo::new(),
            arena: PlanArena::new(),
            parallel_tasks: std::cell::Cell::new(0),
            profile: None,
        }
    }

    /// The naive reference simulator: no shape memo, no buffer reuse —
    /// the planner recomputes every split from the real operand
    /// addresses. Differential tests compare its output (which must be
    /// byte-identical) against [`PerfSim::new`].
    pub fn naive(cfg: &'a MachineConfig) -> Self {
        PerfSim {
            planner: Planner::new(cfg),
            cache: RefCell::new(HashMap::default()),
            plan_memo: PlanMemo::disabled(),
            arena: PlanArena::new(),
            parallel_tasks: std::cell::Cell::new(0),
            profile: None,
        }
    }

    /// A simulator over `cfg` with per-level/per-signature profiling on.
    pub fn with_profiling(cfg: &'a MachineConfig) -> Self {
        PerfSim {
            planner: Planner::new(cfg),
            cache: RefCell::new(HashMap::default()),
            plan_memo: PlanMemo::new(),
            arena: PlanArena::new(),
            parallel_tasks: std::cell::Cell::new(0),
            profile: Some(RefCell::new(ProfileState::default())),
        }
    }

    /// The accumulated profile with the `top` hottest signatures, or
    /// `None` when the simulator was built without profiling.
    pub fn profile_report(&self, makespan_s: f64, top: usize) -> Option<ProfileReport> {
        self.profile.as_ref().map(|p| {
            let mut report = p.borrow().report(makespan_s, top);
            report.shape_memo_hits = self.plan_memo.hits();
            report.shape_memo_misses = self.plan_memo.misses();
            report
        })
    }

    /// Cold-path counters accumulated so far.
    pub fn cold_stats(&self) -> ColdStats {
        ColdStats {
            shape_memo_hits: self.plan_memo.hits(),
            shape_memo_misses: self.plan_memo.misses(),
            arena_bytes: self.arena.high_water_bytes(),
            parallel_tasks: self.parallel_tasks.get(),
        }
    }

    fn cfg(&self) -> &MachineConfig {
        self.planner.config()
    }

    /// Simulates a whole program on the machine, data resident in global
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn simulate(&self, program: &Program) -> Result<NodeOutcome, CoreError> {
        let plan = self.planner.plan_root_with(
            program.instructions(),
            program.extern_elems(),
            &self.plan_memo,
            &self.arena,
        )?;
        let out = self.time_plan(0, &plan, &[], &[], None)?;
        self.recycle(plan);
        Ok(out)
    }

    /// Returns a consumed plan's buffers to the arena.
    fn recycle(&self, plan: NodePlan) {
        self.arena.put_steps(plan.steps);
    }

    /// [`PerfSim::simulate`] with the cold subtree work fanned out across
    /// up to `threads` worker threads.
    ///
    /// The root plan exposes the program's level-1 frontier; each *unique*
    /// uncached child signature is simulated on a worker with its own
    /// fresh [`PerfSim`], and the results are used to [`PerfSim::warm`]
    /// this simulator's outcome cache. The final sequential walk then
    /// finds every frontier subtree already cached. The merge is
    /// deterministic: an outcome is a pure function of `(config, level,
    /// signature, masks)`, so a warmed entry is bit-identical to what the
    /// sequential walk would have computed, and the walk order itself
    /// never changes. A worker that fails merely skips warming — the
    /// sequential walk recomputes (and re-reports) the failure
    /// deterministically.
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn simulate_parallel(
        &self,
        program: &Program,
        threads: usize,
    ) -> Result<NodeOutcome, CoreError> {
        let plan = self.planner.plan_root_with(
            program.instructions(),
            program.extern_elems(),
            &self.plan_memo,
            &self.arena,
        )?;
        if threads >= 2 {
            // Unique uncached level-1 signatures, in first-appearance order.
            let mut seen: std::collections::HashSet<Key, FxBuildHasher> =
                std::collections::HashSet::default();
            let mut tasks: Vec<&crate::plan::ChildInst> = Vec::new();
            for step in &plan.steps {
                for child in &step.child_insts {
                    let key =
                        Key::new(1, &child.inst, &child.resident_inputs, &child.shared_inputs);
                    if self.cache.borrow().contains_key(&key) {
                        continue;
                    }
                    if seen.insert(key) {
                        tasks.push(child);
                    }
                }
            }
            if tasks.len() >= 2 {
                let cfg = self.cfg();
                let workers = threads.min(tasks.len());
                // Round-robin so similar-cost neighbours spread out.
                let mut chunks: Vec<Vec<&crate::plan::ChildInst>> = vec![Vec::new(); workers];
                for (i, t) in tasks.iter().enumerate() {
                    chunks[i % workers].push(t);
                }
                let results: Vec<Vec<Option<NodeOutcome>>> = std::thread::scope(|s| {
                    let handles: Vec<_> = chunks
                        .iter()
                        .map(|chunk| {
                            s.spawn(move || {
                                let sim = PerfSim::new(cfg);
                                chunk
                                    .iter()
                                    .map(|c| {
                                        sim.time_incoming(
                                            1,
                                            &c.inst,
                                            &c.resident_inputs,
                                            &c.shared_inputs,
                                        )
                                        .ok()
                                        .map(|rc| (*rc).clone())
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
                });
                for (chunk, outs) in chunks.iter().zip(results) {
                    for (c, out) in chunk.iter().zip(outs) {
                        if let Some(o) = out {
                            self.warm(1, &c.inst, &c.resident_inputs, &c.shared_inputs, o);
                            self.parallel_tasks.set(self.parallel_tasks.get() + 1);
                        }
                    }
                }
            }
        }
        let out = self.time_plan(0, &plan, &[], &[], None)?;
        self.recycle(plan);
        Ok(out)
    }

    /// Simulates one parent-space instruction arriving at `level`.
    ///
    /// # Errors
    ///
    /// Propagates planning errors.
    pub fn time_incoming(
        &self,
        level: usize,
        inst: &Instruction,
        resident: &[bool],
        shared: &[u32],
    ) -> Result<Rc<NodeOutcome>, CoreError> {
        let key = Key::new(level, inst, resident, shared);
        if let Some(hit) = self.cache.borrow().get(&key) {
            if let Some(p) = &self.profile {
                p.borrow_mut().record_hit(level, inst, resident, shared);
            }
            return Ok(Rc::clone(hit));
        }
        if let Some(p) = &self.profile {
            p.borrow_mut().begin_compute();
        }
        let plan =
            self.planner.plan_instruction_with(level, inst, false, &self.plan_memo, &self.arena)?;
        let outcome = Rc::new(self.time_plan(level, &plan, resident, shared, Some(inst))?);
        self.recycle(plan);
        if let Some(p) = &self.profile {
            p.borrow_mut().end_compute(level, inst, resident, shared, &outcome);
        }
        self.cache.borrow_mut().insert(key, Rc::clone(&outcome));
        Ok(outcome)
    }

    /// Pre-populates the outcome memo with an externally computed subtree
    /// result (the parallel cold path computes unique signatures on worker
    /// threads, then warms the main simulator's cache with them). Sound
    /// because an outcome is a pure function of `(config, level,
    /// instruction signature, masks)` — a warmed entry is exactly what a
    /// sequential walk would have computed and cached.
    pub fn warm(
        &self,
        level: usize,
        inst: &Instruction,
        resident: &[bool],
        shared: &[u32],
        outcome: NodeOutcome,
    ) {
        let key = Key::new(level, inst, resident, shared);
        self.cache.borrow_mut().entry(key).or_insert_with(|| Rc::new(outcome));
    }

    /// The planner in use (for timeline extraction).
    pub fn planner(&self) -> &Planner<'a> {
        &self.planner
    }

    /// Per-step stage durations of an incoming instruction's plan —
    /// diagnostic introspection for the experiment harness.
    #[doc(hidden)]
    pub fn debug_stage_times(
        &self,
        level: usize,
        inst: &Instruction,
        resident: &[bool],
        shared: &[u32],
    ) -> Result<Vec<StageTimes>, CoreError> {
        let plan = self.planner.plan_instruction(level, inst, false)?;
        Ok(self.stage_times_of_plan(level, &plan, resident, shared, Some(inst))?.0)
    }

    /// Stage durations of one step plus its stats contribution.
    ///
    /// `incoming` provides the original operand regions and masks so
    /// resident/broadcast operands can be recognised in the step's loads.
    ///
    /// # Errors
    ///
    /// Propagates planning errors from child recursion.
    pub(crate) fn step_times(
        &self,
        level: usize,
        step: &Step,
        resident_regions: &[&Region],
        shared_regions: &[(&Region, u32)],
        stats: &mut Stats,
    ) -> Result<StageTimes, CoreError> {
        let cfg = self.cfg();
        let opts = cfg.opts;
        let is_leaf = cfg.is_leaf(level);
        let is_root = level == 0;
        let mut t = StageTimes::default();

        // --- link parameters -------------------------------------------
        let (link_bw, full_bw, dma_lat) = if is_root {
            (f64::INFINITY, f64::INFINITY, 0.0)
        } else {
            let parent = &cfg.levels[level - 1];
            let per_child = parent.bw_bytes / parent.fanout.max(1) as f64;
            let lat =
                if is_leaf { cfg.leaf.dma_latency_s } else { cfg.levels[level].dma_latency_s };
            (per_child, parent.bw_bytes, lat)
        };
        let decode = if is_leaf { cfg.leaf.decode_s } else { cfg.levels[level].decode_s };
        let lfu_rate = if is_leaf {
            cfg.leaf.vec_ops
        } else {
            let l = &cfg.levels[level];
            (l.lfu_lanes as f64).max(0.0) * l.lfu_lane_ops
        };
        let local_bw = if is_leaf { cfg.leaf.bw_bytes } else { cfg.levels[level].bw_bytes };

        t.id = decode;

        // --- LD ----------------------------------------------------------
        let mut unique_bytes = 0u64;
        let mut shared_bytes = 0u64;
        let mut shared_served = 0u64; // once-per-group share of shared bytes
        let mut elided = step.elided_bytes;
        for l in &step.loads {
            if opts.ttt && resident_regions.iter().any(|r| r.may_overlap(&l.parent)) {
                elided += l.bytes();
                continue;
            }
            match shared_regions.iter().find(|(r, _)| r.may_overlap(&l.parent)) {
                Some((_, group)) => {
                    shared_bytes += l.bytes();
                    shared_served += l.bytes() / (*group as u64).max(1);
                }
                None => unique_bytes += l.bytes(),
            }
        }
        let (ld_time, link_in_bytes, bcast_saved) = if opts.broadcast {
            (
                unique_bytes as f64 / link_bw + shared_bytes as f64 / full_bw,
                unique_bytes + shared_served,
                shared_bytes - shared_served,
            )
        } else {
            ((unique_bytes + shared_bytes) as f64 / link_bw, unique_bytes + shared_bytes, 0)
        };
        t.ld = ld_time + if step.loads.is_empty() { 0.0 } else { dma_lat };

        // --- EX ------------------------------------------------------------
        if let Some(inst) = &step.local_exec {
            if is_leaf {
                let mac = cost::mac_ops(inst);
                let vec = cost::flops(inst).saturating_sub(mac);
                let compute = mac as f64 / cfg.leaf.mac_ops + vec as f64 / cfg.leaf.vec_ops;
                let scratch = inst.operand_bytes() as f64 / local_bw;
                t.ex_full = compute.max(scratch);
                t.ex_steady = t.ex_full;
                stats.mac_ops += mac;
                stats.vec_ops += vec;
            } else {
                // LFU-routed instruction executes in the RD slot.
                let ops = cost::flops(inst);
                t.rd += ops as f64 / lfu_rate.max(1.0);
                stats.root_level_mut().lfu_ops += ops;
            }
        }
        if !step.child_insts.is_empty() {
            let fanout = cfg.fanout_at(level).max(1);
            let mut slot_full = vec![0.0f64; fanout];
            let mut slot_steady = vec![0.0f64; fanout];
            let mut slot_first = vec![true; fanout];
            for (i, child) in step.child_insts.iter().enumerate() {
                let slot = i % fanout;
                let outcome = self.time_incoming(
                    level + 1,
                    &child.inst,
                    &child.resident_inputs,
                    &child.shared_inputs,
                )?;
                stats.absorb_child(&outcome.stats);
                if slot_first[slot] {
                    slot_full[slot] += outcome.makespan;
                    slot_first[slot] = false;
                } else if opts.concat {
                    slot_full[slot] += outcome.steady;
                    if let Some(p) = &self.profile {
                        p.borrow_mut()
                            .record_concat_saved(level, outcome.makespan - outcome.steady);
                    }
                } else {
                    slot_full[slot] += outcome.makespan;
                }
                slot_steady[slot] += outcome.steady;
            }
            t.ex_full += slot_full.iter().copied().fold(0.0, f64::max);
            t.ex_steady += slot_steady.iter().copied().fold(0.0, f64::max);
        } else if step.local_exec.is_none() {
            t.ex_steady = t.ex_steady.max(0.0);
        }
        if step.child_insts.is_empty() && step.local_exec.is_some() && !is_leaf {
            // Pure-LFU step: EX is a bubble.
        }

        // --- RD -------------------------------------------------------------
        if let Some(inst) = &step.streaming_exec {
            let ops = cost::flops(inst);
            let bytes = inst.operand_bytes();
            let stream_bw = if is_root { local_bw } else { link_bw };
            t.rd += (bytes as f64 / stream_bw).max(ops as f64 / lfu_rate.max(1.0));
            stats.root_level_mut().lfu_ops += ops;
        }
        let mut reduce_parent_bytes = 0u64;
        if let Some(r) = &step.reduce {
            let partial_bytes: u64 =
                r.partials.iter().flat_map(|v| v.iter()).map(Region::bytes).sum();
            // §8 extension: when the partials were just produced by this
            // step's own children (a PD-level reduction), sibling links
            // let them combine in a log-depth tree across the FFUs — the
            // parent memory never sees the partial traffic.
            let sibling_time = (opts.sibling_links
                && !step.child_insts.is_empty()
                && r.partials.len() >= 2)
                .then(|| {
                    let fanout = cfg.fanout_at(level).max(1) as f64;
                    let sibling_bw = local_bw / fanout;
                    let per_piece = partial_bytes as f64 / r.partials.len() as f64;
                    let depth = (r.partials.len() as f64).log2().ceil().max(1.0);
                    depth * per_piece / sibling_bw
                        + r.ops as f64 / self.planner.subtree_peak_ops(level + 1).max(1.0)
                });
            let lfu_time = {
                let lfu_t = r.ops as f64 / lfu_rate.max(1.0);
                let mem_t = 2.0 * partial_bytes as f64 / local_bw;
                lfu_t.max(mem_t)
            };
            let commissioned_time = 3.0 * partial_bytes as f64 / local_bw
                + r.ops as f64 / self.planner.subtree_peak_ops(level + 1).max(1.0);
            let htree_time = if r.on_lfu { lfu_time } else { commissioned_time };
            match sibling_time {
                Some(sib) if sib < htree_time => {
                    t.rd += sib;
                    stats.root_level_mut().sibling_bytes += partial_bytes;
                }
                _ => {
                    t.rd += htree_time;
                    if r.on_lfu {
                        stats.root_level_mut().lfu_ops += r.ops;
                    }
                }
            }
            if r.output_space == Space::Parent {
                reduce_parent_bytes = r.outputs.iter().map(Region::bytes).sum();
            }
        }

        // --- WB ---------------------------------------------------------------
        let store_bytes: u64 =
            step.stores.iter().map(|s| s.bytes()).sum::<u64>() + reduce_parent_bytes;
        t.wb = store_bytes as f64 / link_bw + if store_bytes > 0 { dma_lat } else { 0.0 };

        // --- stats -------------------------------------------------------------
        let own = stats.root_level_mut();
        own.insts += 1;
        own.dma_bytes += link_in_bytes + store_bytes;
        own.elided_bytes += elided;
        own.broadcast_saved_bytes += bcast_saved;
        Ok(t)
    }

    /// Times a whole plan with the in-order pipeline scheduler.
    pub(crate) fn time_plan(
        &self,
        level: usize,
        plan: &NodePlan,
        resident: &[bool],
        shared: &[u32],
        incoming: Option<&Instruction>,
    ) -> Result<NodeOutcome, CoreError> {
        let (times, stats) = self.stage_times_of_plan(level, plan, resident, shared, incoming)?;
        if let Some(p) = &self.profile {
            let own_bytes = stats.levels.first().map(|l| l.dma_bytes).unwrap_or(0);
            // Step-level concatenation: steps without a RAW hazard admit
            // their EX at steady spacing (mirrors schedule_pipeline).
            let mut saved = 0.0;
            if self.cfg().opts.concat {
                for (i, t) in times.iter().enumerate() {
                    if i > 0 && !plan.steps[i].raw_dep_prev {
                        saved += (t.ex_full - t.ex_steady.min(t.ex_full)).max(0.0);
                    }
                }
            }
            let mut state = p.borrow_mut();
            state.record_plan(level, &times, own_bytes);
            if saved > 0.0 {
                state.record_concat_saved(level, saved);
            }
        }
        let (schedule, makespan) = schedule_pipeline(plan, &times, self.cfg().opts.concat);
        let _ = schedule;
        let steady = steady_of(&times);
        Ok(NodeOutcome { makespan, steady, stats })
    }

    /// Stage durations for every step of a plan.
    pub(crate) fn stage_times_of_plan(
        &self,
        level: usize,
        plan: &NodePlan,
        resident: &[bool],
        shared: &[u32],
        incoming: Option<&Instruction>,
    ) -> Result<(Vec<StageTimes>, Stats), CoreError> {
        let mut stats = Stats::new();
        let (res_regions, sh_regions): (Vec<&Region>, Vec<(&Region, u32)>) = match incoming {
            Some(inst) => (
                inst.inputs
                    .iter()
                    .zip(resident.iter().chain(std::iter::repeat(&false)))
                    .filter(|(_, &m)| m)
                    .map(|(r, _)| r)
                    .collect(),
                inst.inputs
                    .iter()
                    .zip(shared.iter().chain(std::iter::repeat(&1)))
                    .filter(|(_, &g)| g > 1)
                    .map(|(r, &g)| (r, g))
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        let times = plan
            .steps
            .iter()
            .map(|s| self.step_times(level, s, &res_regions, &sh_regions, &mut stats))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((times, stats))
    }
}

/// Busiest-resource total (the steady-state spacing of the node pipeline).
pub(crate) fn steady_of(times: &[StageTimes]) -> f64 {
    let id: f64 = times.iter().map(|t| t.id).sum();
    let dma: f64 = times.iter().map(|t| t.ld + t.wb).sum();
    let ex: f64 = times.iter().map(|t| t.ex_steady).sum();
    let rd: f64 = times.iter().map(|t| t.rd).sum();
    id.max(dma).max(ex).max(rd)
}

/// In-order pipeline scheduler: returns per-step absolute intervals and the
/// makespan. Resources: the decoder (ID), the DMA engine (LD+WB), the FFUs
/// (EX) and the LFU (RD). Three recycled memory segments bound the number
/// of in-flight steps; RAW hazards stall LD until the producer's WB.
pub(crate) fn schedule_pipeline(
    plan: &NodePlan,
    times: &[StageTimes],
    concat: bool,
) -> (Vec<StepSchedule>, f64) {
    let n = times.len();
    let mut sched = vec![StepSchedule::default(); n];
    let mut id_end = 0.0f64;
    let mut dma_free = 0.0f64;
    let mut ex_end_prev = 0.0f64;
    let mut rd_end_prev = 0.0f64;
    let mut makespan = 0.0f64;
    for i in 0..n {
        let t = &times[i];
        let id_start = id_end;
        id_end += t.id;
        let mut ld_start = id_end.max(dma_free);
        if plan.steps[i].raw_dep_prev && i > 0 {
            ld_start = ld_start.max(sched[i - 1].wb.1).max(sched[i - 1].rd.1);
        }
        if i >= crate::memory::RECYCLED_SEGMENTS {
            ld_start = ld_start.max(sched[i - crate::memory::RECYCLED_SEGMENTS].wb.1);
        }
        let ld_end = ld_start + t.ld;
        dma_free = ld_end;
        let ex_dur = if i > 0 && concat && !plan.steps[i].raw_dep_prev {
            t.ex_steady.min(t.ex_full)
        } else {
            t.ex_full
        };
        let ex_start = ld_end.max(ex_end_prev);
        let ex_end = ex_start + ex_dur;
        ex_end_prev = ex_end;
        let rd_start = ex_end.max(rd_end_prev);
        let rd_end = rd_start + t.rd;
        rd_end_prev = rd_end;
        let wb_start = rd_end.max(dma_free);
        let wb_end = wb_start + t.wb;
        dma_free = wb_end;
        sched[i] = StepSchedule {
            id: (id_start, id_end),
            ld: (ld_start, ld_end),
            ex: (ex_start, ex_end),
            rd: (rd_start, rd_end),
            wb: (wb_start, wb_end),
        };
        makespan = makespan.max(wb_end).max(rd_end);
    }
    (sched, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{Opcode, ProgramBuilder};

    fn matmul_program(m: usize, k: usize, n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![m, k]);
        let w = b.alloc("w", vec![k, n]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        b.build()
    }

    #[test]
    fn simulation_reports_positive_time_and_work() {
        let cfg = MachineConfig::cambricon_f1();
        let sim = PerfSim::new(&cfg);
        let out = sim.simulate(&matmul_program(512, 512, 512)).unwrap();
        assert!(out.makespan > 0.0);
        assert!(out.steady > 0.0);
        assert!(out.steady <= out.makespan + 1e-12);
        assert_eq!(out.stats.mac_ops, 2 * 512u64.pow(3));
    }

    #[test]
    fn bigger_work_takes_longer() {
        let cfg = MachineConfig::cambricon_f1();
        let sim = PerfSim::new(&cfg);
        let small = sim.simulate(&matmul_program(256, 256, 256)).unwrap();
        let big = sim.simulate(&matmul_program(1024, 1024, 1024)).unwrap();
        assert!(big.makespan > small.makespan);
    }

    #[test]
    fn f100_outruns_f1_on_large_matmul() {
        let p = matmul_program(4096, 4096, 4096);
        let f1 = MachineConfig::cambricon_f1();
        let f100 = MachineConfig::cambricon_f100();
        let t1 = PerfSim::new(&f1).simulate(&p).unwrap().makespan;
        let t100 = PerfSim::new(&f100).simulate(&p).unwrap().makespan;
        assert!(
            t100 < t1,
            "the 956-Top machine ({t100:.6}s) should beat the 14.9-Top one ({t1:.6}s)"
        );
    }

    #[test]
    fn utilization_is_physical() {
        // Attained throughput can never exceed peak.
        let cfg = MachineConfig::cambricon_f1();
        let sim = PerfSim::new(&cfg);
        let p = matmul_program(2048, 2048, 2048);
        let out = sim.simulate(&p).unwrap();
        let attained = out.stats.mac_ops as f64 / out.makespan;
        assert!(attained <= cfg.peak_ops() * 1.0001, "attained {attained:e} > peak");
        // And a large matmul should reach a decent fraction of peak.
        assert!(
            attained >= 0.15 * cfg.peak_ops(),
            "attained only {:.1}% of peak",
            100.0 * attained / cfg.peak_ops()
        );
    }

    #[test]
    fn ttt_ablation_increases_traffic() {
        let p = matmul_program(1024, 1024, 1024);
        let on = MachineConfig::cambricon_f1();
        let off = MachineConfig::cambricon_f1()
            .with_opts(crate::OptFlags { ttt: false, ..Default::default() });
        let s_on = PerfSim::new(&on).simulate(&p).unwrap();
        let s_off = PerfSim::new(&off).simulate(&p).unwrap();
        let t_on = s_on.stats.root_traffic_bytes();
        let t_off = s_off.stats.root_traffic_bytes();
        assert!(t_off >= t_on, "TTT should never increase traffic ({t_on} vs {t_off})");
        assert!(s_off.makespan >= s_on.makespan * 0.999);
    }

    #[test]
    fn broadcast_ablation_increases_local_traffic() {
        let mut b = ProgramBuilder::new();
        // Batched conv: weights are broadcast-shared among FFUs.
        let x = b.alloc("x", vec![32, 14, 14, 64]);
        let w = b.alloc("w", vec![3, 3, 64, 64]);
        b.apply_with(Opcode::Cv2D, cf_isa::OpParams::Conv(cf_isa::ConvParams::same(1, 1)), [x, w])
            .unwrap();
        let p = b.build();
        let on = MachineConfig::cambricon_f1();
        let off = MachineConfig::cambricon_f1()
            .with_opts(crate::OptFlags { broadcast: false, ..Default::default() });
        let s_on = PerfSim::new(&on).simulate(&p).unwrap();
        let s_off = PerfSim::new(&off).simulate(&p).unwrap();
        let saved: u64 = s_on.stats.levels.iter().map(|l| l.broadcast_saved_bytes).sum();
        assert!(saved > 0, "broadcasting should save parent-memory reads");
        let traffic = |s: &NodeOutcome| s.stats.levels.iter().map(|l| l.dma_bytes).sum::<u64>();
        assert!(traffic(&s_off) > traffic(&s_on));
    }

    #[test]
    fn concat_ablation_never_speeds_up() {
        let p = matmul_program(1024, 1024, 1024);
        let on = MachineConfig::cambricon_f1();
        let off = MachineConfig::cambricon_f1()
            .with_opts(crate::OptFlags { concat: false, ..Default::default() });
        let t_on = PerfSim::new(&on).simulate(&p).unwrap().makespan;
        let t_off = PerfSim::new(&off).simulate(&p).unwrap().makespan;
        assert!(t_off >= t_on * 0.999, "concat off ({t_off}) should not beat on ({t_on})");
    }

    #[test]
    fn sibling_links_never_hurt_and_help_merges() {
        // §8 extension: a merge-reduction workload (sorts) benefits; the
        // feature may never slow anything down (RC picks the better path).
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![1 << 20]);
        let y = b.alloc("y", vec![1 << 20]);
        b.emit(Opcode::Sort1D, [x], [y]).unwrap();
        let p = b.build();
        let base = PerfSim::new_owned_cfg_for_tests(MachineConfig::cambricon_f100(), &p);
        let ext = PerfSim::new_owned_cfg_for_tests(
            MachineConfig::cambricon_f100().with_opts(crate::OptFlags::with_sibling_links()),
            &p,
        );
        assert!(ext.0 <= base.0 * 1.001, "sibling links slowed sorts: {} vs {}", ext.0, base.0);
        assert!(ext.1 > 0, "sibling traffic should be recorded");
        // And a plain matmul is unaffected.
        let mm = matmul_program(1024, 1024, 1024);
        let b0 = PerfSim::new_owned_cfg_for_tests(MachineConfig::cambricon_f1(), &mm);
        let b1 = PerfSim::new_owned_cfg_for_tests(
            MachineConfig::cambricon_f1().with_opts(crate::OptFlags::with_sibling_links()),
            &mm,
        );
        assert!((b0.0 - b1.0).abs() / b0.0 < 0.05);
    }

    #[test]
    fn parallel_simulate_is_bit_identical_and_fans_out() {
        // Several distinct-shape instructions so the level-1 frontier has
        // multiple unique signatures to fan out.
        let mut b = ProgramBuilder::new();
        for n in [256usize, 384, 512] {
            let a = b.alloc(&format!("a{n}"), vec![n, n]);
            let w = b.alloc(&format!("w{n}"), vec![n, n]);
            b.apply(Opcode::MatMul, [a, w]).unwrap();
        }
        let p = b.build();
        let cfg = MachineConfig::cambricon_f1();
        let seq = PerfSim::new(&cfg);
        let seq_out = seq.simulate(&p).unwrap();
        let par = PerfSim::new(&cfg);
        let par_out = par.simulate_parallel(&p, 4).unwrap();
        assert_eq!(seq_out.makespan.to_bits(), par_out.makespan.to_bits());
        assert_eq!(seq_out.steady.to_bits(), par_out.steady.to_bits());
        assert_eq!(seq_out.stats, par_out.stats);
        assert!(par.cold_stats().parallel_tasks >= 2, "frontier should fan out");
        assert_eq!(seq.cold_stats().parallel_tasks, 0);
    }

    #[test]
    fn pipeline_scheduler_monotone() {
        // Synthetic check of the scheduler: stages never go backwards and
        // the DMA engine never overlaps itself.
        let plan = NodePlan {
            steps: vec![Step::default(), Step::default(), Step::default()],
            local_elems: 0,
        };
        let times =
            vec![
                StageTimes { id: 1.0, ld: 2.0, ex_full: 5.0, ex_steady: 3.0, rd: 1.0, wb: 2.0 };
                3
            ];
        let (sched, makespan) = schedule_pipeline(&plan, &times, true);
        for w in sched.windows(2) {
            assert!(w[1].ld.0 >= w[0].ld.0);
            assert!(w[1].ex.0 >= w[0].ex.1 - 1e-12);
        }
        // DMA serialisation: LD(i+1) does not start before WB(i-?) overlaps.
        assert!(makespan >= 5.0 + 3.0 + 3.0);
        assert!(sched[2].wb.1 <= makespan + 1e-12);
    }
}
