//! Opt-in profiling of the performance simulator.
//!
//! The perf model already computes everything an attribution view needs
//! — per-step stage durations (§3.4's ID/LD/EX/RD/WB pipeline), link
//! traffic, memoization-table activity, pipeline-concatenation savings
//! (§3.6) — and then throws it away, surfacing only makespan and steady
//! spacing. This module keeps it: a `ProfileState` threaded through
//! [`crate::perf::PerfSim`] (one `Option` branch on the disabled path)
//! accumulates
//!
//! * busy seconds per (hierarchy level × pipeline stage) and link
//!   traffic per level, **weighted by memoized reuse**: when a cached
//!   subtree outcome is reused, its recorded per-level contribution is
//!   replayed, so the attribution matches the simulated execution, not
//!   just the unique planning work;
//! * memoization hits and misses per level;
//! * a decomposition "flamegraph": per instruction signature, how often
//!   it was planned vs. served from the memo table and the inclusive
//!   simulated seconds it accounts for;
//! * pipeline-concatenation savings per level (the makespan-to-steady
//!   gap claimed at every concatenated admit).
//!
//! The result is a [`ProfileReport`] (`render_table` for humans, fields
//! for exporters) plus a Chrome Trace Event builder
//! ([`chrome_trace_events`]) that renders a [`Timeline`] — coarse
//! DMA/compute rows and fine per-stage intervals — into a
//! `chrome://tracing` / Perfetto-loadable JSON array.

use std::collections::HashMap;

use cf_isa::Instruction;
use serde_json::{Map, Value};

use crate::perf::{NodeOutcome, StageTimes};
use crate::timeline::{EventKind, Timeline};
use crate::MachineConfig;

/// One stage of the five-stage fractal pipeline (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeStage {
    /// Instruction decode.
    Id,
    /// DMA loads from the parent memory.
    Ld,
    /// Child (FFU) execution — recursive pipelines, or the leaf kernel.
    Ex,
    /// Reduction / LFU work (`g(·)`).
    Rd,
    /// DMA writebacks to the parent memory.
    Wb,
}

impl PipeStage {
    /// All stages in pipeline order.
    pub const ALL: [PipeStage; 5] =
        [PipeStage::Id, PipeStage::Ld, PipeStage::Ex, PipeStage::Rd, PipeStage::Wb];

    /// Lower-case stage mnemonic (`id`, `ld`, `ex`, `rd`, `wb`).
    pub fn name(self) -> &'static str {
        match self {
            PipeStage::Id => "id",
            PipeStage::Ld => "ld",
            PipeStage::Ex => "ex",
            PipeStage::Rd => "rd",
            PipeStage::Wb => "wb",
        }
    }

    /// Stable index in pipeline order (0..5).
    pub fn index(self) -> usize {
        match self {
            PipeStage::Id => 0,
            PipeStage::Ld => 1,
            PipeStage::Ex => 2,
            PipeStage::Rd => 3,
            PipeStage::Wb => 4,
        }
    }
}

/// Busy seconds attributed to each pipeline stage.
///
/// EX is attributed at its cold (`ex_full`) cost; what pipeline
/// concatenating saves on top is reported separately as
/// [`LevelProfile::concat_saved_s`]. Stages overlap in time, so the
/// per-stage sum generally exceeds the makespan — this is busy-time
/// attribution, not a partition of wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSeconds {
    /// Decode seconds.
    pub id: f64,
    /// Parent-link load seconds.
    pub ld: f64,
    /// Child/kernel execution seconds (cold).
    pub ex: f64,
    /// Reduction/LFU seconds.
    pub rd: f64,
    /// Parent-link writeback seconds.
    pub wb: f64,
}

impl StageSeconds {
    /// Seconds of one stage.
    pub fn get(&self, stage: PipeStage) -> f64 {
        match stage {
            PipeStage::Id => self.id,
            PipeStage::Ld => self.ld,
            PipeStage::Ex => self.ex,
            PipeStage::Rd => self.rd,
            PipeStage::Wb => self.wb,
        }
    }

    /// Sum over all stages.
    pub fn total(&self) -> f64 {
        self.id + self.ld + self.ex + self.rd + self.wb
    }

    fn add_times(&mut self, t: &StageTimes) {
        self.id += t.id;
        self.ld += t.ld;
        self.ex += t.ex_full;
        self.rd += t.rd;
        self.wb += t.wb;
    }

    fn merge(&mut self, other: &StageSeconds) {
        self.id += other.id;
        self.ld += other.ld;
        self.ex += other.ex;
        self.rd += other.rd;
        self.wb += other.wb;
    }
}

/// Profile of one hierarchy level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelProfile {
    /// Hierarchy level (0 = root).
    pub level: usize,
    /// Reuse-weighted busy seconds per pipeline stage.
    pub seconds: StageSeconds,
    /// Reuse-weighted parent-link traffic (loads + writebacks) in bytes.
    pub traffic_bytes: u64,
    /// Memoization-table hits for instructions arriving at this level.
    pub memo_hits: u64,
    /// Memoization-table misses (signatures actually planned and timed).
    pub memo_misses: u64,
    /// Seconds saved by pipeline concatenating at this level's admits
    /// (the makespan-to-steady gap, summed over concatenated children).
    pub concat_saved_s: f64,
}

/// One instruction signature in the decomposition flamegraph.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureProfile {
    /// Level the signature arrived at.
    pub level: usize,
    /// Opcode name.
    pub op: String,
    /// Operand-shape summary, e.g. `[512x512, 512x512]`.
    pub detail: String,
    /// Times the memo table served this signature.
    pub hits: u64,
    /// Times it was actually planned and timed.
    pub computed: u64,
    /// Inclusive simulated seconds (subtree makespan × occurrences).
    pub inclusive_s: f64,
    /// The signature's own (node-local, per-occurrence) stage seconds.
    pub stage: StageSeconds,
}

/// The full profile of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Simulated end-to-end time in seconds.
    pub makespan_s: f64,
    /// Per-level attribution, index = hierarchy level.
    pub levels: Vec<LevelProfile>,
    /// Hottest signatures by inclusive time, descending.
    pub signatures: Vec<SignatureProfile>,
    /// Split decisions the planner served from the shape-level memo
    /// (cold-path optimisation; see [`crate::memo`]).
    pub shape_memo_hits: u64,
    /// Split decisions the planner computed and cached.
    pub shape_memo_misses: u64,
}

impl ProfileReport {
    /// Total memo hits across levels.
    pub fn memo_hits(&self) -> u64 {
        self.levels.iter().map(|l| l.memo_hits).sum()
    }

    /// Total memo misses across levels.
    pub fn memo_misses(&self) -> u64 {
        self.levels.iter().map(|l| l.memo_misses).sum()
    }

    /// Total concatenation savings across levels, in seconds.
    pub fn concat_saved_s(&self) -> f64 {
        self.levels.iter().map(|l| l.concat_saved_s).sum()
    }

    /// Renders the aligned human summary `cfrun --profile` prints.
    pub fn render_table(&self, cfg: &MachineConfig) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile on {}: makespan {:.6e} s, memo {} hit / {} miss, shape memo {} hit / {} \
             miss, concat saved {:.3e} s\n",
            cfg.name,
            self.makespan_s,
            self.memo_hits(),
            self.memo_misses(),
            self.shape_memo_hits,
            self.shape_memo_misses,
            self.concat_saved_s(),
        ));
        out.push_str(
            "  level            id          ld          ex          rd          wb     traffic(B)  hit/miss  concat(s)\n",
        );
        for l in &self.levels {
            let name = level_name(cfg, l.level);
            out.push_str(&format!(
                "  L{} {:<7} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e} {:>14} {:>4}/{:<4} {:>9.3e}\n",
                l.level,
                name,
                l.seconds.id,
                l.seconds.ld,
                l.seconds.ex,
                l.seconds.rd,
                l.seconds.wb,
                l.traffic_bytes,
                l.memo_hits,
                l.memo_misses,
                l.concat_saved_s,
            ));
        }
        if !self.signatures.is_empty() {
            out.push_str("  hottest signatures by inclusive simulated time:\n");
            for (i, s) in self.signatures.iter().enumerate() {
                out.push_str(&format!(
                    "  {:>3}. L{} {:<10} {:>11.3e} s  {:>6} hit {:>6} planned  {}\n",
                    i + 1,
                    s.level,
                    s.op,
                    s.inclusive_s,
                    s.hits,
                    s.computed,
                    s.detail,
                ));
            }
        }
        out
    }
}

/// Display name of a hierarchy level on `cfg` (leaf levels are `Core`).
pub fn level_name(cfg: &MachineConfig, level: usize) -> &str {
    if level < cfg.levels.len() {
        cfg.levels[level].name.as_str()
    } else {
        "Core"
    }
}

// ---------------------------------------------------------------------
// Accumulation state (owned by PerfSim, mutated through its hooks).
// ---------------------------------------------------------------------

/// Per-level accumulation that must replay on memo hits.
#[derive(Debug, Clone, Copy, Default)]
struct LevelDelta {
    seconds: StageSeconds,
    traffic_bytes: u64,
    concat_saved_s: f64,
}

impl LevelDelta {
    fn merge(&mut self, other: &LevelDelta) {
        self.seconds.merge(&other.seconds);
        self.traffic_bytes += other.traffic_bytes;
        self.concat_saved_s += other.concat_saved_s;
    }
}

/// Signature identity: the same granularity as the memo-table key, so a
/// hit replays exactly the subtree its miss recorded.
#[derive(Debug, PartialEq, Eq, Hash)]
struct SigKey {
    level: usize,
    op: cf_isa::Opcode,
    params: String,
    in_dims: Vec<Vec<usize>>,
    resident: Vec<bool>,
    shared: Vec<u32>,
}

impl SigKey {
    fn new(level: usize, inst: &Instruction, resident: &[bool], shared: &[u32]) -> Self {
        SigKey {
            level,
            op: inst.op,
            params: format!("{:?}", inst.params),
            in_dims: inst.inputs.iter().map(|r| r.shape().dims().to_vec()).collect(),
            resident: resident.to_vec(),
            shared: shared.to_vec(),
        }
    }
}

#[derive(Debug, Default)]
struct SigAccum {
    hits: u64,
    computed: u64,
    inclusive_s: f64,
    /// The node's own per-occurrence stage seconds.
    own: StageSeconds,
    /// Per-occurrence subtree makespan.
    makespan: f64,
    /// Per-occurrence per-level contribution of the whole subtree,
    /// replayed into the level accumulators on every memo hit.
    subtree: Vec<LevelDelta>,
}

#[derive(Debug, Default)]
struct LevelAccum {
    delta: LevelDelta,
    memo_hits: u64,
    memo_misses: u64,
}

/// Accumulates per-level and per-signature attribution while the perf
/// simulator runs. A stack of capture frames mirrors the in-flight memo
/// misses: every contribution lands in the global accumulators *and* in
/// each open frame, so a finished miss knows its full subtree delta and
/// later hits can replay it.
#[derive(Debug, Default)]
pub(crate) struct ProfileState {
    levels: Vec<LevelAccum>,
    sigs: HashMap<SigKey, SigAccum>,
    frames: Vec<Vec<LevelDelta>>,
    /// Stage seconds of the most recent `time_plan` — by the recursion
    /// order, the node's own plan when its miss frame closes.
    last_plan: StageSeconds,
}

impl ProfileState {
    fn level_slot(levels: &mut Vec<LevelDelta>, level: usize) -> &mut LevelDelta {
        if levels.len() <= level {
            levels.resize(level + 1, LevelDelta::default());
        }
        &mut levels[level]
    }

    fn accum_slot(&mut self, level: usize) -> &mut LevelAccum {
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, LevelAccum::default);
        }
        &mut self.levels[level]
    }

    /// Adds one per-level contribution everywhere it belongs: the global
    /// accumulator and every open capture frame.
    fn contribute(&mut self, level: usize, delta: &LevelDelta) {
        self.accum_slot(level).delta.merge(delta);
        for frame in &mut self.frames {
            Self::level_slot(frame, level).merge(delta);
        }
    }

    /// Hook: a plan at `level` was timed (`times` per step, `own_bytes`
    /// over this node's parent link).
    pub(crate) fn record_plan(&mut self, level: usize, times: &[StageTimes], own_bytes: u64) {
        let mut seconds = StageSeconds::default();
        for t in times {
            seconds.add_times(t);
        }
        self.last_plan = seconds;
        self.contribute(
            level,
            &LevelDelta { seconds, traffic_bytes: own_bytes, concat_saved_s: 0.0 },
        );
    }

    /// Hook: pipeline concatenating admitted a child at steady spacing,
    /// saving `saved` seconds at `level`.
    pub(crate) fn record_concat_saved(&mut self, level: usize, saved: f64) {
        self.contribute(
            level,
            &LevelDelta {
                seconds: StageSeconds::default(),
                traffic_bytes: 0,
                concat_saved_s: saved,
            },
        );
    }

    /// Hook: a memo miss begins — open a capture frame for its subtree.
    pub(crate) fn begin_compute(&mut self) {
        self.frames.push(Vec::new());
    }

    /// Hook: the memo miss opened by the matching [`Self::begin_compute`]
    /// finished with `outcome`.
    pub(crate) fn end_compute(
        &mut self,
        level: usize,
        inst: &Instruction,
        resident: &[bool],
        shared: &[u32],
        outcome: &NodeOutcome,
    ) {
        let subtree = self.frames.pop().unwrap_or_default();
        self.accum_slot(level).memo_misses += 1;
        let own = self.last_plan;
        let sig = self.sigs.entry(SigKey::new(level, inst, resident, shared)).or_default();
        sig.computed += 1;
        sig.inclusive_s += outcome.makespan;
        sig.own = own;
        sig.makespan = outcome.makespan;
        sig.subtree = subtree;
    }

    /// Hook: the memo table served `inst` at `level` — replay the
    /// signature's recorded subtree so reuse shows up in the totals.
    pub(crate) fn record_hit(
        &mut self,
        level: usize,
        inst: &Instruction,
        resident: &[bool],
        shared: &[u32],
    ) {
        self.accum_slot(level).memo_hits += 1;
        let key = SigKey::new(level, inst, resident, shared);
        let replay = match self.sigs.get_mut(&key) {
            Some(sig) => {
                sig.hits += 1;
                sig.inclusive_s += sig.makespan;
                sig.subtree.clone()
            }
            None => Vec::new(),
        };
        for (lvl, delta) in replay.iter().enumerate() {
            self.contribute(lvl, delta);
        }
    }

    /// Builds the report, keeping the `top` hottest signatures.
    pub(crate) fn report(&self, makespan_s: f64, top: usize) -> ProfileReport {
        let levels = self
            .levels
            .iter()
            .enumerate()
            .map(|(level, a)| LevelProfile {
                level,
                seconds: a.delta.seconds,
                traffic_bytes: a.delta.traffic_bytes,
                memo_hits: a.memo_hits,
                memo_misses: a.memo_misses,
                concat_saved_s: a.delta.concat_saved_s,
            })
            .collect();
        // Aggregate signatures by what the reader sees (level, op,
        // shapes); residency-mask variants of one shape merge here.
        let mut by_display: HashMap<(usize, String, String), SignatureProfile> = HashMap::new();
        for (key, sig) in &self.sigs {
            let op = format!("{:?}", key.op);
            let detail = format!(
                "[{}]",
                key.in_dims
                    .iter()
                    .map(|d| { d.iter().map(ToString::to_string).collect::<Vec<_>>().join("x") })
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let entry =
                by_display.entry((key.level, op.clone(), detail.clone())).or_insert_with(|| {
                    SignatureProfile {
                        level: key.level,
                        op,
                        detail,
                        hits: 0,
                        computed: 0,
                        inclusive_s: 0.0,
                        stage: StageSeconds::default(),
                    }
                });
            entry.hits += sig.hits;
            entry.computed += sig.computed;
            entry.inclusive_s += sig.inclusive_s;
            entry.stage.merge(&sig.own);
        }
        let mut signatures: Vec<SignatureProfile> = by_display.into_values().collect();
        signatures.sort_by(|a, b| {
            b.inclusive_s
                .total_cmp(&a.inclusive_s)
                .then_with(|| a.level.cmp(&b.level))
                .then_with(|| a.op.cmp(&b.op))
                .then_with(|| a.detail.cmp(&b.detail))
        });
        signatures.truncate(top);
        ProfileReport { makespan_s, levels, signatures, shape_memo_hits: 0, shape_memo_misses: 0 }
    }
}

// ---------------------------------------------------------------------
// Chrome Trace Event export.
// ---------------------------------------------------------------------

/// Trace-Event process ID of the coarse per-level DMA/compute tracks.
pub const TRACE_PID_LEVELS: u64 = 1;
/// Trace-Event process ID of the fine per-stage tracks.
pub const TRACE_PID_STAGES: u64 = 2;
/// Trace-Event process ID runtime span tracks use (see `cf-runtime`).
pub const TRACE_PID_RUNTIME: u64 = 3;

/// A complete (`ph:"X"`) Trace Event. Times are in microseconds, as the
/// Trace Event Format requires.
pub fn trace_complete_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
) -> Value {
    let mut m = Map::new();
    m.insert("name", name);
    m.insert("cat", cat);
    m.insert("ph", "X");
    m.insert("ts", ts_us);
    m.insert("dur", dur_us);
    m.insert("pid", pid);
    m.insert("tid", tid);
    Value::Object(m)
}

/// A `process_name` metadata event.
pub fn trace_process_name(pid: u64, name: &str) -> Value {
    trace_metadata("process_name", pid, 0, name)
}

/// A `thread_name` metadata event.
pub fn trace_thread_name(pid: u64, tid: u64, name: &str) -> Value {
    trace_metadata("thread_name", pid, tid, name)
}

fn trace_metadata(kind: &str, pid: u64, tid: u64, name: &str) -> Value {
    let mut args = Map::new();
    args.insert("name", name);
    let mut m = Map::new();
    m.insert("name", kind);
    m.insert("ph", "M");
    m.insert("pid", pid);
    m.insert("tid", tid);
    m.insert("args", Value::Object(args));
    Value::Object(m)
}

/// Renders a [`Timeline`] as Chrome Trace Events: one track per
/// hierarchy level (pid [`TRACE_PID_LEVELS`], tid = level) carrying the
/// coarse DMA/compute intervals, plus one track per (level, pipeline
/// stage) (pid [`TRACE_PID_STAGES`], tid = level × 8 + stage index)
/// carrying the fine ID/LD/EX/RD/WB schedule. Combine with
/// `Tracer::chrome_events` from `cf-runtime` for runtime spans, wrap in
/// a JSON array, and the file loads in `chrome://tracing` / Perfetto.
pub fn chrome_trace_events(cfg: &MachineConfig, tl: &Timeline) -> Vec<Value> {
    let mut out = Vec::with_capacity(tl.events.len() + tl.stages.len() + 16);
    out.push(trace_process_name(TRACE_PID_LEVELS, &format!("{}: levels", cfg.name)));
    out.push(trace_process_name(TRACE_PID_STAGES, &format!("{}: pipeline stages", cfg.name)));
    let mut named_levels: Vec<usize> = tl.events.iter().map(|e| e.level).collect();
    named_levels.sort_unstable();
    named_levels.dedup();
    for &level in &named_levels {
        out.push(trace_thread_name(
            TRACE_PID_LEVELS,
            level as u64,
            &format!("L{level} {}", level_name(cfg, level)),
        ));
    }
    let mut named_stage_tracks: Vec<(usize, PipeStage)> =
        tl.stages.iter().map(|s| (s.level, s.stage)).collect();
    named_stage_tracks.sort_unstable_by_key(|(l, s)| (*l, s.index()));
    named_stage_tracks.dedup();
    for &(level, stage) in &named_stage_tracks {
        out.push(trace_thread_name(
            TRACE_PID_STAGES,
            (level * 8 + stage.index()) as u64,
            &format!("L{level} {}", stage.name()),
        ));
    }
    for e in &tl.events {
        let name = match e.kind {
            EventKind::Dma => "dma",
            EventKind::Compute => "compute",
        };
        out.push(trace_complete_event(
            name,
            "sim",
            TRACE_PID_LEVELS,
            e.level as u64,
            e.start * 1e6,
            (e.end - e.start) * 1e6,
        ));
    }
    for s in &tl.stages {
        out.push(trace_complete_event(
            s.stage.name(),
            "stage",
            TRACE_PID_STAGES,
            (s.level * 8 + s.stage.index()) as u64,
            s.start * 1e6,
            (s.end - s.start) * 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use cf_isa::{Opcode, ProgramBuilder};

    fn matmul(n: usize) -> cf_isa::Program {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![n, n]);
        let w = b.alloc("w", vec![n, n]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        b.build()
    }

    #[test]
    fn profiled_simulation_matches_unprofiled_and_attributes_time() {
        let m = Machine::new(MachineConfig::cambricon_f1());
        let p = matmul(1024);
        let plain = m.simulate(&p).unwrap();
        let (report, profile) = m.simulate_profiled(&p, 10).unwrap();
        assert_eq!(
            plain.makespan_seconds, report.makespan_seconds,
            "profiling must not perturb timing"
        );
        assert_eq!(profile.makespan_s, report.makespan_seconds);
        assert!(!profile.levels.is_empty());
        // The leaves did real EX work and the memo table was exercised.
        let total_ex: f64 = profile.levels.iter().map(|l| l.seconds.ex).sum();
        assert!(total_ex > 0.0);
        assert!(profile.memo_hits() > 0, "a 1024³ matmul must reuse signatures");
        assert!(profile.memo_misses() > 0);
        assert!(!profile.signatures.is_empty());
        // Signatures are sorted hottest-first.
        for w in profile.signatures.windows(2) {
            assert!(w[0].inclusive_s >= w[1].inclusive_s);
        }
    }

    #[test]
    fn reuse_weighting_scales_attribution_with_hits() {
        // Two matmuls of the same shape: the second is a pure memo hit,
        // and the per-level EX attribution must roughly double.
        let cfg = MachineConfig::cambricon_f1();
        let m = Machine::new(cfg);
        let one = m.simulate_profiled(&matmul(512), 5).unwrap().1;
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![512, 512]);
        let w = b.alloc("w", vec![512, 512]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        let a2 = b.alloc("a2", vec![512, 512]);
        let w2 = b.alloc("w2", vec![512, 512]);
        b.apply(Opcode::MatMul, [a2, w2]).unwrap();
        let two = m.simulate_profiled(&b.build(), 5).unwrap().1;
        let ex = |p: &ProfileReport| p.levels.iter().map(|l| l.seconds.ex).sum::<f64>();
        let ratio = ex(&two) / ex(&one);
        assert!(
            (1.8..=2.2).contains(&ratio),
            "doubling the work should double EX attribution, got ×{ratio:.3}"
        );
    }

    #[test]
    fn concat_savings_recorded_when_concat_is_on() {
        let m = Machine::new(MachineConfig::cambricon_f1());
        let profile = m.simulate_profiled(&matmul(1024), 5).unwrap().1;
        assert!(profile.concat_saved_s() > 0.0, "concatenating a 1024³ matmul saves time");
        let off = Machine::new(
            MachineConfig::cambricon_f1()
                .with_opts(crate::OptFlags { concat: false, ..Default::default() }),
        );
        let profile_off = off.simulate_profiled(&matmul(1024), 5).unwrap().1;
        assert_eq!(profile_off.concat_saved_s(), 0.0);
    }

    #[test]
    fn render_table_mentions_levels_and_signatures() {
        let cfg = MachineConfig::cambricon_f1();
        let m = Machine::new(cfg.clone());
        let profile = m.simulate_profiled(&matmul(512), 3).unwrap().1;
        let table = profile.render_table(&cfg);
        assert!(table.contains("profile on"));
        assert!(table.contains("L0"));
        assert!(table.contains("MatMul"));
        assert!(table.contains("hottest signatures"));
    }

    #[test]
    fn chrome_events_are_well_formed() {
        let cfg = MachineConfig::cambricon_f1();
        let m = Machine::new(cfg.clone());
        let tl = m.timeline(&matmul(512), 2).unwrap();
        assert!(!tl.stages.is_empty(), "timeline must carry stage spans");
        let events = chrome_trace_events(&cfg, &tl);
        let mut complete = 0;
        for e in &events {
            let ph = e.get("ph").and_then(Value::as_str).unwrap();
            assert!(e.get("pid").and_then(Value::as_u64).is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
            assert!(e.get("name").and_then(Value::as_str).is_some());
            if ph == "X" {
                complete += 1;
                assert!(e.get("ts").and_then(Value::as_f64).unwrap() >= 0.0);
                assert!(e.get("dur").and_then(Value::as_f64).unwrap() > 0.0);
                assert!(e.get("cat").and_then(Value::as_str).is_some());
            } else {
                assert_eq!(ph, "M");
            }
        }
        assert!(complete > 0);
        // Round-trip: the array parses back identically.
        let text = Value::Array(events.clone()).to_string();
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(back, Value::Array(events));
    }
}
