//! Plan-tree arena: pooled step and item buffers for the planner.
//!
//! Cold-path planning builds and drops a [`crate::plan::NodePlan`] per
//! memo miss, and every plan is a `Vec<Step>` whose steps each own
//! several small vectors (loads, stores, child instructions). Allocating
//! those from the global allocator on every plan is the second-largest
//! cold cost after split search. The arena keeps the buffers alive
//! between plans: the planner draws cleared, capacity-bearing buffers
//! from the pool, and the performance simulator returns a finished
//! plan's buffers once timing has consumed it.
//!
//! Lifetime rules:
//!
//! * an arena belongs to one planner client (one [`crate::perf::PerfSim`],
//!   one executor run) and is dropped with it — buffers never migrate
//!   between machine configurations or threads;
//! * a recycled plan must no longer be referenced — the simulator only
//!   recycles plans it built itself, after the timing walk;
//! * recycling is an optimisation, never a requirement: plans handed to
//!   external callers (executor, timeline) are simply dropped.

use std::cell::{Cell, RefCell};

use crate::plan::Step;

/// Pooled buffers for plan construction, plus retained-byte accounting.
#[derive(Debug, Default)]
pub struct PlanArena {
    steps: RefCell<Vec<Vec<Step>>>,
    step_objs: RefCell<Vec<Step>>,
    retained: Cell<u64>,
    high_water: Cell<u64>,
}

impl PlanArena {
    /// An empty arena.
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// Bytes of buffer capacity currently parked in the pool (estimate:
    /// container capacities only, not nested spare capacity).
    pub fn retained_bytes(&self) -> u64 {
        self.retained.get()
    }

    /// Largest retained-byte figure seen over the arena's lifetime.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water.get()
    }

    /// A cleared step-list buffer (possibly with capacity from a
    /// recycled plan).
    pub(crate) fn take_steps(&self) -> Vec<Step> {
        match self.steps.borrow_mut().pop() {
            Some(buf) => {
                self.credit(-(buf_bytes(&buf) as i64));
                buf
            }
            None => Vec::new(),
        }
    }

    /// A cleared step (possibly with nested vector capacity).
    pub(crate) fn take_step(&self) -> Step {
        self.step_objs.borrow_mut().pop().unwrap_or_default()
    }

    /// Returns a finished plan's step list to the pool.
    pub(crate) fn put_steps(&self, mut steps: Vec<Step>) {
        let mut pool = self.step_objs.borrow_mut();
        for mut s in steps.drain(..) {
            s.loads.clear();
            s.stores.clear();
            s.child_insts.clear();
            s.local_exec = None;
            s.streaming_exec = None;
            s.reduce = None;
            s.elided_bytes = 0;
            s.raw_dep_prev = false;
            if pool.len() < 4096 {
                pool.push(s);
            }
        }
        drop(pool);
        self.credit(buf_bytes(&steps) as i64);
        self.steps.borrow_mut().push(steps);
    }

    fn credit(&self, delta: i64) {
        let now = self.retained.get().saturating_add_signed(delta);
        self.retained.set(now);
        if now > self.high_water.get() {
            self.high_water.set(now);
        }
    }
}

fn buf_bytes(buf: &Vec<Step>) -> u64 {
    (buf.capacity() * std::mem::size_of::<Step>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_and_keep_capacity() {
        let arena = PlanArena::new();
        let mut steps = arena.take_steps();
        for _ in 0..16 {
            let mut s = arena.take_step();
            s.elided_bytes = 7;
            steps.push(s);
        }
        let cap = steps.capacity();
        arena.put_steps(steps);
        assert!(arena.retained_bytes() > 0);
        assert!(arena.high_water_bytes() >= arena.retained_bytes());
        let steps = arena.take_steps();
        assert_eq!(steps.capacity(), cap);
        assert!(steps.is_empty());
        assert_eq!(arena.retained_bytes(), 0);
        // Recycled step objects come back cleared.
        let s = arena.take_step();
        assert_eq!(s.elided_bytes, 0);
        assert!(s.loads.is_empty() && s.reduce.is_none());
    }
}
