//! Execution-timeline extraction (paper Figure 13).
//!
//! Walks the performance model *without* memoization down to a depth
//! limit, emitting per-level DMA (blue in the paper) and compute (red)
//! intervals. Adjacent intervals closer than a coalescing threshold are
//! merged so that paper-scale runs produce readable Gantt rows.

use cf_isa::Program;

use crate::perf::{schedule_pipeline, PerfSim};
use crate::plan::Step;
use crate::profile::PipeStage;
use crate::{CoreError, MachineConfig};

/// Kind of activity in a timeline interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// DMA transfer (LD or WB).
    Dma,
    /// FFU/LFU/leaf computation.
    Compute,
}

/// One busy interval of one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Hierarchy level (0 = top).
    pub level: usize,
    /// Activity kind.
    pub kind: EventKind,
    /// Interval start in seconds.
    pub start: f64,
    /// Interval end in seconds.
    pub end: f64,
}

/// One pipeline-stage interval of one step at one level — the fine
/// companion to the coarse DMA/compute [`Event`]s, consumed by the
/// Chrome-trace exporter ([`crate::profile::chrome_trace_events`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpan {
    /// Hierarchy level (0 = top).
    pub level: usize,
    /// Pipeline stage.
    pub stage: PipeStage,
    /// Interval start in seconds.
    pub start: f64,
    /// Interval end in seconds.
    pub end: f64,
}

/// A per-level Gantt chart of one program execution.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Coalesced busy intervals, grouped by level. Within one
    /// (level, kind) the intervals are non-overlapping and sorted —
    /// overlaps from clamping and representative-child drift are merged
    /// during extraction.
    pub events: Vec<Event>,
    /// Per-step pipeline-stage intervals (uncoalesced, capped at the
    /// extraction event limit).
    pub stages: Vec<StageSpan>,
    /// Total execution time.
    pub makespan: f64,
}

impl Timeline {
    /// Events of one level.
    pub fn level_events(&self, level: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.level == level)
    }

    /// Busy fraction of one level and kind over the makespan.
    pub fn busy_fraction(&self, level: usize, kind: EventKind) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 =
            self.level_events(level).filter(|e| e.kind == kind).map(|e| e.end - e.start).sum();
        (busy / self.makespan).max(0.0)
    }

    /// Renders an ASCII Gantt chart with `width` columns (for the
    /// experiment harness).
    pub fn render_ascii(&self, levels: usize, width: usize) -> String {
        let mut out = String::new();
        for level in 0..levels {
            let mut row = vec![b' '; width];
            for e in self.level_events(level) {
                let a = ((e.start / self.makespan) * width as f64) as usize;
                let b = (((e.end / self.makespan) * width as f64).ceil() as usize).min(width);
                let ch = match e.kind {
                    EventKind::Dma => b'#',
                    EventKind::Compute => b'=',
                };
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    // Compute overrides DMA for overlapping pixels.
                    if *c == b' ' || ch == b'=' {
                        *c = ch;
                    }
                }
            }
            out.push_str(&format!("L{level} |{}|\n", String::from_utf8_lossy(&row)));
        }
        out
    }
}

struct Recorder {
    events: Vec<Event>,
    stages: Vec<StageSpan>,
    coalesce: f64,
    max_events: usize,
}

impl Recorder {
    fn push_stage(&mut self, level: usize, stage: PipeStage, start: f64, end: f64) {
        if end > start && self.stages.len() < self.max_events {
            self.stages.push(StageSpan { level, stage, start, end });
        }
    }

    fn push(&mut self, level: usize, kind: EventKind, start: f64, end: f64) {
        if end <= start {
            return;
        }
        // Coalesce with the most recent event of the same (level, kind).
        if let Some(last) =
            self.events.iter_mut().rev().take(16).find(|e| e.level == level && e.kind == kind)
        {
            if start - last.end <= self.coalesce && start >= last.start {
                last.end = last.end.max(end);
                return;
            }
        }
        if self.events.len() < self.max_events {
            self.events.push(Event { level, kind, start, end });
        }
    }
}

/// Extracts the execution timeline of `program` on `cfg`, recursing at
/// most `max_depth` levels deep (deeper levels use the memoized aggregate
/// durations and emit no events).
///
/// # Errors
///
/// Propagates planning errors.
pub fn extract_timeline(
    cfg: &MachineConfig,
    program: &Program,
    max_depth: usize,
    max_events: usize,
) -> Result<Timeline, CoreError> {
    let sim = PerfSim::new(cfg);
    let root_outcome = sim.simulate(program)?;
    let mut rec = Recorder {
        events: Vec::new(),
        stages: Vec::new(),
        coalesce: root_outcome.makespan / 2000.0,
        max_events,
    };
    let plan = sim.planner().plan_root(program.instructions(), program.extern_elems())?;
    let makespan = walk(&sim, 0, &plan, &[], &[], None, 0.0, max_depth, &mut rec)?;
    let mut events = rec.events;
    let mut stages = rec.stages;
    // Representative-child recursion can drift slightly past the parent's
    // concatenated EX window; clamp to the makespan for presentation.
    for e in &mut events {
        e.start = e.start.min(makespan);
        e.end = e.end.min(makespan);
    }
    events.retain(|e| e.end > e.start);
    for s in &mut stages {
        s.start = s.start.min(makespan);
        s.end = s.end.min(makespan);
    }
    stages.retain(|s| s.end > s.start);
    stages.sort_by(|a, b| {
        (a.level, a.stage.index())
            .cmp(&(b.level, b.stage.index()))
            .then(a.start.total_cmp(&b.start))
    });
    // Merge overlaps within each (level, kind) so every row is a clean
    // sequence of disjoint intervals (clamping and drift can overlap).
    events.sort_by(|a, b| {
        (a.level, kind_rank(a.kind))
            .cmp(&(b.level, kind_rank(b.kind)))
            .then(a.start.total_cmp(&b.start))
    });
    let mut merged: Vec<Event> = Vec::with_capacity(events.len());
    for e in events {
        match merged.last_mut() {
            Some(m) if m.level == e.level && m.kind == e.kind && e.start <= m.end => {
                m.end = m.end.max(e.end);
            }
            _ => merged.push(e),
        }
    }
    merged.sort_by(|a, b| a.level.cmp(&b.level).then(a.start.total_cmp(&b.start)));
    Ok(Timeline { events: merged, stages, makespan })
}

fn kind_rank(kind: EventKind) -> u8 {
    match kind {
        EventKind::Dma => 0,
        EventKind::Compute => 1,
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    sim: &PerfSim<'_>,
    level: usize,
    plan: &crate::plan::NodePlan,
    resident: &[bool],
    shared: &[u32],
    incoming: Option<&cf_isa::Instruction>,
    t0: f64,
    max_depth: usize,
    rec: &mut Recorder,
) -> Result<f64, CoreError> {
    let (times, _) = sim.stage_times_of_plan(level, plan, resident, shared, incoming)?;
    let (sched, makespan) = schedule_pipeline(plan, &times, sim.planner().config().opts.concat);
    for (step, s) in plan.steps.iter().zip(&sched) {
        rec.push_stage(level, PipeStage::Id, t0 + s.id.0, t0 + s.id.1);
        rec.push_stage(level, PipeStage::Ld, t0 + s.ld.0, t0 + s.ld.1);
        rec.push_stage(level, PipeStage::Ex, t0 + s.ex.0, t0 + s.ex.1);
        rec.push_stage(level, PipeStage::Rd, t0 + s.rd.0, t0 + s.rd.1);
        rec.push_stage(level, PipeStage::Wb, t0 + s.wb.0, t0 + s.wb.1);
        rec.push(level, EventKind::Dma, t0 + s.ld.0, t0 + s.ld.1);
        rec.push(level, EventKind::Dma, t0 + s.wb.0, t0 + s.wb.1);
        if has_local_compute(step) {
            rec.push(level, EventKind::Compute, t0 + s.rd.0, t0 + s.rd.1);
        }
        if step.local_exec.is_some() && sim.planner().config().is_leaf(level) {
            rec.push(level, EventKind::Compute, t0 + s.ex.0, t0 + s.ex.1);
        }
        if !step.child_insts.is_empty() {
            if level < max_depth && rec.events.len() < rec.max_events {
                // Recurse into the first child as the representative.
                let child = &step.child_insts[0];
                let child_plan = sim.planner().plan_instruction(level + 1, &child.inst, false)?;
                walk(
                    sim,
                    level + 1,
                    &child_plan,
                    &child.resident_inputs,
                    &child.shared_inputs,
                    Some(&child.inst),
                    t0 + s.ex.0,
                    max_depth,
                    rec,
                )?;
            } else {
                rec.push(level + 1, EventKind::Compute, t0 + s.ex.0, t0 + s.ex.1);
            }
        }
    }
    Ok(makespan)
}

fn has_local_compute(step: &Step) -> bool {
    step.reduce.is_some() || step.streaming_exec.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{Opcode, ProgramBuilder};

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![256, 256]);
        let w = b.alloc("w", vec![256, 256]);
        let c = b.apply(Opcode::MatMul, [a, w]).unwrap();
        b.apply(Opcode::Act1D, [c[0]]).unwrap();
        b.build()
    }

    #[test]
    fn timeline_covers_all_requested_levels() {
        let cfg = MachineConfig::cambricon_f1();
        let tl = extract_timeline(&cfg, &program(), 2, 10_000).unwrap();
        assert!(tl.makespan > 0.0);
        assert!(tl.level_events(1).count() > 0, "FMP level should be busy");
        assert!(tl.level_events(2).count() > 0, "core level should be busy");
    }

    #[test]
    fn events_lie_within_makespan() {
        let cfg = MachineConfig::cambricon_f1();
        let tl = extract_timeline(&cfg, &program(), 2, 10_000).unwrap();
        for e in &tl.events {
            assert!(e.start >= -1e-9 && e.end <= tl.makespan * 1.05 + 1e-9);
            assert!(e.end > e.start);
        }
    }

    #[test]
    fn busy_fraction_bounded() {
        let cfg = MachineConfig::cambricon_f1();
        let tl = extract_timeline(&cfg, &program(), 1, 10_000).unwrap();
        let f = tl.busy_fraction(1, EventKind::Compute);
        assert!((0.0..=1.0 + 1e-9).contains(&f));
    }

    #[test]
    fn ascii_render_has_rows() {
        let cfg = MachineConfig::cambricon_f1();
        let tl = extract_timeline(&cfg, &program(), 2, 10_000).unwrap();
        let art = tl.render_ascii(3, 60);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('='));
    }
}
