//! Machine configurations (paper Table 6) and optimisation switches.

use cf_tensor::fingerprint::StableHasher;

/// One inner level of a fractal machine: a node kind with its controller,
/// local memory, LFUs and fan-out to the next level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSpec {
    /// Level name as printed in Table 6 ("Server", "Card", "Chip", "FMP").
    pub name: String,
    /// Number of FFUs (child nodes).
    pub fanout: usize,
    /// Number of LFU lanes (0 means reductions are commissioned to FFUs
    /// through the commission register, as on the Cambricon-F100 Card).
    pub lfu_lanes: usize,
    /// Throughput of one LFU lane in scalar ops per second.
    pub lfu_lane_ops: f64,
    /// Local memory capacity in bytes.
    pub mem_bytes: u64,
    /// Bandwidth of this node's local memory in bytes per second (shared by
    /// its children and its own DMA engine).
    pub bw_bytes: f64,
    /// Instruction-decode latency of this node's controller in seconds
    /// (software controllers such as the host CPU are much slower than the
    /// hardware decoders).
    pub decode_s: f64,
    /// Fixed setup latency of one DMA transfer across the link *into* this
    /// node, in seconds.
    pub dma_latency_s: f64,
}

/// The leaf accelerator ("Core" in Table 6): a MAC matrix plus a small
/// vector unit over an eDRAM scratchpad.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafSpec {
    /// Peak MAC-matrix throughput in scalar ops per second (0.46 Tops in
    /// the paper: a 16×16 MAC matrix at ~0.9 GHz, 2 ops per MAC).
    pub mac_ops: f64,
    /// Vector/scalar path throughput in ops per second (sorting,
    /// elementwise, comparisons).
    pub vec_ops: f64,
    /// Scratchpad capacity in bytes (256 KB in the paper).
    pub mem_bytes: u64,
    /// Scratchpad bandwidth in bytes per second (80 GB/s in the paper).
    pub bw_bytes: f64,
    /// Decode latency in seconds.
    pub decode_s: f64,
    /// DMA setup latency into the leaf in seconds.
    pub dma_latency_s: f64,
}

/// The §3.6 optimisations, individually switchable for the ablation
/// experiments — plus the paper's §8 future-work extension
/// ([`OptFlags::sibling_links`]), off by default to match the published
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// Tensor Transposition Table: elide loads of operands already resident
    /// locally (including pipeline forwarding of a predecessor's result).
    pub ttt: bool,
    /// Pipeline concatenating: pre-assign the next FISA cycle's
    /// sub-instructions so child pipelines do not drain at cycle
    /// boundaries.
    pub concat: bool,
    /// Data broadcasting: shared operands of parallel-decomposed
    /// sub-instructions are read from local memory once, not once per FFU.
    pub broadcast: bool,
    /// §8 future work: direct links between sibling FFUs. The published
    /// machine limits wiring to parent-child paths (an H-tree), so
    /// commissioned reductions stream every partial through the parent's
    /// memory; with sibling links the partials combine in a log-depth
    /// tree across the siblings instead, off-loading the parent memory.
    pub sibling_links: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags { ttt: true, concat: true, broadcast: true, sibling_links: false }
    }
}

impl OptFlags {
    /// All optimisations disabled (the ablation baseline).
    pub fn none() -> Self {
        OptFlags { ttt: false, concat: false, broadcast: false, sibling_links: false }
    }

    /// The published §3.6 optimisations plus the §8 sibling-interconnect
    /// extension.
    pub fn with_sibling_links() -> Self {
        OptFlags { sibling_links: true, ..Default::default() }
    }
}

/// A complete Cambricon-F instance: inner levels from the root down, then
/// the leaf core spec.
///
/// The root level's memory is the machine's *global memory* (visible to
/// programmers); benchmark data is resident there, so the root performs no
/// DMA of its own.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Instance name ("Cambricon-F1", "Cambricon-F100", …).
    pub name: String,
    /// Inner levels, root first.
    pub levels: Vec<LevelSpec>,
    /// The leaf accelerator.
    pub leaf: LeafSpec,
    /// Optimisation switches.
    pub opts: OptFlags,
}

const GB: f64 = 1e9;
const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;
const GIB: u64 = 1024 * 1024 * 1024;

impl MachineConfig {
    /// The paper's leaf core: 0.46 Tops MAC matrix, 256 KB eDRAM at
    /// 80 GB/s.
    pub fn paper_core() -> LeafSpec {
        LeafSpec {
            mac_ops: 0.465e12,
            vec_ops: 16e9,
            mem_bytes: 256 * KIB,
            bw_bytes: 80.0 * GB,
            decode_s: 20e-9,
            dma_latency_s: 20e-9,
        }
    }

    /// Cambricon-F1 (Table 6 bottom): Chip(Card) → FMP(×32 cores) → Core.
    /// 14.9 Tops peak, 32 GB card DRAM at 512 GB/s.
    pub fn cambricon_f1() -> Self {
        MachineConfig {
            name: "Cambricon-F1".into(),
            levels: vec![
                LevelSpec {
                    name: "Chip".into(),
                    fanout: 1,
                    lfu_lanes: 0,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 32 * GIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 100e-9,
                    dma_latency_s: 200e-9,
                },
                LevelSpec {
                    name: "FMP".into(),
                    fanout: 32,
                    lfu_lanes: 16,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 8 * MIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 50e-9,
                    dma_latency_s: 50e-9,
                },
            ],
            leaf: Self::paper_core(),
            opts: OptFlags::default(),
        }
    }

    /// Cambricon-F100 (Table 6 top): Server(×4 cards) → Card(×2 chips) →
    /// Chip(×8 FMPs) → FMP(×32 cores) → Core. 956 Tops peak, 1 TB host
    /// memory at 128 GB/s.
    pub fn cambricon_f100() -> Self {
        MachineConfig {
            name: "Cambricon-F100".into(),
            levels: vec![
                LevelSpec {
                    name: "Server".into(),
                    fanout: 4,
                    lfu_lanes: 1,
                    // The host Xeon serves as high-level controller & LFU.
                    lfu_lane_ops: 50e9,
                    mem_bytes: 1024 * GIB,
                    // Benchmark data lives *sharded across the four cards'
                    // 32 GB DRAMs* (the same steady-state treatment the
                    // paper's DGX-1 baseline enjoys with data in HBM, and
                    // what §7's "traffic between DRAM and chips" measures):
                    // the server level's serving bandwidth is the cards'
                    // aggregate DRAM bandwidth, so each card streams from
                    // its local shard at 512 GB/s. The physical 128 GB/s
                    // host link only distributes cold data and is excluded
                    // from steady-state benchmarks.
                    bw_bytes: 4.0 * 512.0 * GB,
                    decode_s: 2e-6,
                    dma_latency_s: 2e-6,
                },
                LevelSpec {
                    name: "Card".into(),
                    fanout: 2,
                    lfu_lanes: 0,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 32 * GIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 100e-9,
                    dma_latency_s: 200e-9,
                },
                LevelSpec {
                    name: "Chip".into(),
                    fanout: 8,
                    lfu_lanes: 16,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 256 * MIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 50e-9,
                    dma_latency_s: 100e-9,
                },
                LevelSpec {
                    name: "FMP".into(),
                    fanout: 32,
                    lfu_lanes: 16,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 8 * MIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 50e-9,
                    dma_latency_s: 50e-9,
                },
            ],
            leaf: Self::paper_core(),
            opts: OptFlags::default(),
        }
    }

    /// The physical host-to-cards link bandwidth of Cambricon-F100 in
    /// bytes/s (Table 6's 128 GB/s — "51.9 % higher than DGX-1's measured
    /// 84.24 GB/s"). Used for cold-data staging, not steady-state serving.
    pub const F100_HOST_BW_BYTES: f64 = 128.0e9;

    /// The five-level 2048-core machine of the §3.6 TTT discussion
    /// (1, 4, 8, 64, 2048 nodes per level).
    pub fn ablation_2048() -> Self {
        MachineConfig {
            name: "Cambricon-F-2048".into(),
            levels: vec![
                LevelSpec {
                    name: "Server".into(),
                    fanout: 4,
                    lfu_lanes: 1,
                    lfu_lane_ops: 50e9,
                    mem_bytes: 1024 * GIB,
                    // Card-resident data, as for Cambricon-F100.
                    bw_bytes: 4.0 * 512.0 * GB,
                    decode_s: 2e-6,
                    dma_latency_s: 2e-6,
                },
                LevelSpec {
                    name: "Card".into(),
                    fanout: 2,
                    lfu_lanes: 0,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 32 * GIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 100e-9,
                    dma_latency_s: 200e-9,
                },
                LevelSpec {
                    name: "Chip".into(),
                    fanout: 8,
                    lfu_lanes: 16,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 256 * MIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 50e-9,
                    dma_latency_s: 100e-9,
                },
                LevelSpec {
                    name: "FMP".into(),
                    fanout: 32,
                    lfu_lanes: 16,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 8 * MIB,
                    bw_bytes: 512.0 * GB,
                    decode_s: 50e-9,
                    dma_latency_s: 50e-9,
                },
            ],
            leaf: Self::paper_core(),
            opts: OptFlags::default(),
        }
    }

    /// An embedded-scale Cambricon-F (the paper's cellphone scenario —
    /// "a small machine learning subsystem in a cellphone can use the same
    /// ISA", §3.1): one FMP with four cores over 512 MB of LPDDR-class
    /// memory. Roughly 1.9 Tops peak.
    pub fn cambricon_f_embedded() -> Self {
        MachineConfig {
            name: "Cambricon-F-Embedded".into(),
            levels: vec![
                LevelSpec {
                    name: "SoC".into(),
                    fanout: 1,
                    lfu_lanes: 0,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 512 * MIB,
                    bw_bytes: 34.0 * GB, // LPDDR4X-class
                    decode_s: 200e-9,
                    dma_latency_s: 300e-9,
                },
                LevelSpec {
                    name: "FMP".into(),
                    fanout: 4,
                    lfu_lanes: 8,
                    lfu_lane_ops: 1e9,
                    mem_bytes: 2 * MIB,
                    bw_bytes: 64.0 * GB,
                    decode_s: 50e-9,
                    dma_latency_s: 50e-9,
                },
            ],
            leaf: Self::paper_core(),
            opts: OptFlags::default(),
        }
    }

    /// A deliberately tiny machine for functional tests: `depth` inner
    /// levels of the given fan-out, small memories so the decomposers are
    /// exercised hard.
    pub fn tiny(depth: usize, fanout: usize, node_mem_bytes: u64) -> Self {
        let levels = (0..depth)
            .map(|i| LevelSpec {
                name: format!("L{i}"),
                fanout,
                lfu_lanes: if i % 2 == 0 { 4 } else { 0 },
                lfu_lane_ops: 1e9,
                mem_bytes: node_mem_bytes,
                bw_bytes: 64.0 * GB,
                decode_s: 50e-9,
                dma_latency_s: 50e-9,
            })
            .collect();
        MachineConfig {
            name: format!("tiny-{depth}x{fanout}"),
            levels,
            leaf: LeafSpec {
                mac_ops: 0.465e12,
                vec_ops: 16e9,
                mem_bytes: node_mem_bytes / 2,
                bw_bytes: 80.0 * GB,
                decode_s: 20e-9,
                dma_latency_s: 20e-9,
            },
            opts: OptFlags::default(),
        }
    }

    /// Number of levels including the leaf level.
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Number of leaf cores in the whole machine.
    pub fn core_count(&self) -> u64 {
        self.levels.iter().map(|l| l.fanout as u64).product()
    }

    /// Peak MAC throughput of the whole machine in ops/s.
    pub fn peak_ops(&self) -> f64 {
        self.core_count() as f64 * self.leaf.mac_ops
    }

    /// Bandwidth of the machine's root (global) memory in bytes/s — the
    /// roofline slope of Figure 15.
    pub fn root_bw_bytes(&self) -> f64 {
        self.levels.first().map(|l| l.bw_bytes).unwrap_or(self.leaf.bw_bytes)
    }

    /// Memory capacity of the node kind at `level` (0 = root; the leaf
    /// level is `levels.len()`).
    pub fn mem_bytes_at(&self, level: usize) -> u64 {
        if level < self.levels.len() {
            self.levels[level].mem_bytes
        } else {
            self.leaf.mem_bytes
        }
    }

    /// Fan-out at `level` (0 for the leaf level).
    pub fn fanout_at(&self, level: usize) -> usize {
        if level < self.levels.len() {
            self.levels[level].fanout
        } else {
            0
        }
    }

    /// Whether `level` is the leaf level.
    pub fn is_leaf(&self, level: usize) -> bool {
        level >= self.levels.len()
    }

    /// Returns a copy with different optimisation flags (for ablations).
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = opts;
        self
    }

    /// A stable 64-bit fingerprint of the machine's *structure*: every
    /// level's geometry, throughput and latency figures, the leaf spec and
    /// the optimisation switches.
    ///
    /// The display [`name`](MachineConfig::name) is deliberately excluded:
    /// two configurations that differ only in name plan and simulate
    /// identically, so they share one entry in `cf-runtime`'s plan/report
    /// cache. The hash is FNV-1a over a canonical field encoding (`f64`s
    /// by bit pattern) and is stable across processes, platforms and Rust
    /// releases — see [`cf_tensor::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.levels.len());
        for level in &self.levels {
            // Level names are structural: they only label Table-6 rows.
            h.write_usize(level.fanout);
            h.write_usize(level.lfu_lanes);
            h.write_f64(level.lfu_lane_ops);
            h.write_u64(level.mem_bytes);
            h.write_f64(level.bw_bytes);
            h.write_f64(level.decode_s);
            h.write_f64(level.dma_latency_s);
        }
        h.write_f64(self.leaf.mac_ops);
        h.write_f64(self.leaf.vec_ops);
        h.write_u64(self.leaf.mem_bytes);
        h.write_f64(self.leaf.bw_bytes);
        h.write_f64(self.leaf.decode_s);
        h.write_f64(self.leaf.dma_latency_s);
        h.write_bool(self.opts.ttt);
        h.write_bool(self.opts.concat);
        h.write_bool(self.opts.broadcast);
        h.write_bool(self.opts.sibling_links);
        h.finish()
    }

    /// [`fingerprint`](MachineConfig::fingerprint) as the canonical
    /// 16-digit lowercase-hex string used wherever the fingerprint
    /// crosses a process boundary (serve journals, reports, logs).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_matches_table6() {
        let c = MachineConfig::cambricon_f1();
        assert_eq!(c.depth(), 3);
        assert_eq!(c.core_count(), 32);
        // 32 cores × 0.465 Tops ≈ 14.9 Tops.
        assert!((c.peak_ops() / 1e12 - 14.9).abs() < 0.2);
        assert_eq!(c.levels[0].mem_bytes, 32 * GIB);
        assert_eq!(c.levels[1].fanout, 32);
    }

    #[test]
    fn f100_matches_table6() {
        let c = MachineConfig::cambricon_f100();
        assert_eq!(c.depth(), 5);
        assert_eq!(c.core_count(), 4 * 2 * 8 * 32);
        // 2048 cores × 0.465 ≈ 952 Tops (Table 6 says 956).
        assert!((c.peak_ops() / 1e12 - 956.0).abs() < 10.0);
        // Host link 128 GB/s — 51.9 % above DGX-1's measured 84.24;
        // steady-state root serving is the cards' aggregate DRAM bandwidth.
        assert!((MachineConfig::F100_HOST_BW_BYTES / (84.24 * GB) - 1.519).abs() < 0.01);
        assert!((c.root_bw_bytes() - 2048.0 * GB).abs() < 1.0);
        // The Card level has no LFU: reductions must be commissioned.
        assert_eq!(c.levels[1].lfu_lanes, 0);
    }

    #[test]
    fn ablation_machine_is_2048_core() {
        let c = MachineConfig::ablation_2048();
        assert_eq!(c.core_count(), 2048);
        assert_eq!(c.depth(), 5);
    }

    #[test]
    fn embedded_instance_is_phone_scale() {
        let c = MachineConfig::cambricon_f_embedded();
        assert_eq!(c.core_count(), 4);
        assert!(c.peak_ops() < 2.5e12);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn fingerprint_is_structural() {
        let f1 = MachineConfig::cambricon_f1();
        // Deterministic and clone-stable.
        assert_eq!(f1.fingerprint(), f1.clone().fingerprint());
        // The display name does not participate.
        let mut renamed = f1.clone();
        renamed.name = "Cambricon-F1-as-deployed".into();
        assert_eq!(renamed.fingerprint(), f1.fingerprint());
        // Any structural field does.
        let mut wider = f1.clone();
        wider.levels[1].fanout += 1;
        assert_ne!(wider.fingerprint(), f1.fingerprint());
        let mut slower = f1.clone();
        slower.leaf.mac_ops *= 0.5;
        assert_ne!(slower.fingerprint(), f1.fingerprint());
        assert_ne!(f1.clone().with_opts(OptFlags::none()).fingerprint(), f1.fingerprint());
        // Distinct machines are distinct.
        assert_ne!(MachineConfig::cambricon_f100().fingerprint(), f1.fingerprint());
    }

    #[test]
    fn accessors() {
        let c = MachineConfig::cambricon_f1();
        assert!(c.is_leaf(2));
        assert!(!c.is_leaf(1));
        assert_eq!(c.fanout_at(2), 0);
        assert_eq!(c.mem_bytes_at(2), 256 * KIB);
        let c2 = c.with_opts(OptFlags::none());
        assert!(!c2.opts.ttt);
    }
}
