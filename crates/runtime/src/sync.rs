//! Poison-recovering lock helpers.
//!
//! The runtime survives panicking job bodies by design (workers respawn,
//! supervised jobs retry), so a poisoned mutex does not indicate broken
//! shared state here — every critical section leaves the guarded data
//! consistent before any operation that can unwind. These helpers recover
//! the guard from a poisoned lock instead of propagating the poison as a
//! second panic.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Locks `m`, recovering from poisoning.
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Waits on `cv`, recovering the guard from poisoning.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Waits on `cv` up to `timeout`, recovering the guard from poisoning.
/// The timed-out flag is dropped — callers re-check their own deadlines.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, timeout).map(|(g, _)| g).unwrap_or_else(|e| e.into_inner().0)
}
