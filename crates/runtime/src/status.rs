//! A minimal, dependency-free HTTP/1.1 status server over an [`Obs`]
//! hub.
//!
//! Serves exactly four endpoints on a loopback listener:
//!
//! | route      | payload | status |
//! |------------|---------|--------|
//! | `/healthz` | liveness + admission headroom | `200` with headroom, `503` when overloaded |
//! | `/stats`   | the live [`StatsSnapshot`](crate::StatsSnapshot) JSON | `200` once a run published, `503 "starting"` before |
//! | `/trace`   | recent span events + per-stage latency histograms | `200` |
//! | `/metrics` | Prometheus text exposition (see [`metrics`](crate::metrics)) | `200`, always |
//!
//! Every response is `Connection: close` with an exact `Content-Length`,
//! so `curl` and load-balancer probes need no keep-alive handling. The
//! accept loop runs on one background thread, polls non-blockingly and
//! shuts down when the server is dropped — it never outlives the run it
//! observes. This is a *status* server, not a web server: it binds
//! 127.0.0.1 only, reads at most one request head per connection and
//! never parses bodies. See DESIGN.md §8.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::obs::Obs;

/// Events returned by `/trace` per request.
const TRACE_LIMIT: usize = 256;

/// How long the accept loop sleeps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Per-connection read/write timeout: a stalled probe must not wedge
/// the accept loop.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// The status HTTP server (see the module docs).
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free port — read it back
    /// via [`local_addr`](StatusServer::local_addr)) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Any socket bind/configure failure, unchanged.
    pub fn bind(port: u16, obs: Arc<Obs>) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("cf-status-server".to_string())
                .spawn(move || accept_loop(&listener, &obs, &shutdown))?
        };
        Ok(StatusServer { addr, shutdown, thread: Some(thread) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread (also done on drop).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, obs: &Obs, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One slow or malformed probe must not kill the loop:
                // per-connection errors are dropped with the connection.
                let _ = serve_connection(stream, obs);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads one request head and writes one JSON response.
fn serve_connection(mut stream: TcpStream, obs: &Obs) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;

    // Read until the end of the request head (or a sane cap); the
    // request line is all the router needs.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    // Probes may send query strings (`/healthz?probe=lb`); route on the
    // path alone.
    let path = target.split('?').next().unwrap_or(target);

    const JSON: &str = "application/json";
    // The content type Prometheus' text parser expects.
    const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", JSON, "{\"error\":\"only GET is supported\"}".to_string())
    } else {
        match path {
            "/healthz" => {
                let (healthy, body) = obs.healthz();
                (if healthy { "200 OK" } else { "503 Service Unavailable" }, JSON, body)
            }
            "/stats" => {
                let (ready, body) = obs.stats_json();
                (if ready { "200 OK" } else { "503 Service Unavailable" }, JSON, body)
            }
            "/trace" => ("200 OK", JSON, obs.trace_json(TRACE_LIMIT)),
            "/metrics" => ("200 OK", PROM_TEXT, obs.metrics()),
            _ => (
                "404 Not Found",
                JSON,
                "{\"error\":\"not found\",\"routes\":[\"/healthz\",\"/stats\",\"/trace\",\"/metrics\"]}"
                    .to_string(),
            ),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::LoadPolicy;
    use crate::stats::RuntimeStats;

    /// A blocking one-shot HTTP GET against a local address.
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn routes_health_stats_trace_and_404() {
        let obs = Obs::new(64);
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();

        // Before any run publishes: healthz is permissive, stats is 503.
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("starting"), "{body}");
        let (status, body) = http_get(addr, "/stats");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("starting"), "{body}");

        // After a publish: stats serves the snapshot, healthz headroom.
        let stats = Arc::new(RuntimeStats::new(1));
        stats.submitted.fetch_add(5, Ordering::Relaxed);
        obs.publish(Arc::clone(&stats), LoadPolicy::max_in_flight(3));
        let (status, body) = http_get(addr, "/stats");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"submitted\":5"), "{body}");
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"headroom\":3"), "{body}");

        // Overload flips healthz to 503.
        stats.in_flight.fetch_add(3, Ordering::Relaxed);
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("overloaded"), "{body}");

        let (status, body) = http_get(addr, "/trace?limit=ignored");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"events\""), "{body}");

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE cf_jobs_submitted_total counter"), "{body}");
        assert!(body.contains("cf_jobs_submitted_total{instance=\"cf-serve\"} 5"), "{body}");
        assert!(body.contains("cf_max_in_flight{instance=\"cf-serve\"} 3"), "{body}");

        let (status, body) = http_get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
        assert!(body.contains("/healthz"), "{body}");
        assert!(body.contains("/metrics"), "{body}");

        server.shutdown();
    }
}
