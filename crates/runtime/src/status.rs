//! A minimal, dependency-free HTTP/1.1 server over an [`Obs`] hub:
//! read-only status endpoints plus the job-ingestion API.
//!
//! | route               | method | payload | status |
//! |---------------------|--------|---------|--------|
//! | `/healthz`          | GET    | liveness + admission headroom | `200`, `503` when overloaded |
//! | `/stats`            | GET    | the live [`StatsSnapshot`](crate::StatsSnapshot) JSON | `200` once a run published, `503 "starting"` before |
//! | `/trace`            | GET    | recent span events + per-stage latency histograms; `?limit=N` caps events, `?stage=` filters by stage/kind name, `?trace=<hex>` filters to one distributed trace | `200` |
//! | `/metrics`          | GET    | Prometheus text exposition (see [`crate::metrics`]) | `200`, always |
//! | `/version`          | GET    | crate version + git describe | `200`, always |
//! | `/jobs`             | POST   | JSON job spec (object or array) → `{"id":…}` | `202`, `400`, `413`, `503` + `Retry-After` |
//! | `/jobs/<id>`        | GET    | the finished record (blocking long-poll, `?timeout_s=`) | `200`, `202` still running, `404` |
//! | `/jobs/<id>/status` | GET    | non-blocking job status JSON | `200`, `404` |
//! | `/drain`            | POST   | begin graceful drain: stop admitting, finish in-flight, flip `/healthz` to `"draining"` | `200` |
//!
//! Every response carries an exact `Content-Length` and
//! `Connection: close` — errors included — so `curl` and load-balancer
//! probes need no keep-alive handling. A wrong method on a known route
//! answers `405` with an `Allow` header instead of a silent drop;
//! malformed request heads answer `400`; a `Content-Length` beyond the
//! configured bound answers `413` before the body is read (see
//! [`api::parse_request`]). The accept loop runs on one background
//! thread and hands each connection to its own thread, so a long-poll
//! on `GET /jobs/<id>` never blocks probes. Each request records one
//! [`SpanKind::ApiRequest`] span and a [`Stage::ApiRequest`] latency
//! sample on the hub's tracer. The server binds 127.0.0.1 only. See
//! DESIGN.md §8–9.
//!
//! **Distributed tracing.** `POST /jobs` reads the `X-CF-Trace` request
//! header (minting a fresh root context when absent — a lone backend
//! traces like a fleet member) and echoes the context on the `202`;
//! `GET /jobs/<id>` echoes it again and adds the `X-CF-Attribution`
//! latency breakdown once the record is done. Both ride as *headers*
//! only — record bodies stay byte-identical across fleet shapes. In
//! `/trace` responses, each event's `seq` is the tracer's monotonic
//! record counter: a gap between consecutive events means the bounded
//! span ring dropped the missing events under pressure (the top-level
//! `dropped` field counts them for the run's lifetime). See
//! DESIGN.md §16.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::api::{self, HttpParseError, HttpRequest, JobWait, SubmitError, SubmitOk};
use crate::fault::fnv1a;
use crate::metrics;
use crate::obs::{Obs, SpanKind, Stage};
use crate::serve::json_str;
use crate::trace::{TraceContext, ATTRIBUTION_HEADER, TRACE_HEADER};

/// Events returned by `/trace` per request.
const TRACE_LIMIT: usize = 256;

/// How long the accept loop sleeps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Per-read/write socket timeout: a stalled peer must not wedge a
/// connection thread forever.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Total time a client gets to deliver one complete request.
const READ_DEADLINE: Duration = Duration::from_secs(5);

/// Default `GET /jobs/<id>` long-poll patience.
const DEFAULT_POLL: Duration = Duration::from_secs(30);

/// Upper bound a client can raise the long-poll to via `?timeout_s=`.
const MAX_POLL_SECS: u64 = 120;

const JSON: &str = "application/json";
/// The content type Prometheus' text parser expects.
const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The status-and-jobs HTTP server (see the module docs).
#[derive(Debug)]
pub struct StatusServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free port — read it back
    /// via [`local_addr`](StatusServer::local_addr)) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Any socket bind/configure failure, unchanged.
    pub fn bind(port: u16, obs: Arc<Obs>) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("cf-status-server".to_string())
                .spawn(move || accept_loop(&listener, &obs, &shutdown))?
        };
        Ok(StatusServer { addr, shutdown, thread: Some(thread) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread (also done on drop).
    /// Connection threads already serving a request finish on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, obs: &Arc<Obs>, shutdown: &AtomicBool) {
    let seq = Arc::new(AtomicU64::new(0));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One thread per connection: a long-poll on /jobs/<id>
                // must not block probes. One slow or malformed peer must
                // not kill the loop: per-connection errors are dropped
                // with the connection.
                let obs = Arc::clone(obs);
                let token = seq.fetch_add(1, Ordering::Relaxed);
                let spawned = thread::Builder::new().name(format!("cf-status-conn-{token}")).spawn(
                    move || {
                        let _ = serve_connection(stream, &obs, token);
                    },
                );
                drop(spawned);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// One response, ready to serialize.
struct Response {
    status: &'static str,
    content_type: &'static str,
    /// `Allow` header for 405s.
    allow: Option<&'static str>,
    /// `Retry-After` seconds for 503 sheds.
    retry_after: Option<u64>,
    /// Extra response headers (`X-CF-Trace`, `X-CF-Attribution`, …).
    extra: Vec<(&'static str, String)>,
    body: String,
}

impl Response {
    fn json(status: &'static str, body: String) -> Response {
        Response {
            status,
            content_type: JSON,
            allow: None,
            retry_after: None,
            extra: Vec::new(),
            body,
        }
    }

    fn error(status: &'static str, message: &str) -> Response {
        Response::json(status, format!("{{\"error\":{}}}", json_str(message)))
    }
}

/// Reads one complete request, routes it, writes one response.
fn serve_connection(mut stream: TcpStream, obs: &Arc<Obs>, token: u64) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;

    let max_body = obs.api().map_or(api::DEFAULT_MAX_BODY_BYTES, |a| a.max_body());
    let t0 = Instant::now();
    let (request, response) = match read_request(&mut stream, max_body) {
        Ok(Some(request)) => {
            let response = route(&request, obs);
            (Some(request), response)
        }
        // Empty connect-and-close probe: nothing to answer.
        Ok(None) => return Ok(()),
        Err(e) => (None, Response::error(e.status(), &e.to_string())),
    };

    let tracer = obs.tracer();
    tracer.observe(Stage::ApiRequest, t0.elapsed());
    tracer.record(SpanKind::ApiRequest, token, Some(t0.elapsed()), || match &request {
        Some(r) => format!("{} {} -> {}", r.method, r.path(), response.status),
        None => format!("unparsed -> {}", response.status),
    });

    // Every response carries an FNV-1a digest of its body so a
    // downstream router (or any client) can reject bytes the wire
    // mangled in flight — see `cf_runtime::netfault` and DESIGN.md §11.
    let mut head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\nX-CF-Digest: {:016x}\r\n",
        response.status,
        response.content_type,
        response.body.len(),
        fnv1a(response.body.as_bytes()),
    );
    if let Some(allow) = response.allow {
        head.push_str(&format!("Allow: {allow}\r\n"));
    }
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    for (name, value) in &response.extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Accumulates socket reads through [`api::parse_request`] until one
/// request completes. `Ok(None)` is a connection with no request at all
/// (a port probe); a truncated or overlong request is a parse error the
/// caller answers with 400/413 rather than silently dropping.
fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
) -> Result<Option<HttpRequest>, HttpParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + READ_DEADLINE;
    loop {
        if let Some(request) = api::parse_request(&buf, max_body)? {
            return Ok(Some(request));
        }
        if Instant::now() > deadline {
            return Err(HttpParseError::BadRequestLine);
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => return Err(HttpParseError::BadRequestLine),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) if buf.is_empty() => return Ok(None),
            Err(_) => return Err(HttpParseError::BadRequestLine),
        }
    }
}

fn route(request: &HttpRequest, obs: &Arc<Obs>) -> Response {
    let path = request.path();
    match path {
        "/healthz" | "/stats" | "/trace" | "/metrics" | "/version" => {
            if request.method != "GET" {
                let mut r = Response::error("405 Method Not Allowed", "only GET is supported");
                r.allow = Some("GET");
                return r;
            }
            match path {
                "/healthz" => {
                    let (healthy, body) = obs.healthz();
                    Response::json(if healthy { "200 OK" } else { "503 Service Unavailable" }, body)
                }
                "/stats" => {
                    let (ready, body) = obs.stats_json();
                    Response::json(if ready { "200 OK" } else { "503 Service Unavailable" }, body)
                }
                "/trace" => {
                    let (limit, stage, trace) = trace_query(request);
                    Response::json(
                        "200 OK",
                        obs.trace_json_filtered(limit, stage.as_deref(), trace),
                    )
                }
                "/version" => {
                    let (version, git) = metrics::build_info();
                    Response::json(
                        "200 OK",
                        format!(
                            "{{\"name\":\"cf-serve\",\"version\":{},\"git\":{}}}",
                            json_str(version),
                            json_str(git),
                        ),
                    )
                }
                _ => Response {
                    status: "200 OK",
                    content_type: PROM_TEXT,
                    allow: None,
                    retry_after: None,
                    extra: Vec::new(),
                    body: obs.metrics(),
                },
            }
        }
        "/jobs" => route_submit(request, obs),
        "/drain" => route_drain(request, obs),
        _ => match path.strip_prefix("/jobs/") {
            Some(rest) => route_job(request, rest, obs),
            None => Response::json(
                "404 Not Found",
                "{\"error\":\"not found\",\"routes\":[\"/healthz\",\"/stats\",\"/trace\",\
                 \"/metrics\",\"/version\",\"/jobs\",\"/jobs/<id>\",\"/jobs/<id>/status\",\
                 \"/drain\"]}"
                    .to_string(),
            ),
        },
    }
}

/// `POST /drain`: flip the hub into draining. The serve loop (cfserve)
/// watches [`Obs::draining`], finishes in-flight work, fsyncs the
/// journal and exits; this handler only initiates and reports.
fn route_drain(request: &HttpRequest, obs: &Arc<Obs>) -> Response {
    if request.method != "POST" {
        let mut r = Response::error("405 Method Not Allowed", "initiate a drain with POST");
        r.allow = Some("POST");
        return r;
    }
    obs.begin_drain();
    let pending = obs.api().map_or("null".to_string(), |api| api.pending().to_string());
    Response::json("200 OK", format!("{{\"status\":\"draining\",\"pending\":{pending}}}"))
}

/// `POST /jobs`: validate, journal the accept, answer the id.
fn route_submit(request: &HttpRequest, obs: &Arc<Obs>) -> Response {
    if request.method != "POST" {
        let mut r = Response::error("405 Method Not Allowed", "submit jobs with POST");
        r.allow = Some("POST");
        return r;
    }
    if obs.draining() {
        return Response::json(
            "503 Service Unavailable",
            "{\"error\":\"draining\",\"status\":\"draining\"}".to_string(),
        );
    }
    let Some(api) = obs.api() else {
        return Response::error(
            "503 Service Unavailable",
            "job api disabled (start cfserve with --status-port and a journal)",
        );
    };
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::error("400 Bad Request", "body is not UTF-8");
    };
    // Join the fleet trace the caller propagated (a router's attempt
    // span), or mint a root context so a lone backend traces the same
    // way a fleet member does. The context is echoed on the 202.
    let trace = match request.header(TRACE_HEADER) {
        Some(value) => match TraceContext::parse(value) {
            Ok(ctx) => ctx,
            Err(e) => return Response::error("400 Bad Request", &e.to_string()),
        },
        None => TraceContext::mint(),
    };
    match api.submit_body_traced(body, Some(trace)) {
        Ok(SubmitOk::One(id)) => {
            let mut r = Response::json("202 Accepted", format!("{{\"id\":{id}}}"));
            r.extra.push((TRACE_HEADER, trace.encode()));
            r
        }
        Ok(SubmitOk::Many(ids)) => {
            let ids = ids.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            let mut r = Response::json("202 Accepted", format!("{{\"ids\":[{ids}]}}"));
            r.extra.push((TRACE_HEADER, trace.encode()));
            r
        }
        Err(SubmitError::Bad(message)) => Response::error("400 Bad Request", &message),
        Err(SubmitError::Shed { retry_after_s, message }) => {
            let mut r = Response::json(
                "503 Service Unavailable",
                format!("{{\"error\":{},\"retry_after_s\":{retry_after_s}}}", json_str(&message)),
            );
            r.retry_after = Some(retry_after_s);
            r
        }
        Err(SubmitError::Journal(message)) => {
            Response::error("500 Internal Server Error", &message)
        }
    }
}

/// `GET /jobs/<id>` (long-poll) and `GET /jobs/<id>/status`.
fn route_job(request: &HttpRequest, rest: &str, obs: &Arc<Obs>) -> Response {
    if request.method != "GET" {
        let mut r = Response::error("405 Method Not Allowed", "poll jobs with GET");
        r.allow = Some("GET");
        return r;
    }
    let Some(api) = obs.api() else {
        return Response::error("503 Service Unavailable", "job api disabled");
    };
    let (id_part, status_only) = match rest.strip_suffix("/status") {
        Some(id_part) => (id_part, true),
        None => (rest, false),
    };
    let Ok(id) = id_part.parse::<u64>() else {
        return Response::error("400 Bad Request", "job id must be an unsigned integer");
    };
    if status_only {
        return match api.status_json(id) {
            Some(body) => Response::json("200 OK", body),
            None => Response::error("404 Not Found", "no such job"),
        };
    }
    let timeout = poll_timeout(request);
    // The job's trace context and (once settled) latency attribution
    // ride as response *headers*: record bodies must stay byte-identical
    // to a fleet-less run (clients digest-verify them).
    let trace_header = api.trace_of(id).map(|ctx| ctx.encode());
    match api.wait(id, timeout) {
        Some(JobWait::Done(record)) => {
            api.note_streamed(record.len() as u64);
            let mut r = Response::json("200 OK", record);
            if let Some(value) = trace_header {
                r.extra.push((TRACE_HEADER, value));
            }
            if let Some(attribution) = api.attribution_of(id) {
                r.extra.push((ATTRIBUTION_HEADER, attribution));
            }
            r
        }
        Some(JobWait::Running(status)) => {
            let mut r = Response::json("202 Accepted", status);
            if let Some(value) = trace_header {
                r.extra.push((TRACE_HEADER, value));
            }
            r
        }
        None => Response::error("404 Not Found", "no such job"),
    }
}

/// The `GET /trace` query filters: `?limit=N` (events returned;
/// non-numeric values fall back to [`TRACE_LIMIT`]), `?stage=name`
/// (stage or kind wire name) and `?trace=hex` (a distributed trace id,
/// up to 32 hex digits). Unknown parameters are ignored.
fn trace_query(request: &HttpRequest) -> (usize, Option<String>, Option<u128>) {
    let mut limit = TRACE_LIMIT;
    let mut stage = None;
    let mut trace = None;
    if let Some(query) = request.query() {
        for pair in query.split('&') {
            if let Some(value) = pair.strip_prefix("limit=") {
                if let Ok(n) = value.parse::<usize>() {
                    limit = n;
                }
            } else if let Some(value) = pair.strip_prefix("stage=") {
                if !value.is_empty() {
                    stage = Some(value.to_string());
                }
            } else if let Some(value) = pair.strip_prefix("trace=") {
                if (1..=32).contains(&value.len()) {
                    if let Ok(id) = u128::from_str_radix(value, 16) {
                        trace = Some(id);
                    }
                }
            }
        }
    }
    (limit, stage, trace)
}

/// The long-poll patience: `?timeout_s=N` clamped to `0..=120`,
/// [`DEFAULT_POLL`] without one.
fn poll_timeout(request: &HttpRequest) -> Duration {
    let Some(query) = request.query() else { return DEFAULT_POLL };
    for pair in query.split('&') {
        if let Some(value) = pair.strip_prefix("timeout_s=") {
            if let Ok(secs) = value.parse::<u64>() {
                return Duration::from_secs(secs.min(MAX_POLL_SECS));
            }
        }
    }
    DEFAULT_POLL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::JobApi;
    use crate::scheduler::{LoadPolicy, Runtime, RuntimeConfig};
    use crate::stats::RuntimeStats;

    /// A blocking one-shot HTTP exchange against a local address. Write
    /// and read errors are tolerated: a server rejecting an oversized
    /// body responds (and closes) while the client is still sending, so
    /// the tail of the write may hit a reset — the response that made it
    /// through is still what the test wants.
    fn http(addr: SocketAddr, raw: &str) -> (String, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(raw.as_bytes());
        let mut bytes = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            }
        }
        let response = String::from_utf8_lossy(&bytes).to_string();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, head.to_string(), body.to_string())
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let (status, _, body) =
            http(addr, &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"));
        (status, body)
    }

    fn http_post(addr: SocketAddr, path: &str, body: &str) -> (String, String, String) {
        http(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn routes_health_stats_trace_and_404() {
        let obs = Obs::new(64);
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();

        // Before any run publishes: healthz is permissive, stats is 503.
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("starting"), "{body}");
        let (status, body) = http_get(addr, "/stats");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("starting"), "{body}");

        // After a publish: stats serves the snapshot, healthz headroom.
        let stats = Arc::new(RuntimeStats::new(1));
        stats.submitted.fetch_add(5, Ordering::Relaxed);
        obs.publish(Arc::clone(&stats), LoadPolicy::max_in_flight(3));
        let (status, body) = http_get(addr, "/stats");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"submitted\":5"), "{body}");
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"headroom\":3"), "{body}");

        // Overload flips healthz to 503.
        stats.in_flight.fetch_add(3, Ordering::Relaxed);
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("overloaded"), "{body}");

        let (status, body) = http_get(addr, "/trace?limit=ignored");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"events\""), "{body}");

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE cf_jobs_submitted_total counter"), "{body}");
        assert!(body.contains("cf_jobs_submitted_total{instance=\"cf-serve\"} 5"), "{body}");
        assert!(body.contains("cf_max_in_flight{instance=\"cf-serve\"} 3"), "{body}");

        let (status, body) = http_get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
        assert!(body.contains("/healthz"), "{body}");
        assert!(body.contains("/version"), "{body}");
        assert!(body.contains("/jobs"), "{body}");

        server.shutdown();
    }

    #[test]
    fn version_and_method_not_allowed() {
        let obs = Obs::new(64);
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/version");
        assert!(status.contains("200"), "{status}");
        let (version, git) = metrics::build_info();
        assert!(body.contains(&format!("\"version\":\"{version}\"")), "{body}");
        assert!(body.contains(&format!("\"git\":\"{git}\"")), "{body}");

        for path in ["/healthz", "/stats", "/trace", "/metrics", "/version"] {
            let (status, head, body) = http_post(addr, path, "{}");
            assert!(status.contains("405"), "{path}: {status}");
            assert!(head.contains("Allow: GET"), "{path}: {head}");
            assert!(head.contains("Content-Length:"), "{path}: {head}");
            assert!(head.contains("Connection: close"), "{path}: {head}");
            assert!(body.contains("error"), "{path}: {body}");
        }

        // Malformed request line: 400, not a silent drop.
        let (status, _, body) = http(addr, "garbage\r\n\r\n");
        assert!(status.contains("400"), "{status}");
        assert!(body.contains("malformed"), "{body}");

        server.shutdown();
    }

    #[test]
    fn jobs_over_http_submit_poll_and_shed() {
        let obs = Obs::new(64);
        let runtime = Arc::new(Runtime::new(RuntimeConfig { workers: 1, ..Default::default() }));
        let api = JobApi::new(Arc::clone(&runtime), 4096);
        obs.publish(runtime.stats_arc(), runtime.load_policy());
        obs.publish_api(Arc::clone(&api));
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();

        // Submit, long-poll the record, check status.
        let (status, _, body) = http_post(
            addr,
            "/jobs",
            r#"{"workload":"matmul","order":32,"machine":"tiny","label":"http"}"#,
        );
        assert!(status.contains("202"), "{status}: {body}");
        assert_eq!(body, "{\"id\":0}");
        let (status, body) = http_get(addr, "/jobs/0?timeout_s=60");
        assert!(status.contains("200"), "{status}: {body}");
        assert!(body.starts_with("{\"job\":0,\"label\":\"http\""), "{body}");
        assert!(body.contains("\"ok\":true"), "{body}");
        let (status, body) = http_get(addr, "/jobs/0/status");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"state\":\"done\""), "{body}");
        let (status, _) = http_get(addr, "/jobs/7");
        assert!(status.contains("404"), "{status}");
        let streamed = runtime.stats().api_streamed_bytes.load(Ordering::Relaxed);
        assert!(streamed > 0, "streamed bytes not accounted");

        // Malformed spec: 400. Oversized body: 413 from the header alone.
        let (status, _, body) = http_post(addr, "/jobs", r#"{"workload":"nope"}"#);
        assert!(status.contains("400"), "{status}: {body}");
        let big = "x".repeat(5000);
        let (status, _, _) = http_post(addr, "/jobs", &big);
        assert!(status.contains("413"), "{status}");

        // Wrong method on /jobs and /jobs/<id>.
        let (status, head, _) = http(addr, "DELETE /jobs HTTP/1.1\r\n\r\n");
        assert!(status.contains("405"), "{status}");
        assert!(head.contains("Allow: POST"), "{head}");
        let (status, head, _) = http(addr, "DELETE /jobs/0 HTTP/1.1\r\n\r\n");
        assert!(status.contains("405"), "{status}");
        assert!(head.contains("Allow: GET"), "{head}");

        server.shutdown();
    }

    #[test]
    fn submit_echoes_trace_context_and_attribution_headers() {
        let obs = Obs::new(64);
        let runtime = Arc::new(Runtime::new(RuntimeConfig {
            workers: 1,
            tracer: Some(Arc::clone(obs.tracer())),
            ..Default::default()
        }));
        let api = JobApi::new(Arc::clone(&runtime), 4096);
        obs.publish(runtime.stats_arc(), runtime.load_policy());
        obs.publish_api(Arc::clone(&api));
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();

        // A propagated X-CF-Trace context is echoed verbatim on the 202.
        let ctx = crate::trace::TraceContext::mint();
        let spec = r#"{"workload":"matmul","order":32,"machine":"tiny"}"#;
        let (status, head, body) = http(
            addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nHost: l\r\nX-CF-Trace: {}\r\nContent-Length: {}\r\n\r\n{spec}",
                ctx.encode(),
                spec.len(),
            ),
        );
        assert!(status.contains("202"), "{status}: {body}");
        assert!(head.contains(&format!("X-CF-Trace: {}", ctx.encode())), "{head}");

        // The finished poll carries the per-job child context plus the
        // attribution breakdown — as headers; the body is unchanged.
        let (status, head, body) =
            http(addr, "GET /jobs/0?timeout_s=60 HTTP/1.1\r\nHost: l\r\n\r\n");
        assert!(status.contains("200"), "{status}: {body}");
        assert!(head.contains(&format!("X-CF-Trace: {:032x}-", ctx.trace_id)), "{head}");
        assert!(head.contains(&format!("-{:016x}\r\n", ctx.span_id)), "child parent: {head}");
        let attribution = head
            .lines()
            .find_map(|l| l.strip_prefix("X-CF-Attribution: "))
            .unwrap_or_else(|| panic!("no attribution header in {head}"));
        let a = crate::trace::Attribution::parse(attribution).unwrap();
        assert_eq!(a.execution_sum_us(), a.total_us(), "{attribution}");
        assert!(!body.contains("total_us="), "attribution must not leak into the body");
        assert!(body.starts_with("{\"job\":0,"), "{body}");

        // A malformed header is a 400, not a panic or a silent drop.
        let (status, _, body) = http(
            addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nHost: l\r\nX-CF-Trace: garbage\r\nContent-Length: {}\r\n\r\n{spec}",
                spec.len(),
            ),
        );
        assert!(status.contains("400"), "{status}: {body}");

        // Without the header the backend mints its own root context.
        let (status, head, _) = http_post(addr, "/jobs", spec);
        assert!(status.contains("202"), "{status}");
        assert!(head.contains("X-CF-Trace: "), "{head}");

        // /trace?trace= narrows to this trace's events (the settle event
        // lands moments after the poll returns, so retry briefly).
        let mut body = String::new();
        for _ in 0..500 {
            let (_, b) = http_get(addr, &format!("/trace?trace={:032x}", ctx.trace_id));
            body = b;
            if body.contains("job-settle") {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(body.contains("\"kind\":\"job-settle\""), "{body}");
        assert!(body.contains(&format!("\"trace\":\"{:032x}\"", ctx.trace_id)), "{body}");

        // ?stage= narrows events and histograms; ?limit= caps events.
        let (_, body) = http_get(addr, "/trace?stage=run");
        assert!(body.contains("\"run\":{\"count\""), "{body}");
        assert!(!body.contains("\"cache_lookup\""), "{body}");
        let (_, body) = http_get(addr, "/trace?limit=1");
        assert_eq!(body.matches("\"kind\":").count(), 1, "{body}");

        server.shutdown();
    }

    #[test]
    fn overloaded_submissions_shed_with_retry_after() {
        let obs = Obs::new(64);
        let runtime = Arc::new(Runtime::new(RuntimeConfig {
            workers: 1,
            load: LoadPolicy::max_in_flight(1),
            ..Default::default()
        }));
        let api = JobApi::new(Arc::clone(&runtime), 4096);
        obs.publish(runtime.stats_arc(), runtime.load_policy());
        obs.publish_api(Arc::clone(&api));
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();

        // Fill the only admission slot, then submit over HTTP.
        let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
        let blocker = runtime.submit_task(move || {
            let _ = hold_rx.recv();
        });
        let (status, head, body) =
            http_post(addr, "/jobs", r#"{"workload":"matmul","order":32,"machine":"tiny"}"#);
        assert!(status.contains("503"), "{status}: {body}");
        assert!(head.contains("Retry-After:"), "{head}");
        assert!(body.contains("retry_after_s"), "{body}");
        assert_eq!(runtime.stats().api_shed.load(Ordering::Relaxed), 1);
        hold_tx.send(()).unwrap();
        blocker.join().unwrap();

        server.shutdown();
    }

    #[test]
    fn drain_flips_healthz_and_refuses_submissions() {
        let obs = Obs::new(64);
        let runtime = Arc::new(Runtime::new(RuntimeConfig { workers: 1, ..Default::default() }));
        let api = JobApi::new(Arc::clone(&runtime), 4096);
        obs.publish(runtime.stats_arc(), runtime.load_policy());
        obs.publish_api(Arc::clone(&api));
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();

        // GET on /drain is a 405 — a probe must not trigger a drain.
        let (status, head, _) = http(addr, "GET /drain HTTP/1.1\r\n\r\n");
        assert!(status.contains("405"), "{status}");
        assert!(head.contains("Allow: POST"), "{head}");
        assert!(!obs.draining());

        // Initiate: 200 with the pending count, healthz flips to
        // draining (distinct from overloaded), submissions refuse.
        let (status, _, body) = http_post(addr, "/drain", "");
        assert!(status.contains("200"), "{status}: {body}");
        assert!(body.contains("\"status\":\"draining\""), "{body}");
        assert!(body.contains("\"pending\":0"), "{body}");
        assert!(obs.draining());
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("\"status\":\"draining\""), "{body}");
        assert!(!body.contains("overloaded"), "{body}");
        let (status, _, body) =
            http_post(addr, "/jobs", r#"{"workload":"matmul","order":32,"machine":"tiny"}"#);
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("draining"), "{body}");

        // Already-submitted jobs still poll fine; metrics report the gauge.
        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("cf_draining{instance=\"cf-serve\"} 1"), "{body}");

        server.shutdown();
    }

    #[test]
    fn jobs_without_a_published_api_are_503() {
        let obs = Obs::new(64);
        let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
        let addr = server.local_addr();
        let (status, _, body) = http_post(addr, "/jobs", "{}");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("disabled"), "{body}");
        server.shutdown();
    }
}
