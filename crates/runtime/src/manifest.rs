//! The `cfserve` job manifest: a plain-text description of simulation
//! jobs, one per line, as `key=value` pairs.
//!
//! ```text
//! # workload jobs (builtin generators)
//! workload=vgg16 batch=2 machine=f1 repeat=4
//! workload=matmul order=1024 machine=f100
//! workload=knn size=small mode=exec seed=7
//! # file jobs (FISA assembly)
//! program=assets/demo.cfasm machine=tiny label=demo
//! ```
//!
//! Keys: `workload=` *or* `program=` (exactly one, required),
//! `machine=` (default `f1`), `mode=simulate|exec` (default `simulate`),
//! `seed=` (exec input seeding, default `0xCAFE` like `cfrun`),
//! `batch=` (net workloads), `order=` (matmul), `size=small|paper`
//! (ML workloads), `repeat=` (submit the job N times — the repeats are
//! what the plan cache answers), `label=` (output tag),
//! `profile=true|false` (run the per-level/per-stage simulator profiler
//! on this job and fold the attribution into `/metrics`; simulate-mode
//! only, bypasses the plan cache), `trace_json=PATH` (also write the
//! profiled job's Chrome Trace Event JSON to `PATH`; implies
//! `profile=true`).

use std::fmt;

use cf_core::MachineConfig;
use cf_isa::Program;
use cf_workloads::ml::{self, MlSize};
use cf_workloads::nets;

/// Machine names accepted by `machine=` (and `cfrun --machine`).
pub const MACHINE_NAMES: [&str; 4] = ["f1", "f100", "embedded", "tiny"];

/// Resolves a machine name to its configuration; `None` for unknown
/// names (see [`MACHINE_NAMES`]).
pub fn machine_by_name(name: &str) -> Option<MachineConfig> {
    match name {
        "f1" => Some(MachineConfig::cambricon_f1()),
        "f100" => Some(MachineConfig::cambricon_f100()),
        "embedded" => Some(MachineConfig::cambricon_f_embedded()),
        "tiny" => Some(MachineConfig::tiny(2, 2, 64 << 10)),
        _ => None,
    }
}

/// Builtin workload generator names accepted by `workload=`.
pub const WORKLOAD_NAMES: [&str; 8] =
    ["matmul", "vgg16", "resnet152", "alexnet", "mlp3", "knn", "kmeans", "svm"];

/// What a job does with its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Performance-simulate (cacheable).
    Simulate,
    /// Functionally execute with inputs seeded from `seed` (never cached).
    Exec {
        /// Input data seed.
        seed: u64,
    },
}

/// Where a job's program comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// A `.cfasm` file to parse.
    File(String),
    /// A builtin generator from `cf-workloads`.
    Builtin {
        /// Generator name (see [`WORKLOAD_NAMES`]).
        name: String,
        /// Batch size for net workloads.
        batch: usize,
        /// Matrix order for `matmul`.
        order: usize,
        /// `small` or `paper` for ML workloads.
        size: String,
    },
}

/// One parsed manifest line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Output tag (defaults to the workload/file name).
    pub label: String,
    /// Validated machine name.
    pub machine: String,
    /// Simulate or exec.
    pub kind: JobKind,
    /// Program source.
    pub source: ProgramSource,
    /// How many copies of this job to submit.
    pub repeat: usize,
    /// Run the simulator profiler on this job (simulate mode only; the
    /// job bypasses the plan cache so the attribution is real).
    pub profile: bool,
    /// Write the profiled job's Chrome Trace Event JSON here.
    pub trace_json: Option<String>,
}

/// Manifest parsing/resolution errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// `machine=` named no known machine.
    UnknownMachine {
        /// The offending name.
        name: String,
        /// Manifest line.
        line: usize,
    },
    /// `workload=` named no builtin generator.
    UnknownWorkload {
        /// The offending name.
        name: String,
        /// Manifest line.
        line: usize,
    },
    /// A key the grammar does not know.
    UnknownKey {
        /// The offending key.
        key: String,
        /// Manifest line.
        line: usize,
    },
    /// A value that does not parse for its key.
    BadValue {
        /// The key whose value is malformed.
        key: String,
        /// The offending value.
        value: String,
        /// Manifest line.
        line: usize,
    },
    /// A line with neither or both of `program=` / `workload=`.
    BadSource {
        /// Manifest line.
        line: usize,
    },
    /// Reading or parsing a program file failed.
    Program {
        /// The file or generator involved.
        source: String,
        /// The underlying message.
        message: String,
    },
    /// Two jobs share a label: labels key journal/resume records and
    /// per-job reporting, so they must be unique per manifest.
    DuplicateLabel {
        /// The repeated label.
        label: String,
        /// Manifest line of the second occurrence (1-based).
        line: usize,
        /// Manifest line that first used the label (1-based).
        previous: usize,
    },
    /// A grammar error annotated with the offending line's content
    /// (what [`parse_manifest`] reports).
    BadLine {
        /// Manifest line (1-based).
        line: usize,
        /// The line as written (comments stripped, trimmed).
        content: String,
        /// The underlying grammar error.
        reason: Box<ManifestError>,
    },
}

impl ManifestError {
    /// The underlying grammar error, unwrapping [`ManifestError::BadLine`].
    pub fn reason(&self) -> &ManifestError {
        match self {
            ManifestError::BadLine { reason, .. } => reason,
            other => other,
        }
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::UnknownMachine { name, line } => write!(
                f,
                "line {line}: unknown machine `{name}` (valid machines: {})",
                MACHINE_NAMES.join(", ")
            ),
            ManifestError::UnknownWorkload { name, line } => write!(
                f,
                "line {line}: unknown workload `{name}` (valid workloads: {})",
                WORKLOAD_NAMES.join(", ")
            ),
            ManifestError::UnknownKey { key, line } => {
                write!(f, "line {line}: unknown key `{key}`")
            }
            ManifestError::BadValue { key, value, line } => {
                write!(f, "line {line}: bad value `{value}` for `{key}`")
            }
            ManifestError::BadSource { line } => {
                write!(f, "line {line}: need exactly one of `program=` or `workload=`")
            }
            ManifestError::Program { source, message } => {
                write!(f, "program `{source}`: {message}")
            }
            ManifestError::DuplicateLabel { label, line, previous } => write!(
                f,
                "line {line}: duplicate label `{label}` (first used on line {previous}); \
                 labels key journal/resume records and must be unique"
            ),
            ManifestError::BadLine { content, reason, .. } => {
                write!(f, "{reason} in line `{content}`")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// Parses a whole manifest; `#` comments and blank lines are skipped.
///
/// # Errors
///
/// Returns the first grammar error, wrapped in
/// [`ManifestError::BadLine`] so the message carries both the 1-based
/// line number and the offending line's content.
pub fn parse_manifest(text: &str) -> Result<Vec<JobSpec>, ManifestError> {
    let mut jobs = Vec::new();
    let mut label_lines: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let spec = parse_line(line, line_no).map_err(|reason| ManifestError::BadLine {
            line: line_no,
            content: line.to_string(),
            reason: Box::new(reason),
        })?;
        // Labels key journal/resume records and per-job reporting; a
        // duplicate would make those keys ambiguous.
        if let Some(&previous) = label_lines.get(&spec.label) {
            return Err(ManifestError::BadLine {
                line: line_no,
                content: line.to_string(),
                reason: Box::new(ManifestError::DuplicateLabel {
                    label: spec.label.clone(),
                    line: line_no,
                    previous,
                }),
            });
        }
        label_lines.insert(spec.label.clone(), line_no);
        jobs.push(spec);
    }
    Ok(jobs)
}

fn parse_line(line: &str, line_no: usize) -> Result<JobSpec, ManifestError> {
    let mut program: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut machine = "f1".to_string();
    let mut mode = "simulate".to_string();
    let mut seed: u64 = 0xCAFE;
    let mut batch: usize = 1;
    let mut order: usize = 256;
    let mut size = "small".to_string();
    let mut repeat: usize = 1;
    let mut label: Option<String> = None;
    let mut profile = false;
    let mut trace_json: Option<String> = None;

    for token in line.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            return Err(ManifestError::UnknownKey { key: token.to_string(), line: line_no });
        };
        let bad = |k: &str, v: &str| ManifestError::BadValue {
            key: k.to_string(),
            value: v.to_string(),
            line: line_no,
        };
        match key {
            "program" => program = Some(value.to_string()),
            "workload" => workload = Some(value.to_string()),
            "machine" => machine = value.to_string(),
            "mode" => mode = value.to_string(),
            "label" => label = Some(value.to_string()),
            "size" => size = value.to_string(),
            "seed" => seed = value.parse().map_err(|_| bad(key, value))?,
            "batch" => batch = value.parse().map_err(|_| bad(key, value))?,
            "order" => order = value.parse().map_err(|_| bad(key, value))?,
            "repeat" => repeat = value.parse().map_err(|_| bad(key, value))?,
            "profile" => {
                profile = match value {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    other => return Err(bad(key, other)),
                }
            }
            "trace_json" => trace_json = Some(value.to_string()),
            _ => return Err(ManifestError::UnknownKey { key: key.to_string(), line: line_no }),
        }
    }

    if machine_by_name(&machine).is_none() {
        return Err(ManifestError::UnknownMachine { name: machine, line: line_no });
    }
    let kind = match mode.as_str() {
        "simulate" => JobKind::Simulate,
        "exec" => JobKind::Exec { seed },
        other => {
            return Err(ManifestError::BadValue {
                key: "mode".to_string(),
                value: other.to_string(),
                line: line_no,
            })
        }
    };
    if repeat == 0 {
        return Err(ManifestError::BadValue {
            key: "repeat".to_string(),
            value: "0".to_string(),
            line: line_no,
        });
    }
    let (source, default_label) = match (program, workload) {
        (Some(path), None) => {
            let stem = path.rsplit('/').next().unwrap_or(&path).to_string();
            (ProgramSource::File(path), stem)
        }
        (None, Some(name)) => {
            if !WORKLOAD_NAMES.contains(&name.as_str()) {
                return Err(ManifestError::UnknownWorkload { name, line: line_no });
            }
            let default_label = name.clone();
            (ProgramSource::Builtin { name, batch, order, size }, default_label)
        }
        _ => return Err(ManifestError::BadSource { line: line_no }),
    };
    // Asking for a per-job trace without profiling would silently write
    // nothing; make `trace_json=` imply `profile=true`.
    let profile = profile || trace_json.is_some();
    if profile && kind != JobKind::Simulate {
        return Err(ManifestError::BadValue {
            key: "profile".to_string(),
            value: "exec".to_string(),
            line: line_no,
        });
    }
    Ok(JobSpec {
        label: label.unwrap_or(default_label),
        machine,
        kind,
        source,
        repeat,
        profile,
        trace_json,
    })
}

/// Materialises a job's program (reads and parses the file, or runs the
/// builtin generator).
///
/// # Errors
///
/// I/O, assembly-parse and program-build failures, tagged with the source.
pub fn resolve_program(source: &ProgramSource) -> Result<Program, ManifestError> {
    match source {
        ProgramSource::File(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| ManifestError::Program {
                source: path.clone(),
                message: e.to_string(),
            })?;
            cf_isa::parse_program(&text).map_err(|e| ManifestError::Program {
                source: path.clone(),
                message: e.to_string(),
            })
        }
        ProgramSource::Builtin { name, batch, order, size } => {
            let err = |message: String| ManifestError::Program { source: name.clone(), message };
            let ml_size = match size.as_str() {
                "paper" => MlSize::paper(),
                "small" => MlSize::small(),
                other => return Err(err(format!("unknown size `{other}` (small|paper)"))),
            };
            let built = match name.as_str() {
                "matmul" => return Ok(nets::matmul_program(*order)),
                "vgg16" => nets::build_program(&nets::vgg16(), *batch),
                "resnet152" => nets::build_program(&nets::resnet152(), *batch),
                "alexnet" => nets::build_program(&nets::alexnet(), *batch),
                "mlp3" => nets::build_program(&nets::mlp3(), *batch),
                "knn" => ml::knn_program(&ml_size, 5),
                "kmeans" => ml::kmeans_program(&ml_size),
                "svm" => ml::svm_program(&ml_size),
                other => return Err(err(format!("unknown workload `{other}`"))),
            };
            built.map_err(|e| err(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workload_line_with_defaults() {
        let jobs = parse_manifest("workload=vgg16 batch=2 repeat=3\n").unwrap();
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!(j.label, "vgg16");
        assert_eq!(j.machine, "f1");
        assert_eq!(j.kind, JobKind::Simulate);
        assert_eq!(j.repeat, 3);
        assert_eq!(
            j.source,
            ProgramSource::Builtin {
                name: "vgg16".into(),
                batch: 2,
                order: 256,
                size: "small".into()
            }
        );
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a comment\n\nworkload=matmul order=64 # trailing\n";
        let jobs = parse_manifest(text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs[0].source,
            ProgramSource::Builtin {
                name: "matmul".into(),
                batch: 1,
                order: 64,
                size: "small".into()
            }
        );
    }

    #[test]
    fn unknown_machine_lists_valid_names() {
        let err = parse_manifest("workload=matmul machine=f2\n").unwrap_err();
        assert_eq!(err.reason(), &ManifestError::UnknownMachine { name: "f2".into(), line: 1 });
        let msg = err.to_string();
        assert!(msg.contains("f1, f100, embedded, tiny"), "{msg}");
    }

    #[test]
    fn grammar_errors_carry_line_numbers() {
        assert_eq!(
            parse_manifest("workload=matmul\nbogus\n").unwrap_err().reason(),
            &ManifestError::UnknownKey { key: "bogus".into(), line: 2 }
        );
        assert_eq!(
            parse_manifest("workload=matmul repeat=x\n").unwrap_err().reason(),
            &ManifestError::BadValue { key: "repeat".into(), value: "x".into(), line: 1 }
        );
        assert_eq!(
            parse_manifest("machine=f1\n").unwrap_err().reason(),
            &ManifestError::BadSource { line: 1 }
        );
        assert_eq!(
            parse_manifest("workload=matmul program=x.cfasm\n").unwrap_err().reason(),
            &ManifestError::BadSource { line: 1 }
        );
        assert_eq!(
            parse_manifest("workload=nope\n").unwrap_err().reason(),
            &ManifestError::UnknownWorkload { name: "nope".into(), line: 1 }
        );
    }

    #[test]
    fn grammar_errors_carry_line_content() {
        let err = parse_manifest("workload=matmul\nworkload=matmul repeat=x # oops\n").unwrap_err();
        let ManifestError::BadLine { line, content, .. } = &err else {
            panic!("expected BadLine, got {err:?}");
        };
        assert_eq!(*line, 2);
        // Content is the line as parsed: comment stripped, trimmed.
        assert_eq!(content, "workload=matmul repeat=x");
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("workload=matmul repeat=x"), "{msg}");
    }

    #[test]
    fn duplicate_labels_are_rejected_with_both_lines() {
        // Same default label (the workload name) on lines 1 and 3.
        let err = parse_manifest("workload=matmul order=64\n# gap\nworkload=matmul order=128\n")
            .unwrap_err();
        assert_eq!(
            err.reason(),
            &ManifestError::DuplicateLabel { label: "matmul".into(), line: 3, previous: 1 }
        );
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("line 1"), "{msg}");
        assert!(msg.contains("duplicate label `matmul`"), "{msg}");

        // Distinct labels on the same workload are fine.
        let jobs =
            parse_manifest("workload=matmul order=64\nworkload=matmul order=128 label=big\n")
                .unwrap();
        assert_eq!(jobs.len(), 2);
    }

    #[test]
    fn exec_mode_carries_seed() {
        let jobs = parse_manifest("workload=knn mode=exec seed=7\n").unwrap();
        assert_eq!(jobs[0].kind, JobKind::Exec { seed: 7 });
    }

    #[test]
    fn profile_and_trace_json_parse() {
        let jobs = parse_manifest("workload=matmul order=64\n").unwrap();
        assert!(!jobs[0].profile && jobs[0].trace_json.is_none());

        let jobs = parse_manifest("workload=matmul order=64 profile=true\n").unwrap();
        assert!(jobs[0].profile);

        // trace_json implies profile.
        let jobs = parse_manifest("workload=matmul order=64 trace_json=/tmp/t.json\n").unwrap();
        assert!(jobs[0].profile);
        assert_eq!(jobs[0].trace_json.as_deref(), Some("/tmp/t.json"));

        assert_eq!(
            parse_manifest("workload=matmul profile=maybe\n").unwrap_err().reason(),
            &ManifestError::BadValue { key: "profile".into(), value: "maybe".into(), line: 1 }
        );
        // Profiling is a simulate-mode concept.
        assert_eq!(
            parse_manifest("workload=knn mode=exec profile=1\n").unwrap_err().reason(),
            &ManifestError::BadValue { key: "profile".into(), value: "exec".into(), line: 1 }
        );
    }

    #[test]
    fn builtin_programs_resolve() {
        for name in ["matmul", "mlp3", "knn", "kmeans"] {
            let source = ProgramSource::Builtin {
                name: name.into(),
                batch: 1,
                order: 64,
                size: "small".into(),
            };
            let program = resolve_program(&source).unwrap();
            assert!(!program.instructions().is_empty(), "{name}");
        }
    }

    #[test]
    fn machine_names_all_resolve() {
        for name in MACHINE_NAMES {
            assert!(machine_by_name(name).is_some(), "{name}");
        }
        assert!(machine_by_name("gpu").is_none());
    }
}
