//! The `RuntimeStats` registry: lock-free counters describing what the
//! runtime has done so far, readable at any time from any thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde_json::{Map, Serialize, Value};

/// Per-worker counters (one slot per pool thread).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Jobs this worker ran to completion (ok or error).
    pub jobs: AtomicU64,
    /// Nanoseconds this worker spent executing job bodies.
    pub busy_nanos: AtomicU64,
}

/// Aggregate counters for one [`Runtime`](crate::Runtime) instance.
///
/// All counters are monotonically increasing atomics; [`snapshot`] folds
/// them into a plain value for reporting.
///
/// [`snapshot`]: RuntimeStats::snapshot
#[derive(Debug)]
pub struct RuntimeStats {
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Jobs that ran and produced `Ok`.
    pub completed: AtomicU64,
    /// Jobs that ran and produced `Err` (including panicked bodies).
    pub failed: AtomicU64,
    /// Jobs cancelled before they started.
    pub cancelled: AtomicU64,
    /// Jobs whose deadline passed before a worker picked them up.
    pub expired: AtomicU64,
    /// Simulation jobs answered from the plan/report cache.
    pub cache_hits: AtomicU64,
    /// Simulation jobs that had to run the planner.
    pub cache_misses: AtomicU64,
    /// Cache hits whose checksum failed (entry dropped, job recomputed).
    pub cache_corruptions: AtomicU64,
    /// Supervised attempts that were retried after a transient failure.
    pub retries: AtomicU64,
    /// Jobs shed by the open circuit breaker.
    pub shed: AtomicU64,
    /// Submissions rejected by [`LoadPolicy`](crate::LoadPolicy)
    /// admission control.
    pub shed_jobs: AtomicU64,
    /// Jobs answered from a resume journal instead of re-running.
    pub resumed_jobs: AtomicU64,
    /// Bytes appended to the serve journal this run.
    pub journal_bytes: AtomicU64,
    /// Times the serve journal was compacted (resume + live).
    pub journal_compactions: AtomicU64,
    /// Bytes reclaimed from the serve journal by compaction.
    pub journal_bytes_reclaimed: AtomicU64,
    /// Shape-memo hits accumulated across cold (cache-miss / bypass)
    /// simulations — split decisions served from the planner's shape
    /// memo instead of recomputed.
    pub cold_memo_hits: AtomicU64,
    /// Shape-memo misses across cold simulations (decisions computed).
    pub cold_memo_misses: AtomicU64,
    /// High-water bytes of plan buffers retained by any one cold
    /// simulation's arena (a maximum, not a sum).
    pub cold_arena_bytes: AtomicU64,
    /// Cold subtrees fanned out to extra threads by parallel simulation.
    pub cold_parallel_tasks: AtomicU64,
    /// Faults the [`FaultPlan`](crate::FaultPlan) injected.
    pub faults_injected: AtomicU64,
    /// Worker loops respawned after an escaped panic.
    pub worker_respawns: AtomicU64,
    /// Jobs accepted through the HTTP job API (`POST /jobs`).
    pub api_accepted: AtomicU64,
    /// HTTP submissions shed at the front door with 503.
    pub api_shed: AtomicU64,
    /// HTTP submissions coalesced onto an identical in-flight job.
    pub api_coalesced: AtomicU64,
    /// Result bytes streamed to HTTP clients by `GET /jobs/<id>`.
    pub api_streamed_bytes: AtomicU64,
    /// Total nanoseconds jobs waited in the queue before starting.
    pub queue_wait_nanos: AtomicU64,
    /// Gauge: jobs accepted into the queue and not yet terminal.
    pub in_flight: AtomicU64,
    /// Gauge: estimated bytes of queued, not-yet-started work.
    pub queued_bytes: AtomicU64,
    /// Per-worker slots, fixed at pool construction.
    pub workers: Vec<WorkerStats>,
    started: Instant,
}

impl RuntimeStats {
    /// A zeroed registry for a pool of `workers` threads.
    pub fn new(workers: usize) -> Self {
        RuntimeStats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_corruptions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_jobs: AtomicU64::new(0),
            resumed_jobs: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            journal_compactions: AtomicU64::new(0),
            journal_bytes_reclaimed: AtomicU64::new(0),
            cold_memo_hits: AtomicU64::new(0),
            cold_memo_misses: AtomicU64::new(0),
            cold_arena_bytes: AtomicU64::new(0),
            cold_parallel_tasks: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            api_accepted: AtomicU64::new(0),
            api_shed: AtomicU64::new(0),
            api_coalesced: AtomicU64::new(0),
            api_streamed_bytes: AtomicU64::new(0),
            queue_wait_nanos: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queued_bytes: AtomicU64::new(0),
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
            started: Instant::now(),
        }
    }

    /// Folds one cold simulation's planner instrumentation into the
    /// registry: hits/misses/fan-out accumulate, arena bytes keep the
    /// maximum (it is a per-run high-water mark, not a flow).
    pub(crate) fn record_cold(&self, cold: &cf_core::perf::ColdStats) {
        self.cold_memo_hits.fetch_add(cold.shape_memo_hits, Ordering::Relaxed);
        self.cold_memo_misses.fetch_add(cold.shape_memo_misses, Ordering::Relaxed);
        self.cold_arena_bytes.fetch_max(cold.arena_bytes, Ordering::Relaxed);
        self.cold_parallel_tasks.fetch_add(cold.parallel_tasks, Ordering::Relaxed);
    }

    /// Records one finished job body on worker `worker`.
    pub(crate) fn record_run(&self, worker: usize, busy: Duration, ok: bool) {
        let w = &self.workers[worker];
        w.jobs.fetch_add(1, Ordering::Relaxed);
        w.busy_nanos.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let per_worker: Vec<WorkerSnapshot> = self
            .workers
            .iter()
            .map(|w| WorkerSnapshot {
                jobs: w.jobs.load(Ordering::Relaxed),
                busy: Duration::from_nanos(w.busy_nanos.load(Ordering::Relaxed)),
            })
            .collect();
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_corruptions: self.cache_corruptions.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            shed_jobs: self.shed_jobs.load(Ordering::Relaxed),
            resumed_jobs: self.resumed_jobs.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            journal_compactions: self.journal_compactions.load(Ordering::Relaxed),
            journal_bytes_reclaimed: self.journal_bytes_reclaimed.load(Ordering::Relaxed),
            cold_memo_hits: self.cold_memo_hits.load(Ordering::Relaxed),
            cold_memo_misses: self.cold_memo_misses.load(Ordering::Relaxed),
            cold_arena_bytes: self.cold_arena_bytes.load(Ordering::Relaxed),
            cold_parallel_tasks: self.cold_parallel_tasks.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            api_accepted: self.api_accepted.load(Ordering::Relaxed),
            api_shed: self.api_shed.load(Ordering::Relaxed),
            api_coalesced: self.api_coalesced.load(Ordering::Relaxed),
            api_streamed_bytes: self.api_streamed_bytes.load(Ordering::Relaxed),
            queue_wait: Duration::from_nanos(self.queue_wait_nanos.load(Ordering::Relaxed)),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queued_bytes: self.queued_bytes.load(Ordering::Relaxed),
            spans_dropped: 0,
            uptime: self.started.elapsed(),
            per_worker,
        }
    }
}

/// Plain-value view of [`RuntimeStats`]; see [`RuntimeStats::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs finished with `Ok`.
    pub completed: u64,
    /// Jobs finished with `Err`.
    pub failed: u64,
    /// Jobs cancelled before starting.
    pub cancelled: u64,
    /// Jobs that missed their deadline in the queue.
    pub expired: u64,
    /// Plan/report cache hits.
    pub cache_hits: u64,
    /// Plan/report cache misses.
    pub cache_misses: u64,
    /// Checksum-detected corrupt cache hits (recomputed).
    pub cache_corruptions: u64,
    /// Retried supervised attempts.
    pub retries: u64,
    /// Jobs shed by the open circuit breaker.
    pub shed: u64,
    /// Submissions rejected by admission control.
    pub shed_jobs: u64,
    /// Jobs answered from a resume journal.
    pub resumed_jobs: u64,
    /// Bytes appended to the serve journal this run.
    pub journal_bytes: u64,
    /// Times the serve journal was compacted (resume + live).
    pub journal_compactions: u64,
    /// Bytes reclaimed from the serve journal by compaction.
    pub journal_bytes_reclaimed: u64,
    /// Shape-memo hits across cold simulations.
    pub cold_memo_hits: u64,
    /// Shape-memo misses across cold simulations.
    pub cold_memo_misses: u64,
    /// High-water arena bytes of any one cold simulation.
    pub cold_arena_bytes: u64,
    /// Cold subtrees fanned out to extra threads.
    pub cold_parallel_tasks: u64,
    /// Faults injected by the fault plan.
    pub faults_injected: u64,
    /// Worker loops respawned after an escaped panic.
    pub worker_respawns: u64,
    /// Jobs accepted through the HTTP job API.
    pub api_accepted: u64,
    /// HTTP submissions shed at the front door with 503.
    pub api_shed: u64,
    /// HTTP submissions coalesced onto an identical in-flight job.
    pub api_coalesced: u64,
    /// Result bytes streamed to HTTP clients.
    pub api_streamed_bytes: u64,
    /// Cumulative queue waiting time across jobs.
    pub queue_wait: Duration,
    /// Gauge at snapshot time: accepted-but-unfinished jobs.
    pub in_flight: u64,
    /// Gauge at snapshot time: estimated bytes of queued work.
    pub queued_bytes: u64,
    /// Span events dropped from the observability ring buffer under
    /// pressure. [`RuntimeStats::snapshot`] sets this to 0 — the registry
    /// does not own the tracer — and holders of both (the serve engine,
    /// the `Obs` hub) overwrite it from
    /// [`Tracer::dropped`](crate::obs::Tracer::dropped).
    pub spans_dropped: u64,
    /// Time since the runtime started.
    pub uptime: Duration,
    /// Per-worker job/busy counters.
    pub per_worker: Vec<WorkerSnapshot>,
}

/// Counters for one [`Router`](crate::router::Router) instance — the
/// fleet-level analogue of [`RuntimeStats`]. All monotonically
/// increasing atomics; the router renders them into its `/stats` JSON
/// and `cf_router_*` Prometheus series.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Jobs accepted and routed to a backend.
    pub routed: AtomicU64,
    /// Finished records streamed back through the router.
    pub records_streamed: AtomicU64,
    /// Requests failed over to another ring replica.
    pub failovers: AtomicU64,
    /// Hedged duplicate requests fired past the latency quantile.
    pub hedges: AtomicU64,
    /// Hedged duplicates that answered before the primary.
    pub hedge_wins: AtomicU64,
    /// Backends ejected by the health prober.
    pub ejections: AtomicU64,
    /// Ejected backends re-admitted after consecutive healthy probes.
    pub readmissions: AtomicU64,
    /// Health probes that failed (503 / timeout / connect error).
    pub probe_failures: AtomicU64,
    /// Backend responses rejected for a digest mismatch — the
    /// `X-CF-Digest` header or the per-record digest field. Corrupt
    /// payloads never reach a client; they count here and fail over.
    pub corrupt_responses: AtomicU64,
    /// Backends moved to `quarantined` after repeated corrupt responses.
    pub quarantines: AtomicU64,
    /// Finished records that carried an `X-CF-Attribution` breakdown
    /// (the denominator for the `attr_*` sums below).
    pub attr_records: AtomicU64,
    /// Sum of backend-reported end-to-end job time (`total_us`).
    pub attr_total_us: AtomicU64,
    /// Sum of backend admission-control time (`admission_us`).
    pub attr_admission_us: AtomicU64,
    /// Sum of backend queue-wait time (`queue_us`).
    pub attr_queue_us: AtomicU64,
    /// Sum of backend simulate/execute time (`run_us`).
    pub attr_run_us: AtomicU64,
    /// Sum of router-measured network time (submit + poll dials and
    /// transfers, `net_*_us` — overhead outside the backend's total).
    pub attr_net_us: AtomicU64,
    /// Sum of router-side retry/resubmit backoff sleeps (`backoff_us`).
    pub attr_backoff_us: AtomicU64,
}

/// One worker's share of a [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Jobs the worker ran.
    pub jobs: u64,
    /// Time the worker spent in job bodies.
    pub busy: Duration,
}

impl StatsSnapshot {
    /// Jobs that reached a terminal state.
    pub fn finished(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.expired
    }

    /// Completed jobs per second of runtime uptime.
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Cache hits as a fraction of all cache-eligible jobs (0 when none
    /// ran yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Aggregate busy time across workers.
    pub fn total_busy(&self) -> Duration {
        self.per_worker.iter().map(|w| w.busy).sum()
    }

    /// Renders the snapshot as one JSON object (for `--stats-json` and
    /// `/stats`) — [`Serialize::to_value`] printed compactly, so every
    /// consumer shares one schema.
    ///
    /// Durations are seconds as JSON numbers; `shed_breaker` is the
    /// circuit-breaker shed count, `shed_jobs` the admission-control one.
    pub fn render_json(&self) -> String {
        serde_json::to_string(self)
    }
}

impl Serialize for WorkerSnapshot {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("jobs", self.jobs);
        m.insert("busy_s", self.busy.as_secs_f64());
        Value::Object(m)
    }
}

impl Serialize for StatsSnapshot {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("submitted", self.submitted);
        m.insert("completed", self.completed);
        m.insert("failed", self.failed);
        m.insert("cancelled", self.cancelled);
        m.insert("expired", self.expired);
        m.insert("cache_hits", self.cache_hits);
        m.insert("cache_misses", self.cache_misses);
        m.insert("cache_corruptions", self.cache_corruptions);
        m.insert("retries", self.retries);
        m.insert("shed_breaker", self.shed);
        m.insert("shed_jobs", self.shed_jobs);
        m.insert("resumed_jobs", self.resumed_jobs);
        m.insert("journal_bytes", self.journal_bytes);
        m.insert("journal_compactions", self.journal_compactions);
        m.insert("journal_bytes_reclaimed", self.journal_bytes_reclaimed);
        m.insert("cold_memo_hits", self.cold_memo_hits);
        m.insert("cold_memo_misses", self.cold_memo_misses);
        m.insert("cold_arena_bytes", self.cold_arena_bytes);
        m.insert("cold_parallel_tasks", self.cold_parallel_tasks);
        m.insert("faults_injected", self.faults_injected);
        m.insert("worker_respawns", self.worker_respawns);
        m.insert("api_accepted", self.api_accepted);
        m.insert("api_shed", self.api_shed);
        m.insert("api_coalesced", self.api_coalesced);
        m.insert("api_streamed_bytes", self.api_streamed_bytes);
        m.insert("spans_dropped", self.spans_dropped);
        m.insert("queue_wait_s", self.queue_wait.as_secs_f64());
        m.insert("in_flight", self.in_flight);
        m.insert("queued_bytes", self.queued_bytes);
        m.insert("uptime_s", self.uptime.as_secs_f64());
        m.insert("workers", self.per_worker.to_value());
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_derived_metrics() {
        let stats = RuntimeStats::new(2);
        stats.submitted.fetch_add(4, Ordering::Relaxed);
        stats.record_run(0, Duration::from_millis(10), true);
        stats.record_run(1, Duration::from_millis(30), true);
        stats.record_run(1, Duration::from_millis(5), false);
        stats.cache_hits.fetch_add(3, Ordering::Relaxed);
        stats.cache_misses.fetch_add(1, Ordering::Relaxed);

        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 4);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.finished(), 3);
        assert_eq!(snap.per_worker.len(), 2);
        assert_eq!(snap.per_worker[1].jobs, 2);
        assert!((snap.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(snap.total_busy(), Duration::from_millis(45));
        assert!(snap.throughput_jobs_per_sec() >= 0.0);
    }

    #[test]
    fn render_json_is_one_object_with_new_counters() {
        let stats = RuntimeStats::new(1);
        stats.shed_jobs.fetch_add(2, Ordering::Relaxed);
        stats.resumed_jobs.fetch_add(3, Ordering::Relaxed);
        stats.journal_bytes.fetch_add(512, Ordering::Relaxed);
        stats.journal_compactions.fetch_add(1, Ordering::Relaxed);
        stats.journal_bytes_reclaimed.fetch_add(128, Ordering::Relaxed);
        stats.in_flight.fetch_add(4, Ordering::Relaxed);
        stats.queued_bytes.fetch_add(64, Ordering::Relaxed);
        stats.api_accepted.fetch_add(5, Ordering::Relaxed);
        stats.api_shed.fetch_add(1, Ordering::Relaxed);
        stats.api_coalesced.fetch_add(2, Ordering::Relaxed);
        stats.api_streamed_bytes.fetch_add(256, Ordering::Relaxed);
        stats.record_cold(&cf_core::perf::ColdStats {
            shape_memo_hits: 9,
            shape_memo_misses: 4,
            arena_bytes: 1024,
            parallel_tasks: 3,
        });
        stats.record_cold(&cf_core::perf::ColdStats {
            shape_memo_hits: 1,
            shape_memo_misses: 1,
            arena_bytes: 512, // smaller high-water: the max must stick
            parallel_tasks: 0,
        });
        let json = stats.snapshot().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"shed_jobs\":2"), "{json}");
        assert!(json.contains("\"api_accepted\":5"), "{json}");
        assert!(json.contains("\"api_shed\":1"), "{json}");
        assert!(json.contains("\"api_coalesced\":2"), "{json}");
        assert!(json.contains("\"api_streamed_bytes\":256"), "{json}");
        assert!(json.contains("\"resumed_jobs\":3"), "{json}");
        assert!(json.contains("\"journal_bytes\":512"), "{json}");
        assert!(json.contains("\"journal_compactions\":1"), "{json}");
        assert!(json.contains("\"journal_bytes_reclaimed\":128"), "{json}");
        assert!(json.contains("\"cold_memo_hits\":10"), "{json}");
        assert!(json.contains("\"cold_memo_misses\":5"), "{json}");
        assert!(json.contains("\"cold_arena_bytes\":1024"), "{json}");
        assert!(json.contains("\"cold_parallel_tasks\":3"), "{json}");
        assert!(json.contains("\"in_flight\":4"), "{json}");
        assert!(json.contains("\"queued_bytes\":64"), "{json}");
        assert!(json.contains("\"workers\":[{"), "{json}");
    }

    #[test]
    fn render_json_parses_and_carries_spans_dropped() {
        let stats = RuntimeStats::new(2);
        let mut snap = stats.snapshot();
        snap.spans_dropped = 7;
        let json = snap.render_json();
        let v = serde_json::from_str(&json).unwrap_or_else(|e| panic!("{e}: {json}"));
        assert_eq!(v.get("spans_dropped").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("workers").and_then(Value::as_array).map(<[Value]>::len), Some(2));
        assert!(v.get("queue_wait_s").and_then(Value::as_f64).is_some());
        assert!(v.get("uptime_s").and_then(Value::as_f64).is_some());
    }

    #[test]
    fn empty_rates_are_zero() {
        let snap = RuntimeStats::new(1).snapshot();
        assert_eq!(snap.cache_hit_rate(), 0.0);
        assert_eq!(snap.finished(), 0);
    }
}
