//! `cf-runtime` — a concurrent simulation-service runtime for the
//! Cambricon-F reproduction.
//!
//! The simulator crates (`cf-core`, `cf-model`) are synchronous,
//! single-job libraries. This crate turns them into a *service*:
//!
//! * [`Runtime`] — a bounded submission queue feeding a `std::thread`
//!   worker pool; every submission returns a [`JobHandle`] with
//!   deadlines, cancellation and graceful shutdown.
//! * [`PlanCache`] — an LRU over finished [`PerfReport`]s keyed by
//!   `(machine fingerprint, program content hash)`, so repeated
//!   simulations of the same workload skip the fractal planner and
//!   pipeline model entirely. Simulation is a pure function of machine
//!   structure and program content, which is what makes the cache exact;
//!   functional execution is not (it reads memory contents) and bypasses
//!   the cache — see DESIGN.md §6.
//! * [`batch`] — fan-out helpers for design-space sweeps
//!   ([`batch::sweep_designs`]) and labelled job suites
//!   ([`batch::run_batch`], used by the experiment harness).
//! * [`manifest`] — the `cfserve` job-manifest grammar and builtin
//!   workload registry.
//! * [`serve`] — the manifest-serving engine shared by the `cfserve`
//!   binary and the chaos tests: resolve, submit, join in submission
//!   order, render deterministic JSON records.
//! * [`journal`] — a crash-consistent write-ahead journal for serve
//!   runs: fsync'd, checksummed JSONL records that let
//!   `cfserve --journal run.wal --resume` skip already-completed jobs
//!   and merge their recorded outputs byte-identically. Paired with
//!   [`LoadPolicy`] admission control (immediate [`JobError::Shed`]
//!   instead of unbounded queueing). See DESIGN.md §7.
//! * [`RuntimeStats`] — lock-free counters (submissions, completions,
//!   cache hits, retries, injected faults, queue wait, per-worker busy
//!   time) snapshotted on demand.
//! * [`fault`] / [`supervisor`] — the resilience layer: a seeded,
//!   deterministic [`FaultPlan`] injecting panics, latency, cache
//!   corruption, deadline expiries and DMA faults; retry-with-backoff
//!   under a budget; a consecutive-failure [`CircuitBreaker`]; worker
//!   respawn on panic. See DESIGN.md §7.
//! * [`obs`] / [`status`] — the observability layer: a lock-cheap
//!   [`Tracer`] (span ring buffer + per-stage latency histograms,
//!   off by default), the [`Obs`] hub publishing live stats and
//!   admission headroom, and a dependency-free HTTP/1.1
//!   [`StatusServer`] exposing `/healthz`, `/stats`, `/trace`,
//!   `/version` and a Prometheus `/metrics` text exposition
//!   ([`metrics`], with simulator profile aggregates from
//!   `profile=true` manifest jobs) (`cfserve --status-port`). Journal
//!   files past a size threshold are compacted — superseded/failed
//!   records dropped, checksummed framing preserved — on resume and
//!   during live runs. See DESIGN.md §8.
//! * [`api`] — the HTTP job subsystem behind `POST /jobs`: JSON job
//!   specs accepted over the status listener, journaled durably
//!   *before* the id is acknowledged, coalesced across requests by
//!   plan-cache identity, shed at the front door under overload
//!   (`503` + `Retry-After`), and streamed back from
//!   `GET /jobs/<id>` byte-identically to the manifest serving path.
//!   See DESIGN.md §9.
//! * [`router`] — the fleet layer: a consistent-hash [`Router`] front
//!   door (`cfrouter`) sharding jobs by plan-cache fingerprint across
//!   N `cfserve` backends, with a background health prober
//!   (eject/readmit), failover to ring replicas with bounded backoff,
//!   hedged duplicates past a latency quantile, per-backend circuit
//!   breakers, and fleet-aggregated `/metrics`; `cfserve` pairs it with
//!   a graceful drain path (SIGTERM / `POST /drain`). One fleet is one
//!   more fractal level, with the router as the parent node. See
//!   DESIGN.md §10.
//! * [`netfault`] — deterministic *network* chaos paired with
//!   end-to-end record integrity: a seeded [`NetFaultPlan`] (the wire
//!   sibling of [`FaultPlan`]) injects connect refusals, stalls,
//!   slow-loris trickle, mid-body tears, garbage status lines and
//!   single-byte corruption — either in-process behind the router's
//!   [`Connector`] seam or as a standalone byte-level [`FaultProxy`]
//!   (`cfrouter --fault-proxy`). Backends stamp every response with an
//!   `X-CF-Digest` header and every record with a digest field
//!   ([`serve::verify_record_json`]); the router rejects mismatches and
//!   quarantines repeat offenders. See DESIGN.md §11.
//! * [`trace`] — fleet-wide distributed tracing: the router mints a
//!   [`TraceContext`] per accepted job and propagates it as the
//!   `X-CF-Trace` header; backends attach it to their span ring so
//!   `GET /trace/<trace-id>` on the router can assemble one merged,
//!   causally-ordered Chrome trace across every process, and finished
//!   records carry an [`Attribution`] latency breakdown feeding the
//!   router's `cf_slo_*` burn-rate series. See DESIGN.md §16.
//!
//! # Example
//!
//! ```
//! use cf_runtime::{Runtime, RuntimeConfig};
//! use cf_core::MachineConfig;
//! use cf_workloads::nets;
//! use std::sync::Arc;
//!
//! let runtime = Runtime::new(RuntimeConfig { workers: 2, ..Default::default() });
//! let program = Arc::new(nets::matmul_program(128));
//!
//! // Submit the same workload twice: the second run is a cache hit and
//! // returns the identical report.
//! let a = runtime.submit_simulate(MachineConfig::cambricon_f1(), Arc::clone(&program));
//! let b = runtime.submit_simulate(MachineConfig::cambricon_f1(), program);
//! let (a, b) = (a.join().unwrap(), b.join().unwrap());
//! assert_eq!(a.report, b.report);
//! ```
//!
//! [`PerfReport`]: cf_core::PerfReport

#![warn(missing_docs)]

pub mod api;
pub mod batch;
pub mod cache;
pub mod fault;
pub mod job;
pub mod journal;
pub mod manifest;
pub mod metrics;
pub mod netfault;
pub mod obs;
pub mod router;
pub mod scheduler;
pub mod serve;
pub mod stats;
pub mod status;
pub mod supervisor;
pub(crate) mod sync;
pub mod trace;

pub use api::{ApiResume, HttpParseError, HttpRequest, JobApi, JobWait, SubmitError, SubmitOk};
pub use cache::{report_checksum, CacheKey, CacheLookup, PlanCache};
pub use fault::{FaultPlan, FaultSite, FaultSpec};
pub use job::{JobError, JobHandle, JobOptions};
pub use journal::{
    CompactionStats, JobEntry, Journal, JournalError, Record, RecordError, RunHeader,
};
pub use netfault::{
    FaultConnector, FaultProxy, NetFault, NetFaultPlan, NetFaultSite, NetFaultSpec,
};
pub use obs::{LatencyHistogram, Obs, ProfileAgg, SpanEvent, SpanKind, Stage, Tracer};
pub use router::{
    BackendHealth, CancelSlot, Connector, Ring, Router, RouterConfig, RouterServer, TcpConnector,
};
pub use scheduler::{ExecResult, LoadPolicy, ProfiledSimResult, Runtime, RuntimeConfig, SimResult};
pub use serve::{
    JobOutput, JobRecord, JournalOptions, ServeError, ServeOptions, ServeReport,
    DEFAULT_COMPACT_THRESHOLD,
};
pub use stats::{RouterStats, RuntimeStats, StatsSnapshot, WorkerSnapshot};
pub use status::StatusServer;
pub use supervisor::{next_retry, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use trace::{Attribution, TraceContext, ATTRIBUTION_HEADER, TRACE_HEADER};
