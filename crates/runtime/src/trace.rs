//! Distributed trace contexts: the fleet-wide identity a job carries
//! across process boundaries.
//!
//! A [`TraceContext`] is a W3C-traceparent-shaped triple — a 128-bit
//! trace id naming one end-to-end story, a 64-bit span id naming one
//! actor's chapter of it, and (optionally) the parent span that caused
//! this one. The router mints a fresh context per accepted `POST /jobs`
//! and propagates it to the owning backend as the
//! [`TRACE_HEADER`] (`X-CF-Trace`) request header; every failover
//! retry, hedged duplicate and poll-failure resubmission derives its
//! own [`child`](TraceContext::child) span (labelled with its *cause*),
//! so the backend's scheduler/cache/journal spans — attached to the
//! incoming context by [`Tracer::attach`](crate::obs::Tracer::attach) —
//! parent cleanly under the exact attempt that carried them.
//!
//! Propagation rules (DESIGN.md §16):
//!
//! 1. The **router** mints the root context per accepted submission and
//!    sends each delivery *attempt* a distinct child span id.
//! 2. A **backend** receiving `X-CF-Trace` derives one child per
//!    accepted job and attaches it to its span ring keyed by the
//!    scheduler token; a backend receiving no header mints its own
//!    root, so a lone `cfserve` traces the same way a fleet does.
//! 3. Responses echo the context back (`X-CF-Trace` on the `202` and
//!    on `GET /jobs/<id>`), and finished records additionally carry
//!    the [`ATTRIBUTION_HEADER`] latency breakdown. Both ride as HTTP
//!    headers — never in record bodies, which stay byte-identical to a
//!    fleet-less run.
//!
//! The wire encoding is strict on purpose:
//! `<32 hex trace-id>-<16 hex span-id>[-<16 hex parent-span-id>]`, all
//! three values nonzero. [`TraceContext::parse`] rejects anything else
//! without panicking (property-tested in `tests/trace_props.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The HTTP request/response header carrying a [`TraceContext`].
pub const TRACE_HEADER: &str = "X-CF-Trace";

/// The HTTP response header carrying a finished job's [`Attribution`].
pub const ATTRIBUTION_HEADER: &str = "X-CF-Attribution";

/// One hop of a distributed trace: which story (`trace_id`), which
/// chapter (`span_id`), and which chapter caused it (`parent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The 128-bit end-to-end trace identity (nonzero).
    pub trace_id: u128,
    /// This hop's 64-bit span identity (nonzero).
    pub span_id: u64,
    /// The causing span, when this hop has one (nonzero when present).
    pub parent: Option<u64>,
}

/// Why a `X-CF-Trace` header value failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceParseError(&'static str);

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad trace context: {}", self.0)
    }
}

impl std::error::Error for TraceParseError {}

/// Process-wide mint counter: guarantees distinct ids even when two
/// mints land on the same clock nanosecond.
static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// SplitMix64: the id mixer (full-period, avalanching; no RNG crate
/// needed on the job path).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fresh mint entropy: wall-clock nanos, a process-wide counter and the
/// pid, so concurrent mints in one process and simultaneous mints in
/// two processes both diverge.
fn entropy() -> u64 {
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0x5EED);
    let count = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
    nanos ^ count.rotate_left(32) ^ u64::from(std::process::id()).rotate_left(48)
}

/// Mixes `seed` into a nonzero 64-bit id.
fn nonzero_id(seed: u64) -> u64 {
    let mut x = splitmix64(seed);
    if x == 0 {
        x = 1;
    }
    x
}

impl TraceContext {
    /// Mints a fresh root context (no parent).
    pub fn mint() -> TraceContext {
        let e = entropy();
        let hi = splitmix64(e);
        let lo = splitmix64(e ^ 0xA5A5_5A5A_C3C3_3C3C);
        let mut trace_id = (u128::from(hi) << 64) | u128::from(lo);
        if trace_id == 0 {
            trace_id = 1;
        }
        TraceContext { trace_id, span_id: nonzero_id(hi ^ lo.rotate_left(17)), parent: None }
    }

    /// Derives a child span of this context: same trace, fresh span id,
    /// parent pointing back here.
    pub fn child(&self) -> TraceContext {
        let seed = entropy() ^ self.span_id ^ (self.trace_id as u64);
        TraceContext {
            trace_id: self.trace_id,
            span_id: nonzero_id(seed),
            parent: Some(self.span_id),
        }
    }

    /// The strict wire form:
    /// `<32 hex trace-id>-<16 hex span-id>[-<16 hex parent>]`.
    pub fn encode(&self) -> String {
        match self.parent {
            Some(p) => format!("{:032x}-{:016x}-{:016x}", self.trace_id, self.span_id, p),
            None => format!("{:032x}-{:016x}", self.trace_id, self.span_id),
        }
    }

    /// Parses the wire form back. Strict: exactly 2 or 3 `-`-separated
    /// fields of exactly 32/16/16 hex digits, every value nonzero.
    /// Never panics — malformed input is an `Err`, not a crash
    /// (property-tested).
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] naming the first grammar rule the input broke.
    pub fn parse(s: &str) -> Result<TraceContext, TraceParseError> {
        let mut parts = s.split('-');
        let trace_part = parts.next().unwrap_or("");
        let Some(span_part) = parts.next() else {
            return Err(TraceParseError("expected <trace>-<span>[-<parent>]"));
        };
        let parent_part = parts.next();
        if parts.next().is_some() {
            return Err(TraceParseError("too many fields"));
        }
        let trace_id = parse_hex_u128(trace_part)?;
        let span_id = parse_hex_u64(span_part)?;
        let parent = parent_part.map(parse_hex_u64).transpose()?;
        if trace_id == 0 {
            return Err(TraceParseError("trace id must be nonzero"));
        }
        if span_id == 0 || parent == Some(0) {
            return Err(TraceParseError("span id must be nonzero"));
        }
        Ok(TraceContext { trace_id, span_id, parent })
    }
}

fn parse_hex_u128(s: &str) -> Result<u128, TraceParseError> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(TraceParseError("trace id must be 32 hex digits"));
    }
    u128::from_str_radix(s, 16).map_err(|_| TraceParseError("trace id must be 32 hex digits"))
}

fn parse_hex_u64(s: &str) -> Result<u64, TraceParseError> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(TraceParseError("span id must be 16 hex digits"));
    }
    u64::from_str_radix(s, 16).map_err(|_| TraceParseError("span id must be 16 hex digits"))
}

// ---------------------------------------------------------------------------
// Latency attribution
// ---------------------------------------------------------------------------

/// The `total_us` attribution key: the job's measured accept→settle
/// end-to-end latency on its backend.
pub const TOTAL_KEY: &str = "total_us";

/// A finished job's latency breakdown: ordered `key=value` components,
/// carried on the [`ATTRIBUTION_HEADER`] response header (never in the
/// record body, which stays byte-identical across fleet shapes).
///
/// Key conventions:
///
/// * `total_us` — the backend-measured accept→settle wall time.
/// * *Execution* components (`admission_us`, `queue_us`, `run_us`,
///   `other_us`, …) decompose `total_us`; the backend computes
///   `other_us` as the unattributed remainder, so
///   [`execution_sum_us`](Attribution::execution_sum_us) equals
///   `total_us` by construction.
/// * `net_*_us` / `backoff_us` — router-side network and retry overhead
///   *outside* the job's execution window (informational; excluded from
///   the execution sum).
/// * Keys not ending in `_us` (e.g. `cached=0|1`) are flags, not
///   durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    components: Vec<(String, u64)>,
}

impl Attribution {
    /// An empty breakdown.
    pub fn new() -> Attribution {
        Attribution::default()
    }

    /// Appends one component (last write wins on
    /// [`get`](Attribution::get) lookups of duplicate keys).
    pub fn push(&mut self, key: &str, value: u64) {
        self.components.push((key.to_string(), value));
    }

    /// The last value recorded under `key`.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.components.iter().rev().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// All components in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.components.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The `total_us` component (0 when absent).
    pub fn total_us(&self) -> u64 {
        self.get(TOTAL_KEY).unwrap_or(0)
    }

    /// Sum of the *execution* duration components: every `_us` key
    /// except `total_us` and the router-overhead `net_*` / `backoff_*`
    /// families. Equals `total_us` by construction on records the
    /// backend stamped (the `other_us` remainder closes the gap).
    pub fn execution_sum_us(&self) -> u64 {
        self.components
            .iter()
            .filter(|(k, _)| {
                k.ends_with("_us")
                    && k != TOTAL_KEY
                    && !k.starts_with("net_")
                    && !k.starts_with("backoff")
            })
            .map(|&(_, v)| v)
            .sum()
    }

    /// The `key=value,key=value` header form.
    pub fn encode(&self) -> String {
        let parts: Vec<String> = self.components.iter().map(|(k, v)| format!("{k}={v}")).collect();
        parts.join(",")
    }

    /// Parses the header form back; `None` for anything that is not a
    /// comma-separated list of `ident=uint` pairs.
    pub fn parse(s: &str) -> Option<Attribution> {
        let mut out = Attribution::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=')?;
            let key = key.trim();
            if key.is_empty() || !key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
                return None;
            }
            out.push(key, value.trim().parse().ok()?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_nonzero_and_distinct() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert_eq!(a.parent, None);
        assert_ne!((a.trace_id, a.span_id), (b.trace_id, b.span_id));
    }

    #[test]
    fn child_keeps_the_trace_and_points_back() {
        let root = TraceContext::mint();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent, Some(root.span_id));
        assert_ne!(child.span_id, root.span_id);
        let grand = child.child();
        assert_eq!(grand.parent, Some(child.span_id));
    }

    #[test]
    fn encode_parse_round_trips() {
        for ctx in [
            TraceContext { trace_id: 1, span_id: 2, parent: None },
            TraceContext { trace_id: u128::MAX, span_id: u64::MAX, parent: Some(7) },
            TraceContext::mint(),
            TraceContext::mint().child(),
        ] {
            let encoded = ctx.encode();
            assert_eq!(TraceContext::parse(&encoded), Ok(ctx), "{encoded}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "-",
            "abc",
            "zz",
            &"0".repeat(32),                                   // lone trace id
            &format!("{}-{}", "0".repeat(32), "0".repeat(16)), // zero ids
            &format!("{}-{}", "1".repeat(31), "2".repeat(16)), // short trace
            &format!("{}-{}", "1".repeat(33), "2".repeat(16)), // long trace
            &format!("{}-{}", "1".repeat(32), "2".repeat(15)), // short span
            &format!("{}-{}-{}", "1".repeat(32), "2".repeat(16), "0".repeat(16)), // zero parent
            &format!("{}-{}-{}-{}", "1".repeat(32), "2".repeat(16), "3".repeat(16), "4".repeat(16)),
            &format!("{}-{}", "g".repeat(32), "2".repeat(16)), // non-hex
        ] {
            assert!(TraceContext::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Uppercase hex is accepted (header values survive proxies that
        // normalise case); it re-encodes lowercase.
        let upper = format!("{}-{}", "A".repeat(32), "B".repeat(16));
        let ctx = TraceContext::parse(&upper).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(ctx.encode(), upper.to_lowercase());
    }

    #[test]
    fn attribution_round_trips_and_sums_execution_components() {
        let mut a = Attribution::new();
        a.push(TOTAL_KEY, 1000);
        a.push("admission_us", 100);
        a.push("queue_us", 300);
        a.push("run_us", 500);
        a.push("other_us", 100);
        a.push("cached", 1);
        a.push("net_submit_us", 40);
        a.push("backoff_us", 10);
        assert_eq!(a.total_us(), 1000);
        assert_eq!(a.execution_sum_us(), 1000, "net_/backoff_/flags are excluded");
        let encoded = a.encode();
        assert_eq!(Attribution::parse(&encoded), Some(a), "{encoded}");
        assert!(Attribution::parse("queue_us=abc").is_none());
        assert!(Attribution::parse("=1").is_none());
        assert!(Attribution::parse("k v=1").is_none());
        assert_eq!(Attribution::parse(""), Some(Attribution::new()));
    }
}
