//! Prometheus text-exposition rendering for the `/metrics` endpoint.
//!
//! One renderer turns a [`StatsSnapshot`], the run's [`LoadPolicy`] and
//! the live [`Tracer`] (latency histograms, span-drop counter, simulator
//! profile aggregate) into the Prometheus text format, version 0.0.4:
//!
//! * every series carries the `cf_` prefix and an `instance` label;
//! * counters end in `_total`, durations are seconds, sizes are bytes;
//! * histograms use cumulative `le` buckets derived from the tracer's
//!   power-of-two-microsecond buckets, closed by `+Inf`;
//! * simulator profile series add `machine`, `level` and `stage` labels.
//!
//! `# HELP` and `# TYPE` headers are emitted for every family even when
//! it currently has no samples, so scrapes are schema-stable across the
//! lifetime of a run. See DESIGN.md §8 for the naming convention.

use crate::obs::{Tracer, HISTOGRAM_BUCKETS, STAGES};
use crate::scheduler::LoadPolicy;
use crate::stats::StatsSnapshot;

/// Escapes a label value per the exposition format (`\` → `\\`,
/// `"` → `\"`, newline → `\n`).
fn label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Appends one sample line: `name{labels} value`.
fn sample_line(out: &mut String, name: &str, labels: &[(&str, &str)], value: &str) {
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", label_escape(v)));
    }
    out.push_str(&format!("}} {value}\n"));
}

/// One metric family under construction.
struct Family<'a> {
    out: &'a mut String,
    name: &'static str,
}

impl<'a> Family<'a> {
    /// Opens a family: writes its `# HELP` and `# TYPE` headers.
    fn new(out: &'a mut String, name: &'static str, kind: &str, help: &str) -> Family<'a> {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        Family { out, name }
    }

    /// Emits one sample with the given labels (values escaped here).
    fn sample(&mut self, labels: &[(&str, &str)], value: &str) {
        sample_line(self.out, self.name, labels, value);
    }
}

fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// The build identity stamped on `cf_build_info` and `/version`:
/// `(crate version, git describe)`. The git half comes from the
/// `CF_GIT_DESCRIBE` compile-time environment variable (injected by CI
/// builds); `"unknown"` when the binary was built without it.
pub fn build_info() -> (&'static str, &'static str) {
    (env!("CARGO_PKG_VERSION"), option_env!("CF_GIT_DESCRIBE").unwrap_or("unknown"))
}

/// Renders the full `/metrics` payload.
///
/// `snap` and `load` are `None` before a runtime has published (the
/// families are still declared, just sample-less); `tracer`-derived
/// series (histograms, span drops, profile aggregate) always render, as
/// does the `cf_draining` gauge (`draining` is process state, not
/// runtime state — a router reads it to tell planned removal from
/// overload).
pub fn render(
    instance: &str,
    snap: Option<&StatsSnapshot>,
    load: Option<LoadPolicy>,
    draining: bool,
    tracer: &Tracer,
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let inst: &[(&str, &str)] = &[("instance", instance)];

    // -- Runtime counters -------------------------------------------------
    let counters: [(&'static str, &'static str, Option<u64>); 24] = [
        ("cf_jobs_submitted_total", "Jobs accepted into the queue.", snap.map(|s| s.submitted)),
        ("cf_jobs_completed_total", "Jobs finished with Ok.", snap.map(|s| s.completed)),
        ("cf_jobs_failed_total", "Jobs finished with Err.", snap.map(|s| s.failed)),
        ("cf_jobs_cancelled_total", "Jobs cancelled before starting.", snap.map(|s| s.cancelled)),
        (
            "cf_jobs_expired_total",
            "Jobs whose deadline passed in the queue.",
            snap.map(|s| s.expired),
        ),
        ("cf_cache_hits_total", "Plan/report cache hits.", snap.map(|s| s.cache_hits)),
        ("cf_cache_misses_total", "Plan/report cache misses.", snap.map(|s| s.cache_misses)),
        (
            "cf_cache_corruptions_total",
            "Checksum-detected corrupt cache hits.",
            snap.map(|s| s.cache_corruptions),
        ),
        ("cf_retries_total", "Retried supervised attempts.", snap.map(|s| s.retries)),
        ("cf_shed_breaker_total", "Jobs shed by the open circuit breaker.", snap.map(|s| s.shed)),
        (
            "cf_shed_jobs_total",
            "Submissions rejected by admission control.",
            snap.map(|s| s.shed_jobs),
        ),
        (
            "cf_resumed_jobs_total",
            "Jobs answered from a resume journal.",
            snap.map(|s| s.resumed_jobs),
        ),
        (
            "cf_journal_bytes_total",
            "Bytes appended to the serve journal.",
            snap.map(|s| s.journal_bytes),
        ),
        (
            "cf_journal_compactions_total",
            "Serve-journal compactions (resume + live).",
            snap.map(|s| s.journal_compactions),
        ),
        (
            "cf_journal_bytes_reclaimed_total",
            "Bytes reclaimed from the serve journal by compaction.",
            snap.map(|s| s.journal_bytes_reclaimed),
        ),
        (
            "cf_cold_simulate_memo_hits_total",
            "Shape-memo hits across cold (uncached) simulations.",
            snap.map(|s| s.cold_memo_hits),
        ),
        (
            "cf_cold_simulate_memo_misses_total",
            "Shape-memo misses across cold (uncached) simulations.",
            snap.map(|s| s.cold_memo_misses),
        ),
        (
            "cf_cold_simulate_parallel_tasks_total",
            "Cold subtrees fanned out to extra threads by parallel simulation.",
            snap.map(|s| s.cold_parallel_tasks),
        ),
        (
            "cf_faults_injected_total",
            "Faults injected by the fault plan.",
            snap.map(|s| s.faults_injected),
        ),
        (
            "cf_worker_respawns_total",
            "Worker loops respawned after an escaped panic.",
            snap.map(|s| s.worker_respawns),
        ),
        (
            "cf_api_accepted_total",
            "Jobs accepted through the HTTP job API.",
            snap.map(|s| s.api_accepted),
        ),
        (
            "cf_api_shed_total",
            "HTTP submissions shed at the front door with 503.",
            snap.map(|s| s.api_shed),
        ),
        (
            "cf_api_coalesced_total",
            "HTTP submissions coalesced onto an identical in-flight job.",
            snap.map(|s| s.api_coalesced),
        ),
        (
            "cf_api_streamed_bytes_total",
            "Result bytes streamed to HTTP clients by GET /jobs/<id>.",
            snap.map(|s| s.api_streamed_bytes),
        ),
    ];
    for (name, help, value) in counters {
        let mut f = Family::new(&mut out, name, "counter", help);
        if let Some(v) = value {
            f.sample(inst, &v.to_string());
        }
    }
    {
        let mut f = Family::new(
            &mut out,
            "cf_queue_wait_seconds_total",
            "counter",
            "Cumulative queue waiting time across jobs.",
        );
        if let Some(s) = snap {
            f.sample(inst, &fmt_f64(s.queue_wait.as_secs_f64()));
        }
    }
    {
        let mut f = Family::new(
            &mut out,
            "cf_spans_dropped_total",
            "counter",
            "Span events dropped from the observability ring buffer.",
        );
        f.sample(inst, &tracer.dropped().to_string());
    }
    {
        let mut f = Family::new(
            &mut out,
            "cf_trace_attached_total",
            "counter",
            "Jobs attached to a distributed trace context.",
        );
        f.sample(inst, &tracer.attached_total().to_string());
    }

    // -- Gauges -----------------------------------------------------------
    let gauges: [(&'static str, &'static str, Option<String>); 7] = [
        (
            "cf_draining",
            "1 while the instance is draining (stopped admitting, finishing in-flight work).",
            Some(if draining { "1" } else { "0" }.to_string()),
        ),
        (
            "cf_in_flight",
            "Jobs accepted into the queue and not yet terminal.",
            snap.map(|s| s.in_flight.to_string()),
        ),
        (
            "cf_queued_bytes",
            "Estimated bytes of queued, not-yet-started work.",
            snap.map(|s| s.queued_bytes.to_string()),
        ),
        (
            "cf_cold_simulate_arena_bytes",
            "High-water plan-buffer bytes retained by any one cold simulation's arena.",
            snap.map(|s| s.cold_arena_bytes.to_string()),
        ),
        (
            "cf_uptime_seconds",
            "Seconds since the runtime started.",
            snap.map(|s| fmt_f64(s.uptime.as_secs_f64())),
        ),
        (
            "cf_max_in_flight",
            "Admission-control in-flight limit (0 = unlimited).",
            load.map(|l| l.max_in_flight.to_string()),
        ),
        (
            "cf_max_queued_bytes",
            "Admission-control queued-bytes limit (0 = unlimited).",
            load.map(|l| l.max_queued_bytes.to_string()),
        ),
    ];
    for (name, help, value) in gauges {
        let mut f = Family::new(&mut out, name, "gauge", help);
        if let Some(v) = value {
            f.sample(inst, &v);
        }
    }
    {
        let mut f = Family::new(
            &mut out,
            "cf_build_info",
            "gauge",
            "Build identity of this instance (constant 1; version and git labels).",
        );
        let (version, git) = build_info();
        f.sample(&[("instance", instance), ("version", version), ("git", git)], "1");
    }

    // -- Per-worker counters ----------------------------------------------
    {
        let mut f =
            Family::new(&mut out, "cf_worker_jobs_total", "counter", "Jobs the worker ran.");
        if let Some(s) = snap {
            for (i, w) in s.per_worker.iter().enumerate() {
                let idx = i.to_string();
                f.sample(&[("instance", instance), ("worker", &idx)], &w.jobs.to_string());
            }
        }
    }
    {
        let mut f = Family::new(
            &mut out,
            "cf_worker_busy_seconds_total",
            "counter",
            "Seconds the worker spent in job bodies.",
        );
        if let Some(s) = snap {
            for (i, w) in s.per_worker.iter().enumerate() {
                let idx = i.to_string();
                f.sample(
                    &[("instance", instance), ("worker", &idx)],
                    &fmt_f64(w.busy.as_secs_f64()),
                );
            }
        }
    }

    // -- Stage latency histograms -----------------------------------------
    let mut stage_totals: Vec<u64> = Vec::with_capacity(STAGES.len());
    {
        out.push_str(concat!(
            "# HELP cf_stage_latency_seconds Runtime pipeline-stage latency ",
            "(queue wait, run, cache lookup, retry backoff, journal append, api request).\n",
            "# TYPE cf_stage_latency_seconds histogram\n",
        ));
        // One bucket snapshot per stage: `+Inf` and `_count` are both
        // derived from it, so the exposition stays internally
        // consistent even while workers are observing concurrently
        // (reading `count()` separately could disagree with the
        // buckets mid-run).
        for &stage in &STAGES {
            let h = tracer.histogram(stage);
            let counts = h.bucket_counts();
            let mut cumulative = 0u64;
            for (i, &c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS) {
                cumulative += c;
                // Bucket i counts samples in [2^i, 2^(i+1)) µs.
                let le = fmt_f64(f64::powi(2.0, i as i32 + 1) / 1e6);
                sample_line(
                    &mut out,
                    "cf_stage_latency_seconds_bucket",
                    &[("instance", instance), ("stage", stage.name()), ("le", &le)],
                    &cumulative.to_string(),
                );
            }
            sample_line(
                &mut out,
                "cf_stage_latency_seconds_bucket",
                &[("instance", instance), ("stage", stage.name()), ("le", "+Inf")],
                &cumulative.to_string(),
            );
            stage_totals.push(cumulative);
        }
    }
    for (&stage, &total) in STAGES.iter().zip(&stage_totals) {
        let h = tracer.histogram(stage);
        let labels: &[(&str, &str)] = &[("instance", instance), ("stage", stage.name())];
        sample_line(
            &mut out,
            "cf_stage_latency_seconds_sum",
            labels,
            &fmt_f64(h.total().as_secs_f64()),
        );
        sample_line(&mut out, "cf_stage_latency_seconds_count", labels, &total.to_string());
    }

    // -- Simulator profile aggregate ---------------------------------------
    let (jobs, rows) = tracer.profile_aggregate();
    {
        let mut f = Family::new(
            &mut out,
            "cf_profile_jobs_total",
            "counter",
            "Profiled simulation jobs absorbed, per machine.",
        );
        for (machine, n) in &jobs {
            f.sample(&[("instance", instance), ("machine", machine)], &n.to_string());
        }
    }
    {
        let mut f = Family::new(
            &mut out,
            "cf_profile_stage_seconds_total",
            "counter",
            "Simulated busy seconds per hierarchy level and pipeline stage.",
        );
        for r in &rows {
            let level = r.level.to_string();
            for stage in cf_core::PipeStage::ALL {
                f.sample(
                    &[
                        ("instance", instance),
                        ("machine", &r.machine),
                        ("level", &level),
                        ("stage", stage.name()),
                    ],
                    &fmt_f64(r.stage_seconds[stage.index()]),
                );
            }
        }
    }
    type AggValue = fn(&crate::obs::ProfileAgg) -> String;
    let per_level: [(&'static str, &'static str, AggValue); 4] = [
        (
            "cf_profile_traffic_bytes_total",
            "Simulated parent-link traffic per hierarchy level.",
            |r| r.traffic_bytes.to_string(),
        ),
        ("cf_profile_memo_hits_total", "Memoization-table hits per hierarchy level.", |r| {
            r.memo_hits.to_string()
        }),
        ("cf_profile_memo_misses_total", "Memoization-table misses per hierarchy level.", |r| {
            r.memo_misses.to_string()
        }),
        (
            "cf_profile_concat_saved_seconds_total",
            "Simulated seconds saved by pipeline concatenating per level.",
            |r| fmt_f64(r.concat_saved_s),
        ),
    ];
    for (name, help, value) in per_level {
        let mut f = Family::new(&mut out, name, "counter", help);
        for r in &rows {
            let level = r.level.to_string();
            f.sample(
                &[("instance", instance), ("machine", &r.machine), ("level", &level)],
                &value(r),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{SpanKind, Stage};
    use std::time::Duration;

    #[test]
    fn renders_every_family_without_a_snapshot() {
        let tracer = Tracer::new(8);
        let body = render("t0", None, None, false, &tracer);
        for family in [
            "cf_jobs_submitted_total",
            "cf_spans_dropped_total",
            "cf_in_flight",
            "cf_stage_latency_seconds",
            "cf_profile_stage_seconds_total",
        ] {
            assert!(body.contains(&format!("# TYPE {family} ")), "{family} missing:\n{body}");
            assert!(body.contains(&format!("# HELP {family} ")), "{family} missing:\n{body}");
        }
        // No snapshot → tracer-derived counters still have samples.
        assert!(body.contains("cf_spans_dropped_total{instance=\"t0\"} 0"), "{body}");
        assert!(body.contains("cf_trace_attached_total{instance=\"t0\"} 0"), "{body}");
        // But stats counters have none.
        assert!(!body.contains("cf_jobs_submitted_total{"), "{body}");
        // The api counter families are declared even without a snapshot.
        for family in [
            "cf_api_accepted_total",
            "cf_api_shed_total",
            "cf_api_coalesced_total",
            "cf_api_streamed_bytes_total",
            "cf_cold_simulate_memo_hits_total",
            "cf_cold_simulate_memo_misses_total",
            "cf_cold_simulate_parallel_tasks_total",
        ] {
            assert!(body.contains(&format!("# TYPE {family} counter")), "{family}:\n{body}");
        }
        // Build info always has its constant sample.
        let (version, git) = build_info();
        assert!(
            body.contains(&format!(
                "cf_build_info{{instance=\"t0\",version=\"{version}\",git=\"{git}\"}} 1"
            )),
            "{body}"
        );
        // cf_draining is process state: sampled even without a snapshot.
        assert!(body.contains("cf_draining{instance=\"t0\"} 0"), "{body}");
    }

    #[test]
    fn draining_gauge_follows_the_flag() {
        let tracer = Tracer::new(8);
        let body = render("t0", None, None, true, &tracer);
        assert!(body.contains("# TYPE cf_draining gauge"), "{body}");
        assert!(body.contains("cf_draining{instance=\"t0\"} 1"), "{body}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed_by_inf() {
        let tracer = Tracer::new(8);
        tracer.observe(Stage::Run, Duration::from_micros(3)); // bucket 1
        tracer.observe(Stage::Run, Duration::from_micros(3));
        tracer.observe(Stage::Run, Duration::from_micros(1000)); // bucket 9
        let body = render("t0", None, None, false, &tracer);
        // [2^1, 2^2) µs bucket upper bound is 4 µs = 4e-6 s.
        assert!(
            body.contains(
                "cf_stage_latency_seconds_bucket{instance=\"t0\",stage=\"run\",le=\"4e-6\"} 2"
            ),
            "{body}"
        );
        assert!(
            body.contains(
                "cf_stage_latency_seconds_bucket{instance=\"t0\",stage=\"run\",le=\"+Inf\"} 3"
            ),
            "{body}"
        );
        assert!(
            body.contains("cf_stage_latency_seconds_count{instance=\"t0\",stage=\"run\"} 3"),
            "{body}"
        );
        let sum_line = body
            .lines()
            .find(|l| l.starts_with("cf_stage_latency_seconds_sum{instance=\"t0\",stage=\"run\"}"))
            .map(str::to_string);
        let sum_line = match sum_line {
            Some(l) => l,
            None => panic!("missing sum line:\n{body}"),
        };
        let value: f64 = match sum_line.rsplit(' ').next().map(str::parse) {
            Some(Ok(v)) => v,
            other => panic!("bad sum sample {other:?}: {sum_line}"),
        };
        assert!((value - 1006e-6).abs() < 1e-9, "{sum_line}");
    }

    #[test]
    fn profile_rows_label_machine_level_stage() {
        let tracer = Tracer::new(8);
        let machine = cf_core::Machine::new(cf_core::MachineConfig::cambricon_f1());
        let mut b = cf_isa::ProgramBuilder::new();
        let a = b.alloc("a", vec![256, 256]);
        let w = b.alloc("w", vec![256, 256]);
        let _ = match b.apply(cf_isa::Opcode::MatMul, [a, w]) {
            Ok(ids) => ids,
            Err(e) => panic!("{e}"),
        };
        let program = b.build();
        let (_, report) = match machine.simulate_profiled(&program, 8) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        tracer.absorb_profile("Cambricon-F1", &report);
        let body = render("t0", None, None, false, &tracer);
        assert!(
            body.contains("cf_profile_jobs_total{instance=\"t0\",machine=\"Cambricon-F1\"} 1"),
            "{body}"
        );
        assert!(
            body.contains(
                "cf_profile_stage_seconds_total{instance=\"t0\",machine=\"Cambricon-F1\",level=\"0\",stage=\"ex\"}"
            ),
            "{body}"
        );
        assert!(
            body.contains(
                "cf_profile_memo_hits_total{instance=\"t0\",machine=\"Cambricon-F1\",level=\"0\"}"
            ),
            "{body}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let tracer = Tracer::new(2);
        tracer.record(SpanKind::JobSubmit, 1, None, String::new);
        tracer.record(SpanKind::JobSubmit, 2, None, String::new);
        tracer.record(SpanKind::JobSubmit, 3, None, String::new); // drops one
        let body = render("a\"b\\c\nd", None, None, false, &tracer);
        assert!(body.contains("instance=\"a\\\"b\\\\c\\nd\""), "{body}");
        assert!(body.contains("cf_spans_dropped_total{instance=\"a\\\"b\\\\c\\nd\"} 1"), "{body}");
    }
}
