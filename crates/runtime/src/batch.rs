//! Batch helpers: running design-space sweeps and labelled job suites
//! (such as the paper-experiment harness) through the pool.

use std::sync::Arc;
use std::time::Instant;

use cf_model::designspace::{self, Design, DesignReport};

use crate::job::{JobError, JobHandle};
use crate::scheduler::Runtime;

/// One labelled batch job's outcome.
#[derive(Debug)]
pub struct BatchOutcome<T> {
    /// The label the job was submitted under.
    pub label: String,
    /// Wall-clock seconds the job body took on its worker.
    pub seconds: f64,
    /// The job's result.
    pub result: Result<T, JobError>,
}

/// Submits every `(label, body)` pair to the pool and joins them in
/// submission order, timing each body on its worker.
///
/// This is how the experiment suite (`exp_all`) fans out: all jobs are
/// queued up front so the pool keeps every worker busy, and results come
/// back in the deterministic submission order regardless of which worker
/// finished first.
pub fn run_batch<T, F>(runtime: &Runtime, jobs: Vec<(String, F)>) -> Vec<BatchOutcome<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let handles: Vec<(String, JobHandle<(T, f64)>)> = jobs
        .into_iter()
        .map(|(label, body)| {
            let handle = runtime.submit_task(move || {
                let t0 = Instant::now();
                let value = body();
                (value, t0.elapsed().as_secs_f64())
            });
            (label, handle)
        })
        .collect();
    handles
        .into_iter()
        .map(|(label, handle)| match handle.join() {
            Ok((value, seconds)) => BatchOutcome { label, seconds, result: Ok(value) },
            Err(e) => BatchOutcome { label, seconds: 0.0, result: Err(e) },
        })
        .collect()
}

/// Evaluates every design in `designs` concurrently (Table 4 sweep),
/// returning reports in input order.
///
/// The programs are shared across jobs behind an `Arc`; design evaluation
/// itself goes straight to the planner (design reports carry power/area,
/// not just timing, so they are not [`PlanCache`](crate::PlanCache)
/// entries).
pub fn sweep_designs(
    runtime: &Runtime,
    designs: Vec<Design>,
    programs: Arc<Vec<cf_isa::Program>>,
) -> Vec<Result<DesignReport, JobError>> {
    let handles: Vec<JobHandle<Result<DesignReport, cf_core::CoreError>>> = designs
        .into_iter()
        .map(|design| {
            let programs = Arc::clone(&programs);
            runtime.submit_task(move || designspace::evaluate(&design, &programs))
        })
        .collect();
    handles.into_iter().map(|h| h.join().and_then(|r| r.map_err(JobError::Sim))).collect()
}

/// Joins a vector of handles in order.
pub fn join_all<T>(handles: Vec<JobHandle<T>>) -> Vec<Result<T, JobError>> {
    handles.into_iter().map(JobHandle::join).collect()
}

/// Groups jobs for batch submission by compatibility.
///
/// Each input is `(machine fingerprint, batchable)`. Batchable jobs
/// (the HTTP job API marks non-profiled simulations) with the same
/// machine fingerprint land in one group, in input order; every
/// non-batchable job gets a singleton group. Groups are ordered by
/// their first member, and every input index appears in exactly one
/// group — callers fan each multi-member group out as a single
/// [`Runtime::simulate_batch`] call.
pub fn group_compatible(keys: &[(u64, bool)]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_machine: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, &(machine, batchable)) in keys.iter().enumerate() {
        if !batchable {
            groups.push(vec![i]);
            continue;
        }
        match by_machine.get(&machine) {
            Some(&g) => groups[g].push(i),
            None => {
                by_machine.insert(machine, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeConfig;
    use cf_isa::{Opcode, ProgramBuilder};

    #[test]
    fn run_batch_preserves_order_and_times() {
        let rt = Runtime::new(RuntimeConfig { workers: 2, ..Default::default() });
        let jobs: Vec<(String, Box<dyn FnOnce() -> u32 + Send>)> = (0u32..6)
            .map(|i| {
                (format!("job{i}"), Box::new(move || i * i) as Box<dyn FnOnce() -> u32 + Send>)
            })
            .collect();
        let outcomes = run_batch(&rt, jobs);
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.label, format!("job{i}"));
            assert_eq!(*o.result.as_ref().unwrap(), (i * i) as u32);
            assert!(o.seconds >= 0.0);
        }
    }

    #[test]
    fn group_compatible_batches_by_machine_and_isolates_the_rest() {
        // machine A batchable at 0, 3; machine B batchable at 1;
        // non-batchable at 2 and 4 (even though 4 shares machine A).
        let keys = [(10, true), (20, true), (10, false), (10, true), (10, false), (20, true)];
        let groups = group_compatible(&keys);
        assert_eq!(groups, vec![vec![0, 3], vec![1, 5], vec![2], vec![4]]);
        let mut seen: Vec<usize> = groups.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..keys.len()).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_designs_matches_direct_evaluation() {
        let rt = Runtime::new(RuntimeConfig { workers: 2, ..Default::default() });
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![512, 512]);
        let w = b.alloc("w", vec![512, 512]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        let programs = Arc::new(vec![b.build()]);
        let designs = designspace::table4_designs();

        let concurrent = sweep_designs(&rt, designs.clone(), Arc::clone(&programs));
        for (design, got) in designs.iter().zip(&concurrent) {
            let want = designspace::evaluate(design, &programs).unwrap();
            assert_eq!(got.as_ref().unwrap(), &want);
        }
    }
}
