//! Observability: span tracing, per-stage latency histograms and the
//! publication hub the HTTP status server reads from.
//!
//! The runtime's hot paths are instrumented with **span events** — job
//! submit/start/retry/settle, cache hit/miss/corrupt, admission-control
//! sheds, journal append/compact — emitted into a bounded ring buffer,
//! plus **latency histograms** (power-of-two microsecond buckets) for the
//! per-stage durations that matter when profiling a serving instance:
//! queue wait, job run, cache lookup, retry backoff, journal append.
//!
//! Everything is **off by default and lock-cheap when off**: a disabled
//! [`Tracer`] reduces every instrumentation site to one relaxed atomic
//! load, details are built lazily (closures, not eager `format!`), and
//! the ring buffer holds the last `capacity` events, dropping the oldest
//! under pressure (the drop count is itself observable).
//!
//! [`Obs`] ties a tracer to the live [`RuntimeStats`] registry and
//! [`LoadPolicy`] of a run so the [`status`](crate::status) HTTP server
//! can answer `/healthz`, `/stats` and `/trace` while the run is in
//! flight. See DESIGN.md §8.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cf_core::profile::{PipeStage, ProfileReport, TRACE_PID_RUNTIME};
use serde_json::{Map, Value};

use crate::scheduler::LoadPolicy;
use crate::serve::json_str;
use crate::stats::RuntimeStats;
use crate::sync;
use crate::trace::TraceContext;

/// What happened, at the granularity the trace ring records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A job was accepted into the submission queue.
    JobSubmit,
    /// A worker dequeued a job and is about to run it.
    JobStart,
    /// A supervised attempt failed transiently and will be retried.
    JobRetry,
    /// A job reached a terminal outcome (ok or error).
    JobSettle,
    /// A verified plan-cache hit.
    CacheHit,
    /// A plan-cache miss.
    CacheMiss,
    /// A cache entry failed its checksum and was evicted.
    CacheCorrupt,
    /// Admission control rejected a submission.
    Shed,
    /// One record was durably appended to the serve journal.
    JournalAppend,
    /// The serve journal was compacted (rewritten without dead records).
    JournalCompact,
    /// One HTTP request completed its lifecycle on the job API / status
    /// server (the closed-over duration is read → response write).
    ApiRequest,
}

impl SpanKind {
    /// The event's stable wire name (kebab-case, used in `/trace` JSON
    /// and the `--trace` timeline).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::JobSubmit => "job-submit",
            SpanKind::JobStart => "job-start",
            SpanKind::JobRetry => "job-retry",
            SpanKind::JobSettle => "job-settle",
            SpanKind::CacheHit => "cache-hit",
            SpanKind::CacheMiss => "cache-miss",
            SpanKind::CacheCorrupt => "cache-corrupt",
            SpanKind::Shed => "shed",
            SpanKind::JournalAppend => "journal-append",
            SpanKind::JournalCompact => "journal-compact",
            SpanKind::ApiRequest => "api-request",
        }
    }
}

/// Whether this kind's token is a scheduler job id (the namespace
/// [`Tracer::attach`] registers trace contexts under). Cache events
/// carry cache-key digests and compactions carry no token, so joining
/// those to a trace by token would be meaningless.
fn job_scoped(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::JobSubmit
            | SpanKind::JobStart
            | SpanKind::JobRetry
            | SpanKind::JobSettle
            | SpanKind::JournalAppend
    )
}

/// The histogram stage whose duration this kind closes over, if any.
fn stage_of(kind: SpanKind) -> Option<Stage> {
    match kind {
        SpanKind::JobStart => Some(Stage::QueueWait),
        SpanKind::JobSettle => Some(Stage::Run),
        SpanKind::CacheHit | SpanKind::CacheMiss | SpanKind::CacheCorrupt => {
            Some(Stage::CacheLookup)
        }
        SpanKind::JobRetry => Some(Stage::RetryBackoff),
        SpanKind::JournalAppend => Some(Stage::JournalAppend),
        SpanKind::ApiRequest => Some(Stage::ApiRequest),
        SpanKind::JobSubmit | SpanKind::JournalCompact | SpanKind::Shed => None,
    }
}

/// `GET /trace?stage=` matching: accepts either the event's kind wire
/// name (`job-settle`) or the stage name whose histogram the event
/// feeds (`run`).
fn kind_matches_stage(kind: SpanKind, want: &str) -> bool {
    kind.name() == want || stage_of(kind).is_some_and(|s| s.name() == want)
}

/// Renders one event, annotated with `trace`/`span`/`parent` hex fields
/// when a [`TraceContext`] is attached to its token.
fn render_event_json(e: &SpanEvent, ctx: Option<TraceContext>) -> String {
    let mut s = e.render_json();
    if let Some(c) = ctx {
        s.pop();
        s.push_str(&format!(",\"trace\":\"{:032x}\",\"span\":\"{:016x}\"", c.trace_id, c.span_id));
        if let Some(p) = c.parent {
            s.push_str(&format!(",\"parent\":\"{p:016x}\""));
        }
        s.push('}');
    }
    s
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Monotonic sequence number (gaps mean ring-buffer drops).
    pub seq: u64,
    /// When the event happened, relative to tracer creation.
    pub at: Duration,
    /// What happened.
    pub kind: SpanKind,
    /// The stable token the event is about: a job's submission id, a
    /// cache key digest, or 0 when no token applies.
    pub token: u64,
    /// Short free-form context (`"limit=in-flight"`, `"ok=true"`, …).
    pub detail: String,
    /// The duration the event closes over (queue wait for `JobStart`,
    /// busy time for `JobSettle`, backoff for `JobRetry`, …).
    pub duration: Option<Duration>,
}

impl SpanEvent {
    /// Renders the event as one `/trace` JSON object.
    pub fn render_json(&self) -> String {
        let duration = match self.duration {
            Some(d) => format!("{:?}", d.as_secs_f64()),
            None => "null".to_string(),
        };
        format!(
            "{{\"seq\":{},\"at_s\":{:?},\"kind\":{},\"token\":{},\"detail\":{},\"duration_s\":{duration}}}",
            self.seq,
            self.at.as_secs_f64(),
            json_str(self.kind.name()),
            self.token,
            json_str(&self.detail),
        )
    }
}

/// The instrumented pipeline stages with latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Submission → worker pickup.
    QueueWait = 0,
    /// Worker job-body execution.
    Run = 1,
    /// Plan-cache lookup (including checksum verification).
    CacheLookup = 2,
    /// Supervised retry backoff sleeps.
    RetryBackoff = 3,
    /// Journal record write + fsync.
    JournalAppend = 4,
    /// HTTP request lifecycle on the job API / status server.
    ApiRequest = 5,
}

/// Every [`Stage`], in histogram-slot order.
pub const STAGES: [Stage; 6] = [
    Stage::QueueWait,
    Stage::Run,
    Stage::CacheLookup,
    Stage::RetryBackoff,
    Stage::JournalAppend,
    Stage::ApiRequest,
];

impl Stage {
    /// The stage's stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Run => "run",
            Stage::CacheLookup => "cache_lookup",
            Stage::RetryBackoff => "retry_backoff",
            Stage::JournalAppend => "journal_append",
            Stage::ApiRequest => "api_request",
        }
    }
}

/// Histogram bucket count: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also catches sub-microsecond
/// samples), so 30 buckets span 1 µs to ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 30;

/// A lock-free power-of-two latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn observe(&self, d: Duration) {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket =
            (64 - micros.leading_zeros() as usize).saturating_sub(1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time per-bucket counts; slot `i` counts samples in
    /// `[2^i, 2^(i+1))` µs (the Prometheus exporter accumulates these
    /// into cumulative `le` buckets).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Sum of all recorded sample durations.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed))
    }

    /// Renders the histogram as one JSON object; `buckets[i]` counts
    /// samples in `[2^i, 2^(i+1))` µs, trailing zero buckets trimmed.
    pub fn render_json(&self) -> String {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let last = counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        let buckets: Vec<String> = counts[..last].iter().map(u64::to_string).collect();
        format!(
            "{{\"count\":{},\"total_us\":{},\"buckets\":[{}]}}",
            self.count(),
            self.total_micros.load(Ordering::Relaxed),
            buckets.join(","),
        )
    }
}

/// The span recorder: a bounded event ring plus per-stage histograms.
///
/// Construct one per run ([`Tracer::new`]) and share it via `Arc` through
/// [`RuntimeConfig::tracer`](crate::RuntimeConfig); a
/// [`Tracer::disabled`] instance makes every instrumentation site a
/// single relaxed atomic load.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    started: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SpanEvent>>,
    histograms: [LatencyHistogram; STAGES.len()],
    profile: Mutex<ProfileStore>,
    attached: AtomicU64,
    contexts: Mutex<ContextStore>,
}

/// Bounded token → [`TraceContext`] registry: joins span-ring events to
/// the distributed trace they belong to at *render* time, so attaching
/// a context costs nothing on the event-record hot path. Holds the most
/// recent `capacity` attachments (insertion order, oldest evicted).
#[derive(Debug, Default)]
struct ContextStore {
    map: HashMap<u64, TraceContext>,
    order: VecDeque<u64>,
}

/// Aggregated simulator attribution for one (machine, level), summed
/// over every profiled job of a run (see
/// [`ProfileReport`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileAgg {
    /// Machine configuration name the jobs ran on.
    pub machine: String,
    /// Hierarchy level (0 = root).
    pub level: usize,
    /// Busy seconds per pipeline stage, indexed by
    /// [`PipeStage::index`].
    pub stage_seconds: [f64; 5],
    /// Parent-link traffic in bytes.
    pub traffic_bytes: u64,
    /// Memoization-table hits.
    pub memo_hits: u64,
    /// Memoization-table misses.
    pub memo_misses: u64,
    /// Seconds saved by pipeline concatenating.
    pub concat_saved_s: f64,
}

#[derive(Debug, Default)]
struct ProfileStore {
    jobs: BTreeMap<String, u64>,
    levels: BTreeMap<(String, usize), ProfileAgg>,
}

impl Tracer {
    /// An enabled tracer retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(true),
            started: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            histograms: std::array::from_fn(|_| LatencyHistogram::default()),
            profile: Mutex::new(ProfileStore::default()),
            attached: AtomicU64::new(0),
            contexts: Mutex::new(ContextStore::default()),
        }
    }

    /// A disabled tracer: every record/observe is a cheap no-op.
    pub fn disabled() -> Self {
        let tracer = Tracer::new(1);
        tracer.set_enabled(false);
        tracer
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Records one span event. `detail` is only invoked when the tracer
    /// is enabled, so callers can pass a closing-over `format!` closure
    /// without paying for it on the disabled path.
    pub fn record(
        &self,
        kind: SpanKind,
        token: u64,
        duration: Option<Duration>,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled() {
            return;
        }
        let event = SpanEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at: self.started.elapsed(),
            kind,
            token,
            detail: detail(),
            duration,
        };
        let mut ring = sync::lock(&self.ring);
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Records a latency sample for `stage`.
    pub fn observe(&self, stage: Stage, d: Duration) {
        if !self.enabled() {
            return;
        }
        self.histograms[stage as usize].observe(d);
    }

    /// The histogram for `stage`.
    pub fn histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.histograms[stage as usize]
    }

    /// Events dropped from the ring under pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Attaches a distributed [`TraceContext`] to `token` (a scheduler
    /// job id), so every span-ring event recorded under that token can
    /// be joined to its trace at render time. No-op when the tracer is
    /// disabled — the instrumentation-site cost stays one relaxed load.
    /// The registry is bounded at ring capacity; oldest attachments are
    /// evicted first.
    pub fn attach(&self, token: u64, ctx: TraceContext) {
        if !self.enabled() {
            return;
        }
        self.attached.fetch_add(1, Ordering::Relaxed);
        let mut store = sync::lock(&self.contexts);
        if store.map.insert(token, ctx).is_none() {
            store.order.push_back(token);
        }
        while store.order.len() > self.capacity {
            if let Some(old) = store.order.pop_front() {
                store.map.remove(&old);
            }
        }
    }

    /// The trace context attached to `token`, if any.
    pub fn context_for(&self, token: u64) -> Option<TraceContext> {
        sync::lock(&self.contexts).map.get(&token).copied()
    }

    /// Total contexts ever attached (exported as
    /// `cf_trace_attached_total`).
    pub fn attached_total(&self) -> u64 {
        self.attached.load(Ordering::Relaxed)
    }

    /// Folds one profiled job's simulator attribution into the
    /// per-(machine, level) aggregate exported on `/metrics`.
    pub fn absorb_profile(&self, machine: &str, report: &ProfileReport) {
        let mut store = sync::lock(&self.profile);
        *store.jobs.entry(machine.to_string()).or_insert(0) += 1;
        for l in &report.levels {
            let agg = store.levels.entry((machine.to_string(), l.level)).or_insert_with(|| {
                ProfileAgg { machine: machine.to_string(), level: l.level, ..ProfileAgg::default() }
            });
            for stage in PipeStage::ALL {
                agg.stage_seconds[stage.index()] += l.seconds.get(stage);
            }
            agg.traffic_bytes += l.traffic_bytes;
            agg.memo_hits += l.memo_hits;
            agg.memo_misses += l.memo_misses;
            agg.concat_saved_s += l.concat_saved_s;
        }
    }

    /// The profile aggregate: profiled-job counts per machine, plus the
    /// per-(machine, level) rows in deterministic order.
    pub fn profile_aggregate(&self) -> (Vec<(String, u64)>, Vec<ProfileAgg>) {
        let store = sync::lock(&self.profile);
        (
            store.jobs.iter().map(|(m, &n)| (m.clone(), n)).collect(),
            store.levels.values().cloned().collect(),
        )
    }

    /// Renders the recent span ring as Chrome Trace Events on the
    /// runtime process track (pid [`TRACE_PID_RUNTIME`]): spans with a
    /// closed-over duration become complete (`ph:"X"`) events ending at
    /// their record time, the rest become instants (`ph:"i"`). Tracks
    /// split by subsystem: jobs, cache, journal, api.
    pub fn chrome_events(&self) -> Vec<Value> {
        fn base(name: &str, ph: &str, tid: u64, ts_us: f64, e: &SpanEvent) -> Map {
            let mut m = Map::new();
            m.insert("name", name);
            m.insert("cat", "runtime");
            m.insert("ph", ph);
            m.insert("ts", ts_us);
            m.insert("pid", TRACE_PID_RUNTIME);
            m.insert("tid", tid);
            let mut args = Map::new();
            args.insert("token", e.token);
            if !e.detail.is_empty() {
                args.insert("detail", e.detail.as_str());
            }
            m.insert("args", Value::Object(args));
            m
        }
        let mut out = vec![
            cf_core::profile::trace_process_name(TRACE_PID_RUNTIME, "cf-runtime"),
            cf_core::profile::trace_thread_name(TRACE_PID_RUNTIME, 0, "jobs"),
            cf_core::profile::trace_thread_name(TRACE_PID_RUNTIME, 1, "cache"),
            cf_core::profile::trace_thread_name(TRACE_PID_RUNTIME, 2, "journal"),
            cf_core::profile::trace_thread_name(TRACE_PID_RUNTIME, 3, "api"),
        ];
        for e in self.recent(usize::MAX) {
            let tid = match e.kind {
                SpanKind::JobSubmit
                | SpanKind::JobStart
                | SpanKind::JobRetry
                | SpanKind::JobSettle
                | SpanKind::Shed => 0,
                SpanKind::CacheHit | SpanKind::CacheMiss | SpanKind::CacheCorrupt => 1,
                SpanKind::JournalAppend | SpanKind::JournalCompact => 2,
                SpanKind::ApiRequest => 3,
            };
            let at_us = e.at.as_secs_f64() * 1e6;
            let v = match e.duration {
                Some(d) if d > Duration::ZERO => {
                    let dur_us = d.as_secs_f64() * 1e6;
                    let mut m = base(e.kind.name(), "X", tid, (at_us - dur_us).max(0.0), &e);
                    m.insert("dur", dur_us.min(at_us));
                    Value::Object(m)
                }
                _ => {
                    let mut m = base(e.kind.name(), "i", tid, at_us, &e);
                    m.insert("s", "t");
                    Value::Object(m)
                }
            };
            out.push(v);
        }
        out
    }

    /// The most recent `limit` events, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<SpanEvent> {
        let ring = sync::lock(&self.ring);
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Renders the `/trace` payload: recent events plus every stage's
    /// histogram. Note `seq` gaps between consecutive events mean the
    /// ring dropped events under pressure (the top-level `dropped`
    /// count says how many over the run's lifetime).
    pub fn render_json(&self, limit: usize) -> String {
        self.render_json_filtered(limit, None, None)
    }

    /// [`render_json`](Tracer::render_json) with the `GET /trace` query
    /// filters applied: `stage` keeps only events of that wire kind
    /// (and only that stage's histogram), `trace` keeps only events
    /// whose token has a matching attached [`TraceContext`]. Filters
    /// run *before* the `limit` cut, so a filtered query still returns
    /// up to `limit` matching events. Matching events are annotated
    /// with `trace`/`span`/`parent` hex fields.
    pub fn render_json_filtered(
        &self,
        limit: usize,
        stage: Option<&str>,
        trace: Option<u128>,
    ) -> String {
        let mut rendered: Vec<String> = Vec::new();
        for e in self.recent(usize::MAX) {
            if let Some(want) = stage {
                if !kind_matches_stage(e.kind, want) {
                    continue;
                }
            }
            let ctx = if job_scoped(e.kind) { self.context_for(e.token) } else { None };
            if let Some(want) = trace {
                if ctx.map(|c| c.trace_id) != Some(want) {
                    continue;
                }
            }
            rendered.push(render_event_json(&e, ctx));
        }
        let skip = rendered.len().saturating_sub(limit);
        let events = rendered[skip..].join(",");
        let histograms: Vec<String> = STAGES
            .iter()
            .filter(|s| stage.is_none_or(|want| s.name() == want))
            .map(|&s| format!("{}:{}", json_str(s.name()), self.histogram(s).render_json()))
            .collect();
        format!(
            "{{\"dropped\":{},\"events\":[{events}],\"histograms\":{{{}}}}}",
            self.dropped(),
            histograms.join(","),
        )
    }

    /// Renders the span timeline as human-readable text (one event per
    /// line, for `cfrun --trace`).
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for e in self.recent(usize::MAX) {
            let duration = match e.duration {
                Some(d) => format!(" [{d:.3?}]"),
                None => String::new(),
            };
            let detail = if e.detail.is_empty() { String::new() } else { format!(" {}", e.detail) };
            out.push_str(&format!(
                "+{:>11.6}s {:<15} #{}{}{}\n",
                e.at.as_secs_f64(),
                e.kind.name(),
                e.token,
                detail,
                duration,
            ));
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("({dropped} earlier event(s) dropped from the ring)\n"));
        }
        out
    }
}

/// What a run publishes for the status server: its live stats registry
/// and the admission-control limits that define overload.
#[derive(Debug, Clone)]
struct RuntimeView {
    stats: Arc<RuntimeStats>,
    load: LoadPolicy,
}

/// The observability hub: one shared [`Tracer`] plus the live runtime
/// view a serve run publishes once its pool exists.
///
/// Built by the caller (`cfserve --status-port` constructs one, hands it
/// to both the [`status`](crate::status) server and
/// [`ServeOptions::obs`](crate::ServeOptions)), so the HTTP server can
/// answer before, during and after the run itself.
#[derive(Debug)]
pub struct Obs {
    tracer: Arc<Tracer>,
    runtime: Mutex<Option<RuntimeView>>,
    api: Mutex<Option<Arc<crate::api::JobApi>>>,
    instance: Mutex<String>,
    /// Set by the drain path (SIGTERM / `POST /drain`): the instance
    /// stops admitting work and `/healthz` flips to `"draining"` so a
    /// router treats the removal as planned rather than as failure.
    draining: AtomicBool,
}

impl Obs {
    /// A hub with an enabled tracer retaining `capacity` events.
    pub fn new(capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            tracer: Arc::new(Tracer::new(capacity)),
            runtime: Mutex::new(None),
            api: Mutex::new(None),
            instance: Mutex::new("cf-serve".to_string()),
            draining: AtomicBool::new(false),
        })
    }

    /// Flips the hub into draining: `/healthz` answers 503 with
    /// `"status":"draining"`, `POST /jobs` refuses new work, and the
    /// `cf_draining` gauge reads 1. Irreversible for the process
    /// lifetime — drain ends in exit.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The hub's tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Sets the `instance` label value stamped on every `/metrics`
    /// series (`cfserve --instance`).
    pub fn set_instance(&self, name: &str) {
        *sync::lock(&self.instance) = name.to_string();
    }

    /// The configured `instance` label value.
    pub fn instance(&self) -> String {
        sync::lock(&self.instance).clone()
    }

    /// Publishes a runtime's live stats and load limits; called by the
    /// serve engine as soon as its pool is constructed.
    pub fn publish(&self, stats: Arc<RuntimeStats>, load: LoadPolicy) {
        *sync::lock(&self.runtime) = Some(RuntimeView { stats, load });
    }

    /// Whether a runtime has published yet.
    pub fn published(&self) -> bool {
        sync::lock(&self.runtime).is_some()
    }

    /// Publishes the HTTP job API so the status server can route
    /// `POST /jobs` and `GET /jobs/<id>` to it.
    pub fn publish_api(&self, api: Arc<crate::api::JobApi>) {
        *sync::lock(&self.api) = Some(api);
    }

    /// The published job API, if any.
    pub fn api(&self) -> Option<Arc<crate::api::JobApi>> {
        sync::lock(&self.api).clone()
    }

    /// The `/healthz` response: `(healthy, body)`. Healthy means a load
    /// balancer may route new work here: the run is either unlimited or
    /// has admission headroom left, and no drain has begun.
    /// `healthy == false` maps to HTTP 503; the body's `status` field
    /// distinguishes `"draining"` (planned removal — a router drops the
    /// backend without counting a failure) from `"overloaded"`
    /// (transient pressure — retry later).
    pub fn healthz(&self) -> (bool, String) {
        let draining = self.draining();
        let Some(view) = sync::lock(&self.runtime).clone() else {
            let status = if draining { "draining" } else { "starting" };
            return (!draining, format!("{{\"status\":\"{status}\"}}"));
        };
        let snap = view.stats.snapshot();
        let load = view.load;
        let inflight_full = load.max_in_flight > 0 && snap.in_flight >= load.max_in_flight as u64;
        let bytes_full =
            load.max_queued_bytes > 0 && snap.queued_bytes >= load.max_queued_bytes as u64;
        let overloaded = inflight_full || bytes_full;
        let headroom = if load.max_in_flight > 0 {
            (load.max_in_flight as u64).saturating_sub(snap.in_flight).to_string()
        } else {
            "null".to_string()
        };
        let status = if draining {
            "\"draining\""
        } else if overloaded {
            "\"overloaded\""
        } else {
            "\"ok\""
        };
        let body = format!(
            "{{\"status\":{status},\"draining\":{draining},\"in_flight\":{},\"max_in_flight\":{},\"headroom\":{headroom},\"queued_bytes\":{},\"max_queued_bytes\":{},\"uptime_s\":{:?}}}",
            snap.in_flight,
            load.max_in_flight,
            snap.queued_bytes,
            load.max_queued_bytes,
            snap.uptime.as_secs_f64(),
        );
        (!overloaded && !draining, body)
    }

    /// The `/stats` response: `(ready, body)` — the live
    /// [`StatsSnapshot`](crate::StatsSnapshot) as JSON once a runtime has
    /// published, a `"starting"` placeholder (HTTP 503) before that.
    pub fn stats_json(&self) -> (bool, String) {
        match sync::lock(&self.runtime).clone() {
            Some(view) => {
                let mut snap = view.stats.snapshot();
                snap.spans_dropped = self.tracer.dropped();
                (true, snap.render_json())
            }
            None => (false, "{\"status\":\"starting\"}".to_string()),
        }
    }

    /// The `/metrics` response body: Prometheus text exposition over the
    /// live stats snapshot, stage latency histograms and simulator
    /// profile aggregate. Always renders (families without a published
    /// runtime simply omit their samples).
    pub fn metrics(&self) -> String {
        let view = sync::lock(&self.runtime).clone();
        let (snap, load) = match view {
            Some(view) => {
                let mut snap = view.stats.snapshot();
                snap.spans_dropped = self.tracer.dropped();
                (Some(snap), Some(view.load))
            }
            None => (None, None),
        };
        crate::metrics::render(&self.instance(), snap.as_ref(), load, self.draining(), &self.tracer)
    }

    /// The `/trace` response body.
    pub fn trace_json(&self, limit: usize) -> String {
        self.tracer.render_json(limit)
    }

    /// The `/trace` response body with query filters
    /// (`?limit=&stage=&trace=`) applied — see
    /// [`Tracer::render_json_filtered`].
    pub fn trace_json_filtered(
        &self,
        limit: usize,
        stage: Option<&str>,
        trace: Option<u128>,
    ) -> String {
        self.tracer.render_json_filtered(limit, stage, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(SpanKind::JobSubmit, 1, None, || unreachable!("detail built while disabled"));
        t.observe(Stage::Run, Duration::from_millis(5));
        assert!(t.recent(10).is_empty());
        assert_eq!(t.histogram(Stage::Run).count(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.record(SpanKind::JobSubmit, i, None, String::new);
        }
        let events: Vec<u64> = t.recent(10).iter().map(|e| e.token).collect();
        assert_eq!(events, vec![2, 3, 4]);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recent(1).len(), 1);
        assert_eq!(t.recent(1)[0].token, 4);
    }

    #[test]
    fn histogram_buckets_by_power_of_two_micros() {
        let h = LatencyHistogram::default();
        h.observe(Duration::from_micros(0)); // bucket 0
        h.observe(Duration::from_micros(1)); // bucket 0
        h.observe(Duration::from_micros(3)); // bucket 1
        h.observe(Duration::from_micros(1000)); // bucket 9 (512..1024 µs → 1000 ∈ [2^9, 2^10))
        assert_eq!(h.count(), 4);
        let json = h.render_json();
        assert!(json.starts_with("{\"count\":4"), "{json}");
        assert!(json.contains("\"buckets\":[2,1,0,0,0,0,0,0,0,1]"), "{json}");
    }

    #[test]
    fn trace_json_and_timeline_render() {
        let t = Tracer::new(8);
        t.record(SpanKind::CacheHit, 42, Some(Duration::from_micros(7)), || "key=abc".to_string());
        t.observe(Stage::CacheLookup, Duration::from_micros(7));
        let json = t.render_json(10);
        assert!(json.contains("\"kind\":\"cache-hit\""), "{json}");
        assert!(json.contains("\"token\":42"), "{json}");
        assert!(json.contains("\"cache_lookup\":{\"count\":1"), "{json}");
        let timeline = t.render_timeline();
        assert!(timeline.contains("cache-hit"), "{timeline}");
        assert!(timeline.contains("key=abc"), "{timeline}");
    }

    #[test]
    fn obs_healthz_transitions() {
        let obs = Obs::new(8);
        let (ok, body) = obs.healthz();
        assert!(ok);
        assert!(body.contains("starting"), "{body}");
        assert!(!obs.published());

        let stats = Arc::new(RuntimeStats::new(1));
        obs.publish(Arc::clone(&stats), LoadPolicy::max_in_flight(2));
        let (ok, body) = obs.healthz();
        assert!(ok, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"headroom\":2"), "{body}");

        stats.in_flight.store(2, Ordering::Relaxed);
        let (ok, body) = obs.healthz();
        assert!(!ok, "{body}");
        assert!(body.contains("\"status\":\"overloaded\""), "{body}");
        assert!(body.contains("\"headroom\":0"), "{body}");

        let (ready, stats_body) = obs.stats_json();
        assert!(ready);
        assert!(stats_body.contains("\"in_flight\":2"), "{stats_body}");
    }

    #[test]
    fn obs_drain_beats_overload_and_starting() {
        // Draining before a runtime publishes still reads as draining.
        let obs = Obs::new(8);
        obs.begin_drain();
        let (ok, body) = obs.healthz();
        assert!(!ok, "{body}");
        assert!(body.contains("\"status\":\"draining\""), "{body}");

        // Draining with headroom left: still draining, still 503 —
        // planned removal is not the same signal as overload.
        let obs = Obs::new(8);
        let stats = Arc::new(RuntimeStats::new(1));
        obs.publish(Arc::clone(&stats), LoadPolicy::max_in_flight(2));
        assert!(!obs.draining());
        obs.begin_drain();
        assert!(obs.draining());
        let (ok, body) = obs.healthz();
        assert!(!ok, "{body}");
        assert!(body.contains("\"status\":\"draining\""), "{body}");
        assert!(body.contains("\"draining\":true"), "{body}");
        assert!(!body.contains("overloaded"), "{body}");

        // The gauge follows the flag in the exposition.
        let metrics = obs.metrics();
        assert!(metrics.contains("cf_draining 1"), "{metrics}");
    }

    #[test]
    fn attach_joins_events_to_traces_at_render_time() {
        let t = Tracer::new(8);
        let ctx = crate::trace::TraceContext::mint().child();
        t.attach(7, ctx);
        assert_eq!(t.context_for(7), Some(ctx));
        assert_eq!(t.attached_total(), 1);
        t.record(SpanKind::JobStart, 7, Some(Duration::from_micros(3)), String::new);
        t.record(SpanKind::JobStart, 8, None, String::new); // no context
        t.record(SpanKind::CacheHit, 7, None, String::new); // digest namespace

        // Unfiltered render annotates the attached event only.
        let json = t.render_json(10);
        assert!(json.contains(&format!("\"trace\":\"{:032x}\"", ctx.trace_id)), "{json}");
        assert!(json.contains(&format!("\"span\":\"{:016x}\"", ctx.span_id)), "{json}");
        let parent = ctx.parent.unwrap_or(0);
        assert!(json.contains(&format!("\"parent\":\"{parent:016x}\"")), "{json}");

        // Trace filter keeps only the joined job event.
        let json = t.render_json_filtered(10, None, Some(ctx.trace_id));
        assert_eq!(json.matches("\"kind\":").count(), 1, "{json}");
        assert!(json.contains("\"kind\":\"job-start\""), "{json}");

        // Stage filter accepts stage names and kind names alike, and
        // narrows the histogram section.
        let by_stage = t.render_json_filtered(10, Some("queue_wait"), None);
        assert_eq!(by_stage.matches("\"kind\":").count(), 2, "{by_stage}");
        assert!(!by_stage.contains("\"cache_lookup\""), "{by_stage}");
        let by_kind = t.render_json_filtered(10, Some("cache-hit"), None);
        assert!(by_kind.contains("\"kind\":\"cache-hit\""), "{by_kind}");

        // An unknown trace id matches nothing.
        let none = t.render_json_filtered(10, None, Some(0xDEAD));
        assert!(none.contains("\"events\":[]"), "{none}");
    }

    #[test]
    fn disabled_tracer_ignores_attach_and_registry_is_bounded() {
        let t = Tracer::disabled();
        t.attach(1, crate::trace::TraceContext::mint());
        assert_eq!(t.context_for(1), None);
        assert_eq!(t.attached_total(), 0);

        let t = Tracer::new(2);
        for token in 0..4u64 {
            t.attach(token, crate::trace::TraceContext::mint());
        }
        assert_eq!(t.context_for(0), None, "oldest attachments evict first");
        assert_eq!(t.context_for(1), None);
        assert!(t.context_for(2).is_some());
        assert!(t.context_for(3).is_some());
    }
}
