//! The job scheduler: a bounded submission queue feeding a fixed pool of
//! `std::thread` workers, supervised for resilience.
//!
//! Design:
//!
//! * **Bounded queue** — [`Runtime::submit_task`] and friends block while
//!   the queue is at capacity (backpressure); `try_*` variants return
//!   [`JobError::QueueFull`] instead.
//! * **Handles** — every submission returns a [`JobHandle`], a blocking
//!   future with cancellation. Cancellation is cooperative at job
//!   granularity: queued jobs resolve to [`JobError::Cancelled`], a job
//!   already on a worker runs to completion.
//! * **Deadlines** — a job may carry a *start* deadline
//!   ([`JobOptions::deadline`]); a worker that picks an expired job up
//!   resolves it to [`JobError::DeadlineExceeded`] without running it.
//! * **Graceful shutdown** — [`Runtime::shutdown`] (and `Drop`) closes the
//!   queue, lets the workers drain every queued job, then joins them;
//!   [`Runtime::shutdown_now`] resolves still-queued jobs to
//!   [`JobError::Shutdown`] instead of running them.
//! * **Caching** — simulation jobs consult the shared [`PlanCache`] keyed
//!   by `(machine fingerprint, program hash)`; every entry carries an FNV
//!   content checksum re-verified on hit, and a corrupt hit falls back to
//!   recomputation (counted in [`RuntimeStats`]). Functional-execution
//!   jobs bypass the cache by construction (their results depend on
//!   memory contents, which the key does not cover).
//! * **Supervision** — simulation/execution jobs (idempotent by
//!   construction) run under the [`supervisor`](crate::supervisor):
//!   transient failures retry with exponential backoff inside a budget, a
//!   circuit breaker sheds load under sustained failure, and a worker
//!   whose loop panics is respawned so the pool never shrinks. A seeded
//!   [`FaultPlan`] can deterministically inject panics, latency, cache
//!   corruption, deadline expiries and DMA faults at every one of those
//!   seams (see [`fault`](crate::fault)).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cf_core::{Machine, MachineConfig, PerfReport};
use cf_isa::Program;
use cf_tensor::gen::DataGen;
use cf_tensor::{Memory, Shape};

use crate::cache::{CacheKey, CacheLookup, PlanCache};
use crate::fault::{FaultPlan, FaultSite};
use crate::job::{JobError, JobHandle, JobOptions};
use crate::obs::{SpanKind, Stage, Tracer};
use crate::stats::RuntimeStats;
use crate::supervisor::{panic_message, BreakerConfig, CircuitBreaker, RetryPolicy, Supervisor};
use crate::sync;

/// Construction parameters for a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Maximum queued (not yet started) jobs before submission blocks.
    pub queue_capacity: usize,
    /// Plan/report cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Retry policy for supervised (simulate/exec) jobs.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds (disabled by default).
    pub breaker: BreakerConfig,
    /// Deterministic fault-injection plan (`None` = no injection).
    pub fault_plan: Option<FaultPlan>,
    /// Admission-control limits (unlimited by default).
    pub load: LoadPolicy,
    /// Shared span tracer (`None` = tracing disabled, near-zero cost).
    pub tracer: Option<Arc<Tracer>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_capacity: 1024,
            cache_capacity: 256,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            fault_plan: None,
            load: LoadPolicy::default(),
            tracer: None,
        }
    }
}

/// Admission-control limits enforced at `submit_*` time.
///
/// Unlike the bounded queue — which exerts *backpressure* by blocking
/// the submitter — an over-capacity submission under a `LoadPolicy` is
/// rejected **immediately** as [`JobError::Shed`] with queue-depth
/// context, so a caller that cannot afford to block (or to let memory
/// grow with queued work) learns about the overload right away and
/// decides for itself whether to back off, retry or fail.
///
/// The admission check reads the gauges without holding the queue lock,
/// so under concurrent submitters the limits are enforced approximately
/// (a handful of jobs can race past a freshly-reached limit); they are
/// exact for a single submitting thread, which is how the serve engine
/// drives the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadPolicy {
    /// Maximum accepted-but-unfinished jobs (0 = unlimited).
    pub max_in_flight: usize,
    /// Maximum estimated bytes of queued work, per
    /// [`JobOptions::cost_bytes`] (0 = unlimited).
    pub max_queued_bytes: usize,
    /// Run-level deadline budget: every job's start deadline is clamped
    /// to "runtime construction + budget", so a run that overstays its
    /// budget expires its remaining queued jobs instead of running them.
    pub deadline_budget: Option<Duration>,
}

impl LoadPolicy {
    /// A policy bounding only the number of in-flight jobs.
    pub fn max_in_flight(n: usize) -> Self {
        LoadPolicy { max_in_flight: n, ..Default::default() }
    }
}

/// What a worker decided to do with a dequeued job.
enum Disposition {
    Run,
    Cancelled,
    Expired { late_by: std::time::Duration },
    Shutdown,
}

struct QueuedJob {
    /// The job's submission id — the token fault/jitter decisions key on.
    id: u64,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Bytes charged against the queued-bytes gauge while queued.
    cost: usize,
    cancelled: Arc<AtomicBool>,
    /// Completes the handle according to the disposition; returns whether
    /// the body ran and succeeded (`None` when the body did not run).
    run: Box<dyn FnOnce(Disposition) -> Option<bool> + Send>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    closed: bool,
}

/// Single-flight marker: the first job to miss on a key becomes the
/// *leader* and simulates; concurrent same-key jobs wait here for the
/// cache fill instead of duplicating the planner run.
#[derive(Default)]
struct Inflight {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Removes the inflight marker and releases its waiters even if the
/// leader's simulation panics (without this, an unwinding leader would
/// strand every waiter forever).
struct InflightGuard<'a> {
    inner: &'a PoolInner,
    key: CacheKey,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(w) = sync::lock(&self.inner.inflight).remove(&self.key) {
            *sync::lock(&w.done) = true;
            w.cv.notify_all();
        }
    }
}

struct PoolInner {
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_capacity: usize,
    load: LoadPolicy,
    /// Construction time — the origin of the run-level deadline budget.
    started: Instant,
    cache: PlanCache,
    inflight: Mutex<HashMap<CacheKey, Arc<Inflight>>>,
    /// Shared so an [`Obs`](crate::Obs) hub can read the live counters
    /// (including the in-flight/queued-bytes gauges) from other threads.
    stats: Arc<RuntimeStats>,
    tracer: Arc<Tracer>,
    supervisor: Supervisor,
    next_id: AtomicU64,
    /// Cold simulations currently running; divides the parallel-simulate
    /// thread budget so N concurrent cold jobs share the pool instead of
    /// each fanning out to the full worker count.
    cold_inflight: AtomicUsize,
}

/// Outcome of a cached simulation job.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The performance report (shared with the cache on hits and fills).
    pub report: Arc<PerfReport>,
    /// Whether the report came out of the plan/report cache.
    pub cache_hit: bool,
    /// The cache key the job used.
    pub key: CacheKey,
}

/// Outcome of a profiled simulation job
/// ([`Runtime::submit_simulate_profiled_checked`]).
#[derive(Debug, Clone)]
pub struct ProfiledSimResult {
    /// The performance report (identical to the unprofiled one).
    pub report: Arc<PerfReport>,
    /// The simulator's per-level / per-signature attribution.
    pub profile: Arc<cf_core::ProfileReport>,
    /// The cache key identifying the job (the job itself bypasses the
    /// cache so the attribution reflects a real planner run).
    pub key: CacheKey,
}

/// Outcome of a functional-execution job.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Final external memory after the program ran (seeded inputs
    /// included), element for element.
    pub memory: Vec<f32>,
}

/// Per-attempt DMA fault hook for functional-execution jobs: decides per
/// transfer from `(seed, MemFault, token, attempt, op)`, so a retried
/// attempt draws fresh decisions.
struct MemFaultHook {
    inner: Arc<PoolInner>,
    token: u64,
    attempt: u32,
}

impl cf_core::fault::DmaFaultHook for MemFaultHook {
    fn fires(&self, op: u64) -> bool {
        let Some(plan) = &self.inner.supervisor.plan else { return false };
        let fire = plan.fires_at(FaultSite::MemFault, self.token, self.attempt, op);
        if fire {
            self.inner.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }
}

/// The concurrent simulation-service runtime: worker pool + bounded queue
/// + plan/report cache + supervision + stats registry.
///
/// # Examples
///
/// ```
/// use cf_runtime::{Runtime, RuntimeConfig};
/// use cf_core::MachineConfig;
/// use cf_isa::{Opcode, ProgramBuilder};
/// use std::sync::Arc;
///
/// let runtime = Runtime::new(RuntimeConfig { workers: 2, ..Default::default() });
/// let mut b = ProgramBuilder::new();
/// let a = b.alloc("a", vec![64, 64]);
/// let w = b.alloc("w", vec![64, 64]);
/// b.apply(Opcode::MatMul, [a, w])?;
/// let program = Arc::new(b.build());
///
/// let cold =
///     runtime.submit_simulate(MachineConfig::cambricon_f1(), Arc::clone(&program)).join()?;
/// let warm = runtime.submit_simulate(MachineConfig::cambricon_f1(), program).join()?;
/// assert_eq!(cold.report, warm.report);
/// assert!(warm.cache_hit);
/// assert_eq!(runtime.stats().snapshot().cache_hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Runtime {
    inner: Arc<PoolInner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.inner.queue_capacity)
            .field("cache_capacity", &self.inner.cache.capacity())
            .finish()
    }
}

impl Runtime {
    /// Builds the pool and starts its workers.
    pub fn new(config: RuntimeConfig) -> Self {
        let workers = config.workers.max(1);
        let tracer = config.tracer.unwrap_or_else(|| Arc::new(Tracer::disabled()));
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            load: config.load,
            started: Instant::now(),
            cache: PlanCache::with_tracer(config.cache_capacity, Arc::clone(&tracer)),
            inflight: Mutex::new(HashMap::new()),
            stats: Arc::new(RuntimeStats::new(workers)),
            tracer: Arc::clone(&tracer),
            supervisor: Supervisor {
                policy: config.retry,
                breaker: CircuitBreaker::new(config.breaker),
                plan: config.fault_plan,
                tracer,
            },
            next_id: AtomicU64::new(0),
            cold_inflight: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("cf-runtime-worker-{i}"))
                    .spawn(move || worker_entry(&inner, i))
                    .unwrap_or_else(|e| panic!("failed to spawn cf-runtime worker {i}: {e}"))
            })
            .collect();
        Runtime { inner, workers: handles }
    }

    /// A runtime with `workers` threads and default queue/cache sizing.
    pub fn with_workers(workers: usize) -> Self {
        Runtime::new(RuntimeConfig { workers, ..Default::default() })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The live counters registry.
    pub fn stats(&self) -> &RuntimeStats {
        &self.inner.stats
    }

    /// The live counters registry as a shared handle, for publishing to
    /// an [`Obs`](crate::Obs) hub that outlives this borrow.
    pub fn stats_arc(&self) -> Arc<RuntimeStats> {
        Arc::clone(&self.inner.stats)
    }

    /// The span tracer this pool records into (a disabled instance when
    /// none was configured).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.inner.tracer
    }

    /// The shared plan/report cache.
    pub fn cache(&self) -> &PlanCache {
        &self.inner.cache
    }

    /// The admission-control policy this pool enforces.
    pub fn load_policy(&self) -> LoadPolicy {
        self.inner.load
    }

    /// Accepted-but-unfinished jobs right now (the in-flight gauge).
    pub fn in_flight(&self) -> usize {
        self.inner.stats.in_flight.load(Ordering::Relaxed) as usize
    }

    /// Estimated bytes of queued, not-yet-started work right now.
    pub fn queued_bytes(&self) -> usize {
        self.inner.stats.queued_bytes.load(Ordering::Relaxed) as usize
    }

    /// Whether a submission of `cost_bytes` would pass [`LoadPolicy`]
    /// admission control *right now* — the front-door check the HTTP job
    /// API runs before journaling an acceptance. Advisory: the gauges can
    /// move between this check and the actual submission, so submitters
    /// that must not race still use the `_checked` variants.
    ///
    /// # Errors
    ///
    /// [`JobError::Shed`] naming the exhausted limit and the gauge values
    /// that tripped it. Does **not** count toward `shed_jobs` (nothing
    /// was submitted).
    pub fn check_admission(&self, cost_bytes: usize) -> Result<(), JobError> {
        self.admit(cost_bytes)
    }

    /// Submits an arbitrary closure job (blocking while the queue is
    /// full). Used for batch sweeps and the experiment harness.
    ///
    /// Task jobs are **not** supervised: the runtime cannot know they are
    /// idempotent, so they get no retries and no fault injection.
    pub fn submit_task<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_with(JobOptions::default(), move || Ok(f()), true)
    }

    /// [`submit_task`](Runtime::submit_task) with explicit options.
    pub fn submit_task_opts<T, F>(&self, opts: JobOptions, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submit_with(opts, move || Ok(f()), true)
    }

    /// Non-blocking [`submit_task`](Runtime::submit_task): fails with
    /// [`JobError::QueueFull`] instead of waiting for queue space.
    pub fn try_submit_task<T, F>(&self, f: F) -> Result<JobHandle<T>, JobError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (handle, admitted) = self.submit_inner(JobOptions::default(), move || Ok(f()), false);
        admitted.map(|()| handle)
    }

    /// Submits a cached performance simulation of `program` on `machine`.
    pub fn submit_simulate(
        &self,
        machine: MachineConfig,
        program: Arc<Program>,
    ) -> JobHandle<SimResult> {
        self.submit_simulate_opts(JobOptions::default(), machine, program)
    }

    /// [`submit_simulate`](Runtime::submit_simulate) with explicit options
    /// (deadline, cache bypass).
    pub fn submit_simulate_opts(
        &self,
        opts: JobOptions,
        machine: MachineConfig,
        program: Arc<Program>,
    ) -> JobHandle<SimResult> {
        self.submit_simulate_checked(opts, machine, program).0
    }

    /// [`submit_simulate_opts`](Runtime::submit_simulate_opts), also
    /// reporting whether admission control accepted the job: `Err` means
    /// the job never entered the queue (the handle is already resolved to
    /// the same error). Blocks for queue space like the plain submit;
    /// only [`LoadPolicy`] rejections surface here.
    pub fn submit_simulate_checked(
        &self,
        opts: JobOptions,
        machine: MachineConfig,
        program: Arc<Program>,
    ) -> (JobHandle<SimResult>, Result<(), JobError>) {
        let opts = self.charge_default_cost(opts, &program);
        let inner = Arc::clone(&self.inner);
        let bypass = opts.bypass_cache;
        self.submit_supervised(opts, move |id, _attempt| {
            simulate_once(&inner, &machine, &program, bypass, id)
        })
    }

    /// Submits a **profiled** performance simulation: timing identical to
    /// [`submit_simulate`](Runtime::submit_simulate) but also returning
    /// the simulator's per-level/per-stage attribution with the `top`
    /// hottest instruction signatures. Always bypasses the plan cache —
    /// a cached report carries no fresh attribution — and is counted as
    /// a cache miss for neither side. Same admission-control reporting
    /// as [`submit_simulate_checked`](Runtime::submit_simulate_checked).
    pub fn submit_simulate_profiled_checked(
        &self,
        opts: JobOptions,
        machine: MachineConfig,
        program: Arc<Program>,
        top: usize,
    ) -> (JobHandle<ProfiledSimResult>, Result<(), JobError>) {
        let opts = self.charge_default_cost(opts, &program);
        self.submit_supervised(opts, move |_id, _attempt| {
            let key = CacheKey::new(&machine, &program);
            let (report, profile) = Machine::new(machine.clone())
                .simulate_profiled(&program, top)
                .map_err(JobError::Sim)?;
            Ok(ProfiledSimResult { report: Arc::new(report), profile: Arc::new(profile), key })
        })
    }

    /// Submits a functional execution of `program` on `machine`, inputs
    /// seeded from `seed` exactly as `cfrun --exec` seeds them.
    ///
    /// Functional jobs **bypass the report cache**: their output is the
    /// transformed memory, which depends on the seeded input data — not
    /// covered by the `(machine, program)` cache key (see DESIGN.md §6).
    pub fn submit_exec(
        &self,
        machine: MachineConfig,
        program: Arc<Program>,
        seed: u64,
    ) -> JobHandle<ExecResult> {
        self.submit_exec_opts(JobOptions::default(), machine, program, seed)
    }

    /// [`submit_exec`](Runtime::submit_exec) with explicit options.
    pub fn submit_exec_opts(
        &self,
        opts: JobOptions,
        machine: MachineConfig,
        program: Arc<Program>,
        seed: u64,
    ) -> JobHandle<ExecResult> {
        self.submit_exec_checked(opts, machine, program, seed).0
    }

    /// [`submit_exec_opts`](Runtime::submit_exec_opts) with the same
    /// admission-control reporting as
    /// [`submit_simulate_checked`](Runtime::submit_simulate_checked).
    pub fn submit_exec_checked(
        &self,
        opts: JobOptions,
        machine: MachineConfig,
        program: Arc<Program>,
        seed: u64,
    ) -> (JobHandle<ExecResult>, Result<(), JobError>) {
        let opts = self.charge_default_cost(opts, &program);
        let inner = Arc::clone(&self.inner);
        self.submit_supervised(opts, move |id, attempt| {
            let elems = program.extern_elems() as usize;
            let mut mem = Memory::new(elems);
            let data = DataGen::new(seed).uniform(Shape::new(vec![elems]), -1.0, 1.0);
            mem.as_mut_slice().copy_from_slice(data.data());
            let mut m = Machine::new(machine.clone());
            if inner.supervisor.plan.is_some() {
                m = m.with_fault_hook(Arc::new(MemFaultHook {
                    inner: Arc::clone(&inner),
                    token: id,
                    attempt,
                }));
            }
            m.run(&program, &mut mem).map_err(JobError::Sim)?;
            Ok(ExecResult { memory: mem.as_mut_slice().to_vec() })
        })
    }

    /// Submits a batch of simulations, returning the handles in order.
    pub fn simulate_batch(
        &self,
        jobs: impl IntoIterator<Item = (MachineConfig, Arc<Program>)>,
    ) -> Vec<JobHandle<SimResult>> {
        jobs.into_iter().map(|(m, p)| self.submit_simulate(m, p)).collect()
    }

    /// Closes the queue, drains every queued job, then joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl(false);
    }

    /// Closes the queue, resolves still-queued jobs to
    /// [`JobError::Shutdown`] without running them, then joins the
    /// workers (the job each worker is currently running still finishes).
    pub fn shutdown_now(mut self) {
        self.shutdown_impl(true);
    }

    fn shutdown_impl(&mut self, discard_queued: bool) {
        {
            let mut q = sync::lock(&self.inner.queue);
            q.closed = true;
            if discard_queued {
                for job in q.jobs.drain(..) {
                    self.inner.stats.queued_bytes.fetch_sub(job.cost as u64, Ordering::Relaxed);
                    (job.run)(Disposition::Shutdown);
                    self.inner.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
                }
            }
            self.inner.not_empty.notify_all();
            self.inner.not_full.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Fills [`JobOptions::cost_bytes`] with the program's external
    /// memory footprint when the caller did not estimate it.
    fn charge_default_cost(&self, mut opts: JobOptions, program: &Program) -> JobOptions {
        if opts.cost_bytes == 0 {
            opts.cost_bytes = program.extern_elems() as usize * std::mem::size_of::<f32>();
        }
        opts
    }

    /// Wraps an idempotent per-attempt body in the supervisor (retry,
    /// breaker, fault injection) and submits it.
    fn submit_supervised<T, F>(
        &self,
        opts: JobOptions,
        attempt_body: F,
    ) -> (JobHandle<T>, Result<(), JobError>)
    where
        T: Send + 'static,
        F: Fn(u64, u32) -> Result<T, JobError> + Send + 'static,
    {
        let inner = Arc::clone(&self.inner);
        self.submit_with_id(opts, true, move |id| {
            inner.supervisor.supervise(&inner.stats, id, |attempt| attempt_body(id, attempt))
        })
    }

    /// The blocking submission path (waits for queue space).
    fn submit_with<T, F>(&self, opts: JobOptions, body: F, block_when_full: bool) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T, JobError> + Send + 'static,
    {
        self.submit_inner(opts, body, block_when_full).0
    }

    fn submit_inner<T, F>(
        &self,
        opts: JobOptions,
        body: F,
        block_when_full: bool,
    ) -> (JobHandle<T>, Result<(), JobError>)
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T, JobError> + Send + 'static,
    {
        self.submit_with_id(opts, block_when_full, move |_| body())
    }

    /// Checks the [`LoadPolicy`] gauges; `Err` is the shed error to
    /// resolve the handle with.
    fn admit(&self, cost: usize) -> Result<(), JobError> {
        let load = &self.inner.load;
        if load.max_in_flight == 0 && load.max_queued_bytes == 0 {
            return Ok(());
        }
        let in_flight = self.inner.stats.in_flight.load(Ordering::Relaxed) as usize;
        let queued_bytes = self.inner.stats.queued_bytes.load(Ordering::Relaxed) as usize;
        let limit = if load.max_in_flight > 0 && in_flight >= load.max_in_flight {
            "in-flight"
        } else if load.max_queued_bytes > 0 && queued_bytes + cost > load.max_queued_bytes {
            "queued-bytes"
        } else {
            return Ok(());
        };
        Err(JobError::Shed { limit, in_flight, queued_bytes })
    }

    /// The generic submission path; the body receives the job's
    /// submission id (the supervision/fault token). With
    /// `block_when_full` the call waits for queue space; otherwise a full
    /// queue returns `Err(QueueFull)` in the second slot. In every `Err`
    /// case (shed, queue full, shutdown) the handle is already resolved
    /// to the same error, so plain submitters can ignore the second slot.
    fn submit_with_id<T, F>(
        &self,
        opts: JobOptions,
        block_when_full: bool,
        body: F,
    ) -> (JobHandle<T>, Result<(), JobError>)
    where
        T: Send + 'static,
        F: FnOnce(u64) -> Result<T, JobError> + Send + 'static,
    {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        // Attached before admission control so even a shed outcome is
        // joinable to its distributed trace (no-op when tracing is off).
        if let Some(ctx) = opts.trace {
            self.inner.tracer.attach(id, ctx);
        }
        let (handle, shared) = JobHandle::<T>::new(id);
        // The queue entry shares the handle's cancel flag so workers can
        // observe cancellation without knowing `T`.
        let cancelled = Arc::clone(&shared.cancelled);

        // Admission control: shed *before* blocking on queue space — an
        // overloaded pool answers immediately, it does not stall callers.
        if let Err(shed) = self.admit(opts.cost_bytes) {
            self.inner.stats.shed_jobs.fetch_add(1, Ordering::Relaxed);
            let detail = shed.to_string();
            self.inner.tracer.record(SpanKind::Shed, id, None, move || detail);
            shared.complete(Err(shed.clone()));
            return (handle, Err(shed));
        }

        let now = Instant::now();
        let mut deadline = opts.deadline.map(|d| now + d);
        // Clamp to the run-level deadline budget, if any.
        if let Some(budget) = self.inner.load.deadline_budget {
            let run_deadline = self.inner.started + budget;
            deadline = Some(deadline.map_or(run_deadline, |d| d.min(run_deadline)));
        }
        let run = {
            let shared = Arc::clone(&shared);
            Box::new(move |disposition: Disposition| match disposition {
                Disposition::Run => {
                    let outcome = catch_unwind(AssertUnwindSafe(move || body(id)));
                    let (ok, result) = match outcome {
                        Ok(Ok(value)) => (true, Ok(value)),
                        Ok(Err(e)) => (false, Err(e)),
                        Err(payload) => (false, Err(JobError::Panicked(panic_message(&*payload)))),
                    };
                    shared.complete(result);
                    Some(ok)
                }
                Disposition::Cancelled => {
                    shared.complete(Err(JobError::Cancelled));
                    None
                }
                Disposition::Expired { late_by } => {
                    shared.complete(Err(JobError::DeadlineExceeded { late_by }));
                    None
                }
                Disposition::Shutdown => {
                    shared.complete(Err(JobError::Shutdown));
                    None
                }
            }) as Box<dyn FnOnce(Disposition) -> Option<bool> + Send>
        };
        let cost = opts.cost_bytes;
        let job = QueuedJob { id, enqueued: now, deadline, cost, cancelled, run };

        let mut q = sync::lock(&self.inner.queue);
        while !q.closed && q.jobs.len() >= self.inner.queue_capacity {
            if !block_when_full {
                drop(q);
                shared.complete(Err(JobError::QueueFull));
                return (handle, Err(JobError::QueueFull));
            }
            q = sync::wait(&self.inner.not_full, q);
        }
        if q.closed {
            drop(q);
            shared.complete(Err(JobError::Shutdown));
            return (handle, Err(JobError::Shutdown));
        }
        q.jobs.push_back(job);
        drop(q);
        self.inner.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.queued_bytes.fetch_add(cost as u64, Ordering::Relaxed);
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.tracer.record(SpanKind::JobSubmit, id, None, || format!("cost_bytes={cost}"));
        self.inner.not_empty.notify_one();
        (handle, Ok(()))
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_impl(false);
    }
}

/// One simulation attempt: cache lookup (checksum-verified), single-flight
/// leadership, planner run and cache fill, with deterministic
/// corruption injection on the fill when a fault plan says so.
fn simulate_once(
    inner: &PoolInner,
    machine: &MachineConfig,
    program: &Program,
    bypass: bool,
    _job_id: u64,
) -> Result<SimResult, JobError> {
    let key = CacheKey::new(machine, program);
    if bypass || inner.cache.capacity() == 0 {
        let report = Arc::new(cold_simulate(inner, machine, program)?);
        return Ok(SimResult { report, cache_hit: false, key });
    }
    loop {
        match inner.cache.get_verified(&key) {
            CacheLookup::Hit(report) => {
                inner.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(SimResult { report, cache_hit: true, key });
            }
            CacheLookup::Corrupt => {
                // Checksum mismatch: the entry has been evicted; fall
                // through and recompute (the next loop iteration misses).
                inner.stats.cache_corruptions.fetch_add(1, Ordering::Relaxed);
            }
            CacheLookup::Miss => {}
        }
        // Single-flight: the first job to miss on this key becomes the
        // leader; concurrent same-key jobs wait for its cache fill
        // instead of re-running the planner.
        let waiter = {
            let mut inflight = sync::lock(&inner.inflight);
            match inflight.get(&key) {
                Some(w) => Some(Arc::clone(w)),
                None => {
                    inflight.insert(key, Arc::new(Inflight::default()));
                    None
                }
            }
        };
        let Some(waiter) = waiter else {
            // Leader. The guard releases waiters even if the planner
            // panics below.
            let _guard = InflightGuard { inner, key };
            // Re-check the cache first: a previous leader may have filled
            // it between this job's miss and its registration.
            if let CacheLookup::Hit(report) = inner.cache.get_verified(&key) {
                inner.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(SimResult { report, cache_hit: true, key });
            }
            // Simulate, fill, release the waiters (guard drop).
            let report = Arc::new(cold_simulate(inner, machine, program)?);
            inner.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            fill_cache(inner, key, &report);
            return Ok(SimResult { report, cache_hit: false, key });
        };
        let mut done = sync::lock(&waiter.done);
        while !*done {
            done = sync::wait(&waiter.cv, done);
        }
        // Loop to re-check the cache: if the leader failed, this job
        // takes over as the next leader.
    }
}

/// One *cold* (uncached) planner run: simulates through
/// [`Machine::simulate_parallel`] so a large job's unique cold subtrees
/// fan out across the pool's thread budget, and folds the planner's
/// shape-memo / arena / fan-out instrumentation into [`RuntimeStats`].
/// The report is byte-identical to a sequential `Machine::simulate` —
/// the parallel pass only pre-warms the outcome cache — so cache fills
/// and single-flight followers observe the exact same value either way.
fn cold_simulate(
    inner: &PoolInner,
    machine: &MachineConfig,
    program: &Program,
) -> Result<PerfReport, JobError> {
    // Split the thread budget across concurrent cold simulations: each
    // runs on a worker thread already, so N distinct-key cold jobs each
    // fanning out to the full worker count would spawn ~N^2 scoped
    // threads under a cold burst. The guard decrements even if the
    // planner panics (the worker loop respawns).
    struct ColdGuard<'a>(&'a AtomicUsize);
    impl Drop for ColdGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let in_flight = inner.cold_inflight.fetch_add(1, Ordering::Relaxed) + 1;
    let _guard = ColdGuard(&inner.cold_inflight);
    let threads = (inner.stats.workers.len() / in_flight).max(1);
    let (report, cold) =
        Machine::new(machine.clone()).simulate_parallel(program, threads).map_err(JobError::Sim)?;
    inner.stats.record_cold(&cold);
    Ok(report)
}

/// Fills the cache for `key`, corrupting the stored checksum when the
/// fault plan fires for this key (keyed by cache key, not job, so a
/// poisoned workload reproduces exactly under a given seed).
fn fill_cache(inner: &PoolInner, key: CacheKey, report: &Arc<PerfReport>) {
    let corrupt = inner.supervisor.plan.as_ref().is_some_and(|plan| {
        plan.fires(FaultSite::CacheCorrupt, key.machine ^ key.program.rotate_left(32), 0)
    });
    if corrupt {
        inner.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
        let checksum = crate::cache::report_checksum(report) ^ 0xDEAD_BEEF_DEAD_BEEF;
        inner.cache.insert_with_checksum(key, Arc::clone(report), checksum);
    } else {
        inner.cache.insert(key, Arc::clone(report));
    }
}

/// Worker thread entry: runs [`worker_loop`] behind an unwind barrier and
/// respawns it (same OS thread, fresh loop) if it ever panics, so the
/// pool never shrinks permanently.
fn worker_entry(inner: &PoolInner, worker_index: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(inner, worker_index))) {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                inner.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn worker_loop(inner: &PoolInner, worker_index: usize) {
    loop {
        let job = {
            let mut q = sync::lock(&inner.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = sync::wait(&inner.not_empty, q);
            }
        };
        let Some(job) = job else { return };
        inner.not_full.notify_one();
        inner.stats.queued_bytes.fetch_sub(job.cost as u64, Ordering::Relaxed);
        let queue_wait = job.enqueued.elapsed();
        inner.stats.queue_wait_nanos.fetch_add(queue_wait.as_nanos() as u64, Ordering::Relaxed);
        inner.tracer.observe(Stage::QueueWait, queue_wait);

        if job.cancelled.load(Ordering::SeqCst) {
            (job.run)(Disposition::Cancelled);
            inner.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
            inner.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            inner.tracer.record(SpanKind::JobSettle, job.id, None, || "cancelled".to_string());
            continue;
        }
        if let Some(deadline) = job.deadline {
            let now = Instant::now();
            if now > deadline {
                (job.run)(Disposition::Expired { late_by: now - deadline });
                inner.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
                inner.stats.expired.fetch_add(1, Ordering::Relaxed);
                inner.tracer.record(SpanKind::JobSettle, job.id, None, || "expired".to_string());
                continue;
            }
        }
        let id = job.id;
        inner
            .tracer
            .record(SpanKind::JobStart, id, Some(queue_wait), || format!("worker={worker_index}"));
        let t0 = Instant::now();
        let ran = (job.run)(Disposition::Run);
        inner.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        let busy = t0.elapsed();
        if let Some(ok) = ran {
            inner.stats.record_run(worker_index, busy, ok);
            inner.tracer.observe(Stage::Run, busy);
            inner.tracer.record(SpanKind::JobSettle, id, Some(busy), || format!("ok={ok}"));
        }
        // Worker-kill injection: panic the loop *after* the job handle
        // resolved, exercising the respawn path without stranding
        // joiners. Deterministic per job id.
        if let Some(plan) = &inner.supervisor.plan {
            if plan.fires(FaultSite::WorkerKill, id, 0) {
                inner.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
                resume_unwind_quietly();
            }
        }
    }
}

/// Unwinds the worker loop without going through `panic!` (no panic-hook
/// message on stderr; the respawn barrier in [`worker_entry`] catches it).
fn resume_unwind_quietly() -> ! {
    std::panic::resume_unwind(Box::new("injected worker kill"))
}
