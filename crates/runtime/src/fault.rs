//! cf-fault: deterministic, seeded fault injection for the simulation
//! service.
//!
//! A [`FaultPlan`] decides, purely from a hash of `(seed, site, token,
//! attempt, op)`, whether a given fault site fires. Decisions are
//! **stateless**: they depend only on the plan's seed and the identity of
//! the decision point, never on wall-clock time, thread interleaving or
//! how many faults fired before. That is what makes chaos runs
//! reproducible — the same manifest under the same seed panics the same
//! jobs at the same attempts on every run, regardless of worker count.
//!
//! Sites (see [`FaultSite`]):
//!
//! * **WorkerPanic** — the job body panics on a worker (keyed by job
//!   token and attempt, so a retried attempt draws a fresh decision);
//! * **JobLatency** — the job body sleeps an extra [`FaultSpec::latency`]
//!   before running (timing-only; never changes results);
//! * **CacheCorrupt** — the plan-cache entry filled under a key is
//!   corrupted (keyed by the *cache key*, so a poisoned workload
//!   reproduces exactly; detected by the cache's FNV checksum and
//!   recomputed);
//! * **DeadlineExpiry** — the job behaves as if its deadline passed
//!   (retryable, since a fault-free rerun would have made it);
//! * **MemFault** — a DMA transfer inside the functional executor fails
//!   transiently (keyed per transfer, threaded through
//!   [`cf_core::fault::DmaFaultHook`]);
//! * **WorkerKill** — the worker loop itself panics *after* completing a
//!   job, exercising the supervisor's respawn path.

use std::fmt;
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside the job body.
    WorkerPanic,
    /// Artificial latency before the job body.
    JobLatency,
    /// Corrupt the plan-cache fill for a key.
    CacheCorrupt,
    /// Pretend the job's deadline expired.
    DeadlineExpiry,
    /// Fail one DMA transfer inside `cf-core` functional execution.
    MemFault,
    /// Panic the worker loop after a job completes (respawn test).
    WorkerKill,
}

impl FaultSite {
    fn tag(self) -> u64 {
        match self {
            FaultSite::WorkerPanic => 0x01,
            FaultSite::JobLatency => 0x02,
            FaultSite::CacheCorrupt => 0x03,
            FaultSite::DeadlineExpiry => 0x04,
            FaultSite::MemFault => 0x05,
            FaultSite::WorkerKill => 0x06,
        }
    }
}

/// Per-site injection rates (each a probability in `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Rate of injected job-body panics (per attempt).
    pub panic_rate: f64,
    /// Rate of injected artificial latency (per attempt).
    pub latency_rate: f64,
    /// How long an injected latency fault sleeps.
    pub latency: Duration,
    /// Rate of corrupted cache fills (per cache key).
    pub corrupt_rate: f64,
    /// Rate of injected deadline expiries (per attempt).
    pub expire_rate: f64,
    /// Rate of transient DMA faults (per transfer — keep small).
    pub mem_rate: f64,
    /// Rate of worker-loop kills (per completed job).
    pub kill_rate: f64,
}

impl FaultSpec {
    /// All rates zero: a plan that never fires.
    pub fn none() -> Self {
        FaultSpec {
            panic_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::from_millis(1),
            corrupt_rate: 0.0,
            expire_rate: 0.0,
            mem_rate: 0.0,
            kill_rate: 0.0,
        }
    }

    /// The chaos-test mix from the acceptance criteria: 10 % worker
    /// panics, 5 % cache corruption.
    pub fn chaos() -> Self {
        FaultSpec { panic_rate: 0.10, corrupt_rate: 0.05, ..FaultSpec::none() }
    }

    /// Parses a `--fault-spec` string: comma-separated `site=rate` pairs,
    /// e.g. `panic=0.1,corrupt=0.05,latency=0.02,mem=0.001,expire=0.01,kill=0.005`.
    /// `latency_ms=N` sets the injected latency duration.
    ///
    /// # Errors
    ///
    /// A message naming the unparseable pair.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = FaultSpec::none();
        for pair in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                pair.split_once('=').ok_or_else(|| format!("bad fault-spec item `{pair}`"))?;
            let bad = |_| format!("bad fault-spec value `{value}` for `{key}`");
            match key {
                "panic" => spec.panic_rate = value.parse().map_err(bad)?,
                "latency" => spec.latency_rate = value.parse().map_err(bad)?,
                "latency_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("bad fault-spec value `{value}` for `{key}`"))?;
                    spec.latency = Duration::from_millis(ms);
                }
                "corrupt" => spec.corrupt_rate = value.parse().map_err(bad)?,
                "expire" => spec.expire_rate = value.parse().map_err(bad)?,
                "mem" => spec.mem_rate = value.parse().map_err(bad)?,
                "kill" => spec.kill_rate = value.parse().map_err(bad)?,
                other => return Err(format!("unknown fault site `{other}`")),
            }
        }
        for (name, rate) in [
            ("panic", spec.panic_rate),
            ("latency", spec.latency_rate),
            ("corrupt", spec.corrupt_rate),
            ("expire", spec.expire_rate),
            ("mem", spec.mem_rate),
            ("kill", spec.kill_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate `{name}` must be in [0, 1], got {rate}"));
            }
        }
        Ok(spec)
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::WorkerPanic => self.panic_rate,
            FaultSite::JobLatency => self.latency_rate,
            FaultSite::CacheCorrupt => self.corrupt_rate,
            FaultSite::DeadlineExpiry => self.expire_rate,
            FaultSite::MemFault => self.mem_rate,
            FaultSite::WorkerKill => self.kill_rate,
        }
    }
}

/// A seeded, stateless fault decider (see the module docs for the
/// determinism argument).
#[derive(Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan").field("seed", &self.seed).field("spec", &self.spec).finish()
    }
}

impl FaultPlan {
    /// A plan that injects per `spec`, decided by hashing against `seed`.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan { seed, spec }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-site rates.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Whether `site` fires for decision point `(token, attempt, op)`.
    ///
    /// `token` identifies the job (its submission id) or, for
    /// [`FaultSite::CacheCorrupt`], the cache key; `attempt` is the retry
    /// attempt (0-based); `op` numbers sub-decisions inside one attempt
    /// (the DMA transfer index for [`FaultSite::MemFault`], 0 elsewhere).
    pub fn fires_at(&self, site: FaultSite, token: u64, attempt: u32, op: u64) -> bool {
        let rate = self.spec.rate(site);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = mix(mix(mix(mix(self.seed, site.tag()), token), u64::from(attempt)), op);
        // Map the hash to [0, 1) with 53 bits of precision.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }

    /// [`fires_at`](FaultPlan::fires_at) with `op = 0` — the common
    /// per-attempt decision.
    pub fn fires(&self, site: FaultSite, token: u64, attempt: u32) -> bool {
        self.fires_at(site, token, attempt, 0)
    }

    /// Deterministic jitter in `[0, 1)` for backoff randomisation, keyed
    /// like a fault decision so retried attempts spread out reproducibly.
    pub fn jitter(&self, token: u64, attempt: u32) -> f64 {
        let h = mix(mix(mix(self.seed, 0x6A), token), u64::from(attempt));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64-style finalizing mix: uniformly scrambles `state ⊕ value`.
/// Shared with [`crate::netfault`] so wire-fault decisions draw from the
/// same family of stateless hashes as job faults.
pub(crate) fn mix(state: u64, value: u64) -> u64 {
    let mut z = state ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice — the content checksum the plan cache stores
/// next to every entry (corrupt hits fail the comparison and fall back to
/// recomputation).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(7, FaultSpec::chaos());
        let b = FaultPlan::new(7, FaultSpec::chaos());
        let c = FaultPlan::new(8, FaultSpec::chaos());
        let mut diverged = false;
        for token in 0..200 {
            for attempt in 0..3 {
                let d = a.fires(FaultSite::WorkerPanic, token, attempt);
                assert_eq!(d, b.fires(FaultSite::WorkerPanic, token, attempt));
                diverged |= d != c.fires(FaultSite::WorkerPanic, token, attempt);
            }
        }
        assert!(diverged, "different seeds never diverged across 600 decisions");
    }

    #[test]
    fn rate_is_respected_empirically() {
        let plan = FaultPlan::new(42, FaultSpec::chaos());
        let fired = (0..10_000).filter(|&t| plan.fires(FaultSite::WorkerPanic, t, 0)).count();
        // 10 % nominal; allow generous slack, this is a hash not an RNG test.
        assert!((700..=1300).contains(&fired), "fired {fired}/10000 at nominal 10%");
    }

    #[test]
    fn zero_and_full_rates_short_circuit() {
        let none = FaultPlan::new(1, FaultSpec::none());
        assert!(!none.fires(FaultSite::MemFault, 0, 0));
        let mut all = FaultSpec::none();
        all.panic_rate = 1.0;
        let all = FaultPlan::new(1, all);
        assert!(all.fires(FaultSite::WorkerPanic, 123, 4));
    }

    #[test]
    fn spec_parses_and_rejects() {
        let spec = FaultSpec::parse("panic=0.1, corrupt=0.05,latency=0.2,latency_ms=7").unwrap();
        assert_eq!(spec.panic_rate, 0.1);
        assert_eq!(spec.corrupt_rate, 0.05);
        assert_eq!(spec.latency_rate, 0.2);
        assert_eq!(spec.latency, Duration::from_millis(7));
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("panic=2.0").is_err());
        assert!(FaultSpec::parse("panic").is_err());
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::none());
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn jitter_is_in_unit_range() {
        let plan = FaultPlan::new(9, FaultSpec::none());
        for t in 0..100 {
            let j = plan.jitter(t, (t % 5) as u32);
            assert!((0.0..1.0).contains(&j));
        }
    }
}
