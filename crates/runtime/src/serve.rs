//! The manifest-serving engine behind the `cfserve` binary.
//!
//! Lives in the library (rather than the binary) so the chaos tests can
//! drive the *exact* production path — parse, resolve, submit, join in
//! submission order, render JSON — and assert byte-identical output
//! between fault-free and fault-injected runs.
//!
//! Output determinism: every [`JobRecord`] carries only fields that are
//! pure functions of the manifest (no wall-clock, no cache-hit flags, no
//! worker identities), so [`render_record_json`] of the same manifest is
//! byte-identical across worker counts, cache settings and — because
//! supervised retries and checksum-verified cache fills mask transient
//! faults — across seeded fault plans whose faults all heal.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cf_core::{Machine, MachineConfig, PerfReport};
use cf_isa::Program;
use cf_tensor::fingerprint::StableHasher;
use serde_json::Value;

use crate::cache::CacheKey;
use crate::fault::{fnv1a, FaultPlan};
use crate::job::{JobError, JobHandle, JobOptions};
use crate::journal::{JobEntry, Journal, JournalError, RunHeader, JOURNAL_VERSION};
use crate::manifest::{self, JobKind, JobSpec, ManifestError};
use crate::obs::{Obs, SpanKind, Stage, Tracer};
use crate::scheduler::{
    ExecResult, LoadPolicy, ProfiledSimResult, Runtime, RuntimeConfig, SimResult,
};
use crate::stats::StatsSnapshot;
use crate::supervisor::{next_retry, BreakerConfig, RetryPolicy};

/// Default [`JournalOptions::compact_threshold`]: 1 MiB.
pub const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

/// Where to journal a serve run, and whether to resume from it.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// The journal file (created/truncated unless resuming).
    pub path: PathBuf,
    /// Resume: verify the journal's header against the current run, skip
    /// jobs it already records and replay their outcomes.
    pub resume: bool,
    /// Compact the journal — rewrite it without failed entries and torn
    /// tails — once its on-disk size reaches this many bytes, both on
    /// resume and live after appends (0 disables;
    /// [`DEFAULT_COMPACT_THRESHOLD`] by default).
    pub compact_threshold: u64,
}

impl JournalOptions {
    /// Journal to `path` (fresh run, default compaction threshold).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        JournalOptions {
            path: path.into(),
            resume: false,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        }
    }
}

/// How to run a manifest.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Plan/report cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Retry policy for the supervised jobs.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds (disabled by default).
    pub breaker: BreakerConfig,
    /// Deterministic fault-injection plan (`None` = no injection).
    pub fault_plan: Option<FaultPlan>,
    /// Write-ahead journal for crash-consistent resume (`None` = off).
    pub journal: Option<JournalOptions>,
    /// Admission-control limits forwarded to the runtime.
    pub load: LoadPolicy,
    /// Crash drill: abort the run (as `ServeError::Aborted`) after this
    /// many jobs have settled, leaving the journal exactly as a process
    /// crash at that point would. Test/ops hook; `None` in production.
    pub abort_after_jobs: Option<usize>,
    /// Observability hub: when set, the run records spans into the hub's
    /// tracer and publishes its live stats + load limits so the HTTP
    /// status server can answer `/healthz`, `/stats` and `/trace` while
    /// the run is in flight.
    pub obs: Option<Arc<Obs>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            cache_capacity: 256,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            fault_plan: None,
            journal: None,
            load: LoadPolicy::default(),
            abort_after_jobs: None,
            obs: None,
        }
    }
}

/// Why a serve run did not produce a report.
#[derive(Debug)]
pub enum ServeError {
    /// The manifest failed validation (nothing ran).
    Manifest(ManifestError),
    /// The journal could not be created, resumed or appended to.
    Journal(JournalError),
    /// The configured [`ServeOptions::abort_after_jobs`] crash drill
    /// fired.
    Aborted {
        /// Jobs settled (and journaled, when a journal is on) before the
        /// abort.
        journaled: usize,
    },
    /// Writing a `trace_json=` per-job Chrome trace file failed.
    Trace {
        /// The requested output path.
        path: String,
        /// The underlying message.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Manifest(e) => write!(f, "{e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::Aborted { journaled } => {
                write!(f, "run aborted by crash drill after {journaled} job(s)")
            }
            ServeError::Trace { path, message } => {
                write!(f, "trace file `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Manifest(e) => Some(e),
            ServeError::Journal(e) => Some(e),
            ServeError::Aborted { .. } | ServeError::Trace { .. } => None,
        }
    }
}

impl From<ManifestError> for ServeError {
    fn from(e: ManifestError) -> Self {
        ServeError::Manifest(e)
    }
}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

/// The deterministic payload of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// A performance simulation's headline numbers.
    Sim {
        /// End-to-end modelled seconds.
        makespan_s: f64,
        /// Steady-state modelled seconds.
        steady_s: f64,
        /// Attained tera-ops/s.
        attained_tops: f64,
        /// Fraction of machine peak attained.
        peak_fraction: f64,
        /// Root-level operational intensity.
        root_intensity: f64,
    },
    /// A functional execution's memory digest.
    Exec {
        /// External-memory elements.
        elems: usize,
        /// Stable content hash of the final memory.
        memory_hash: u64,
    },
}

/// One job's result, in submission (= manifest) order.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission index (0-based, manifest order).
    pub index: usize,
    /// The spec's output tag.
    pub label: String,
    /// The spec's machine name.
    pub machine: String,
    /// `"simulate"` or `"exec"`.
    pub mode: &'static str,
    /// The payload, or why the job ultimately failed.
    pub outcome: Result<JobOutput, JobError>,
}

/// Everything a serve run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-job records in submission order.
    pub records: Vec<JobRecord>,
    /// Runtime counters at the end of the run.
    pub stats: StatsSnapshot,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time from first submission to last join.
    pub wall: Duration,
}

impl ServeReport {
    /// Jobs whose outcome is an error.
    pub fn failures(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// The failed records (submission order).
    pub fn failed_records(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| r.outcome.is_err())
    }
}

enum Pending {
    Sim(JobHandle<SimResult>),
    SimProfiled(JobHandle<ProfiledSimResult>),
    Exec(JobHandle<ExecResult>),
}

/// Hottest-signature count profiled serve jobs keep (the aggregate on
/// `/metrics` is per level, so the signature list only bounds memory).
const PROFILE_TOP_SIGNATURES: usize = 16;

/// One fully-resolved job of the expanded (repeat-flattened) run.
struct FlatJob {
    label: String,
    machine_name: String,
    mode: &'static str,
    machine: MachineConfig,
    program: Arc<Program>,
    kind: JobKind,
    profile: bool,
    trace_json: Option<String>,
}

/// Derives the run-identity header the journal binds to: a fingerprint
/// of the expanded job list (labels, machine fingerprints, program
/// content hashes, modes, exec seeds), the machine set, and the fault
/// plan. Everything a job's deterministic output depends on.
fn compute_run_header(flat: &[FlatJob], opts: &ServeOptions) -> RunHeader {
    let mut manifest_src = String::new();
    let mut machines_src = String::new();
    for (i, job) in flat.iter().enumerate() {
        let key = CacheKey::new(&job.machine, &job.program);
        let seed = match job.kind {
            JobKind::Exec { seed } => seed.to_string(),
            JobKind::Simulate => "-".to_string(),
        };
        manifest_src.push_str(&format!(
            "{i}|{}|{}|{:016x}|{:016x}|{}|{seed}\n",
            job.label, job.machine_name, key.machine, key.program, job.mode,
        ));
        machines_src.push_str(&job.machine.fingerprint_hex());
        machines_src.push('\n');
    }
    let (fault_seed, fault_spec) = match &opts.fault_plan {
        Some(plan) => (Some(plan.seed()), fnv1a(format!("{:?}", plan.spec()).as_bytes())),
        None => (None, 0),
    };
    RunHeader {
        version: JOURNAL_VERSION,
        manifest: fnv1a(manifest_src.as_bytes()),
        machines: fnv1a(machines_src.as_bytes()),
        fault_seed,
        fault_spec,
        jobs: flat.len() as u64,
    }
}

/// The deterministic simulate-job payload of a performance report
/// (shared by the plain and profiled paths — and by the HTTP job API —
/// so their records match byte-for-byte).
pub(crate) fn sim_output(r: &PerfReport) -> JobOutput {
    JobOutput::Sim {
        makespan_s: r.makespan_seconds,
        steady_s: r.steady_seconds,
        attained_tops: r.attained_ops / 1e12,
        peak_fraction: r.peak_fraction,
        root_intensity: r.root_intensity,
    }
}

/// The deterministic exec-job payload of a final memory image (shared by
/// the manifest path and the HTTP job API, so their records match).
pub(crate) fn exec_output(memory: &[f32]) -> JobOutput {
    let mut hasher = StableHasher::new();
    for v in memory {
        hasher.write_f32(*v);
    }
    JobOutput::Exec { elems: memory.len(), memory_hash: hasher.finish() }
}

/// Joins one pending handle into the deterministic job output.
/// Profiled handles are settled in [`RunState::settle`] instead (they
/// also feed the tracer's profile aggregate).
fn join_pending(pending: Pending) -> Result<JobOutput, JobError> {
    match pending {
        Pending::Sim(h) => h.join().map(|sim| sim_output(&sim.report)),
        Pending::SimProfiled(h) => h.join().map(|sim| sim_output(&sim.report)),
        Pending::Exec(h) => h.join().map(|exec| exec_output(&exec.memory)),
    }
}

/// The mutable per-run state the settle path threads through: outcomes
/// by index, the journal, and the crash-drill countdown.
struct RunState<'a> {
    flat: &'a [FlatJob],
    outcomes: Vec<Option<Result<JobOutput, JobError>>>,
    journal: Option<Journal>,
    abort_after: Option<usize>,
    settled_fresh: usize,
    tracer: Arc<Tracer>,
    compact_threshold: u64,
    compactions: u64,
    bytes_reclaimed: u64,
}

impl RunState<'_> {
    /// Joins and records one freshly-run job, journaling it durably
    /// before the outcome becomes visible in the report (write-ahead
    /// order), then fires the crash drill if its countdown reached zero.
    ///
    /// Profiled jobs additionally fold their attribution into the
    /// tracer's `/metrics` aggregate and, when `trace_json=` asked for
    /// it, write the per-job Chrome trace file.
    fn settle(&mut self, index: usize, pending: Pending) -> Result<(), ServeError> {
        let (outcome, profiled_ok) = match pending {
            Pending::SimProfiled(h) => {
                let joined = h.join();
                let ok = joined.is_ok();
                if let Ok(sim) = &joined {
                    self.tracer.absorb_profile(&self.flat[index].machine_name, &sim.profile);
                }
                (joined.map(|sim| sim_output(&sim.report)), ok)
            }
            other => (join_pending(other), false),
        };
        self.record(index, outcome)?;
        if profiled_ok {
            if let Some(path) = &self.flat[index].trace_json {
                write_job_trace(path, &self.flat[index], &self.tracer)?;
            }
        }
        Ok(())
    }

    fn record(
        &mut self,
        index: usize,
        outcome: Result<JobOutput, JobError>,
    ) -> Result<(), ServeError> {
        if let Some(journal) = &mut self.journal {
            let job = &self.flat[index];
            let t0 = Instant::now();
            journal.append(&JobEntry {
                index: index as u64,
                label: job.label.clone(),
                machine: job.machine_name.clone(),
                mode: job.mode,
                outcome: outcome.clone().map_err(|e| e.to_string()),
            })?;
            let elapsed = t0.elapsed();
            self.tracer.observe(Stage::JournalAppend, elapsed);
            let ok = outcome.is_ok();
            self.tracer.record(SpanKind::JournalAppend, index as u64, Some(elapsed), || {
                format!("ok={ok}")
            });
            if let Some(stats) = journal.maybe_compact(self.compact_threshold)? {
                self.compactions += 1;
                self.bytes_reclaimed += stats.reclaimed();
                self.tracer.record(SpanKind::JournalCompact, index as u64, None, || {
                    format!(
                        "live bytes {}->{} dropped={}",
                        stats.bytes_before, stats.bytes_after, stats.dropped
                    )
                });
            }
        }
        self.outcomes[index] = Some(outcome);
        self.settled_fresh += 1;
        if self.abort_after.is_some_and(|n| self.settled_fresh >= n) {
            return Err(ServeError::Aborted { journaled: self.settled_fresh });
        }
        Ok(())
    }
}

/// Parses `text` and runs every job it describes.
///
/// # Errors
///
/// Grammar, machine-resolution and program-resolution errors — all
/// *validation* failures, surfaced before any job runs — plus journal
/// create/resume failures (including [`JournalError::Mismatch`] when
/// resuming onto a different run). Individual job failures do **not**
/// error here: they become `Err` outcomes in the report (graceful
/// degradation).
pub fn serve_manifest(text: &str, opts: &ServeOptions) -> Result<ServeReport, ServeError> {
    let specs = manifest::parse_manifest(text)?;
    serve_specs(&specs, opts)
}

/// [`serve_manifest`] for already-parsed specs.
///
/// # Errors
///
/// Machine-/program-resolution and journal failures; see
/// [`serve_manifest`].
pub fn serve_specs(specs: &[JobSpec], opts: &ServeOptions) -> Result<ServeReport, ServeError> {
    let tracer = match &opts.obs {
        Some(obs) => Arc::clone(obs.tracer()),
        None => Arc::new(Tracer::disabled()),
    };
    let runtime = Runtime::new(RuntimeConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        retry: opts.retry.clone(),
        breaker: opts.breaker.clone(),
        fault_plan: opts.fault_plan.clone(),
        load: opts.load,
        tracer: Some(tracer),
        ..Default::default()
    });
    // Publish the live counters and load limits so a status server can
    // answer /healthz and /stats while the run is in flight.
    if let Some(obs) = &opts.obs {
        obs.publish(runtime.stats_arc(), runtime.load_policy());
    }
    let result = serve_specs_on(specs, opts, &runtime);
    runtime.shutdown();
    result
}

/// [`serve_specs`] on an externally-owned runtime: the caller constructs
/// the pool (and publishes it to its [`Obs`] hub), this function only
/// submits/joins/journals, and the pool stays alive afterwards — the
/// shape `cfserve --listen` needs to share one pool (and one stats
/// registry) between the manifest run and the HTTP job API.
///
/// # Errors
///
/// Machine-/program-resolution and journal failures; see
/// [`serve_manifest`].
pub fn serve_specs_on(
    specs: &[JobSpec],
    opts: &ServeOptions,
    runtime: &Runtime,
) -> Result<ServeReport, ServeError> {
    // Resolve every program and machine up front (shared across repeats
    // via Arc) so validation errors abort before any job runs.
    let mut flat: Vec<FlatJob> = Vec::new();
    for spec in specs {
        let program = Arc::new(manifest::resolve_program(&spec.source)?);
        let machine = manifest::machine_by_name(&spec.machine).ok_or_else(|| {
            // Parsing already validated the name; this guards direct
            // `serve_specs` callers handing in unvalidated specs.
            ManifestError::UnknownMachine { name: spec.machine.clone(), line: 0 }
        })?;
        let mode = match spec.kind {
            JobKind::Simulate => "simulate",
            JobKind::Exec { .. } => "exec",
        };
        for _ in 0..spec.repeat {
            flat.push(FlatJob {
                label: spec.label.clone(),
                machine_name: spec.machine.clone(),
                mode,
                machine: machine.clone(),
                program: Arc::clone(&program),
                kind: spec.kind,
                profile: spec.profile,
                trace_json: spec.trace_json.clone(),
            });
        }
    }

    let tracer = Arc::clone(runtime.tracer());

    // Journal setup before any job runs: a resume that fails header
    // verification must abort without submitting anything.
    let header = compute_run_header(&flat, opts);
    let mut replayed: HashMap<u64, JobEntry> = HashMap::new();
    let mut resume_compactions = 0u64;
    let mut resume_reclaimed = 0u64;
    let journal = match &opts.journal {
        Some(j) if j.resume => {
            let (journal, recovery) = Journal::resume_opts(&j.path, &header, j.compact_threshold)?;
            if let Some(stats) = recovery.compaction {
                resume_compactions = 1;
                resume_reclaimed = stats.reclaimed();
                tracer.record(SpanKind::JournalCompact, 0, None, || {
                    format!(
                        "resume bytes {}->{} dropped={}",
                        stats.bytes_before, stats.bytes_after, stats.dropped
                    )
                });
            }
            for entry in recovery.entries {
                replayed.insert(entry.index, entry);
            }
            Some(journal)
        }
        Some(j) => Some(Journal::create(&j.path, &header)?),
        None => None,
    };

    let workers = runtime.worker_count();
    let t0 = Instant::now();

    let resumed = replayed.len() as u64;
    let mut state = RunState {
        flat: &flat,
        outcomes: (0..flat.len()).map(|_| None).collect(),
        journal,
        abort_after: opts.abort_after_jobs,
        settled_fresh: 0,
        tracer,
        compact_threshold: opts.journal.as_ref().map_or(0, |j| j.compact_threshold),
        compactions: 0,
        bytes_reclaimed: 0,
    };

    // Submit in manifest order and join in submission order, so both the
    // record list and the journal are deterministic. Replayed jobs are
    // answered from the journal without resubmitting; admission-control
    // sheds are absorbed by settling the oldest pending job (which frees
    // capacity) or, with nothing pending, by backing off inside the retry
    // budget — a job whose sheds outlast the budget fails terminally.
    let mut pending: VecDeque<(usize, Pending)> = VecDeque::new();
    for (index, job) in flat.iter().enumerate() {
        if let Some(entry) = replayed.remove(&(index as u64)) {
            state.outcomes[index] = Some(match entry.outcome {
                Ok(output) => Ok(output),
                Err(message) => Err(JobError::Journaled(message)),
            });
            continue;
        }
        let mut shed_failures = 0u32;
        let first_try = Instant::now();
        loop {
            let (handle, admitted) = match job.kind {
                JobKind::Simulate if job.profile => {
                    let (h, a) = runtime.submit_simulate_profiled_checked(
                        JobOptions::default(),
                        job.machine.clone(),
                        Arc::clone(&job.program),
                        PROFILE_TOP_SIGNATURES,
                    );
                    (Pending::SimProfiled(h), a)
                }
                JobKind::Simulate => {
                    let (h, a) = runtime.submit_simulate_checked(
                        JobOptions::default(),
                        job.machine.clone(),
                        Arc::clone(&job.program),
                    );
                    (Pending::Sim(h), a)
                }
                JobKind::Exec { seed } => {
                    let (h, a) = runtime.submit_exec_checked(
                        JobOptions::default(),
                        job.machine.clone(),
                        Arc::clone(&job.program),
                        seed,
                    );
                    (Pending::Exec(h), a)
                }
            };
            match admitted {
                Ok(()) => {
                    pending.push_back((index, handle));
                    break;
                }
                Err(shed @ JobError::Shed { .. }) => {
                    if let Some((settled_index, settled)) = pending.pop_front() {
                        // Settling the oldest in-flight job frees
                        // capacity; resubmit right after.
                        state.settle(settled_index, settled)?;
                    } else {
                        shed_failures += 1;
                        match next_retry(&opts.retry, shed_failures, first_try.elapsed(), 1.0) {
                            Some(delay) => std::thread::sleep(delay),
                            None => {
                                // Out of retry budget: the shed is this
                                // job's terminal outcome.
                                state.record(index, Err(shed))?;
                                break;
                            }
                        }
                    }
                }
                Err(other) => {
                    state.record(index, Err(other))?;
                    break;
                }
            }
        }
    }
    while let Some((index, handle)) = pending.pop_front() {
        state.settle(index, handle)?;
    }

    let wall = t0.elapsed();
    runtime.stats().resumed_jobs.fetch_add(resumed, Ordering::Relaxed);
    if let Some(journal) = &state.journal {
        runtime.stats().journal_bytes.fetch_add(journal.bytes_appended(), Ordering::Relaxed);
    }
    runtime
        .stats()
        .journal_compactions
        .fetch_add(resume_compactions + state.compactions, Ordering::Relaxed);
    runtime
        .stats()
        .journal_bytes_reclaimed
        .fetch_add(resume_reclaimed + state.bytes_reclaimed, Ordering::Relaxed);
    let mut stats = runtime.stats().snapshot();
    stats.spans_dropped = state.tracer.dropped();

    let records = state
        .outcomes
        .into_iter()
        .enumerate()
        .map(|(index, outcome)| JobRecord {
            index,
            label: flat[index].label.clone(),
            machine: flat[index].machine_name.clone(),
            mode: flat[index].mode,
            // Every index was either replayed, settled or recorded as a
            // terminal shed above; `None` cannot survive to here.
            outcome: outcome.map_or(Err(JobError::Shutdown), |o| o),
        })
        .collect();
    Ok(ServeReport { records, stats, workers, wall })
}

/// Writes one profiled job's Chrome Trace Event JSON: the simulation
/// timeline (coarse per-level DMA/compute tracks plus fine pipeline-
/// stage tracks) merged with the runtime tracer's span tracks into one
/// `chrome://tracing`-loadable array.
fn write_job_trace(path: &str, job: &FlatJob, tracer: &Tracer) -> Result<(), ServeError> {
    let err = |message: String| ServeError::Trace { path: path.to_string(), message };
    let depth = job.machine.levels.len().max(1);
    let tl = Machine::new(job.machine.clone())
        .timeline(&job.program, depth)
        .map_err(|e| err(e.to_string()))?;
    let mut events = cf_core::profile::chrome_trace_events(&job.machine, &tl);
    events.extend(tracer.chrome_events());
    std::fs::write(path, serde_json::to_string(&Value::Array(events)))
        .map_err(|e| err(e.to_string()))
}

/// Escapes a string for a JSON value position.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one record as the JSON-lines object `cfserve` prints.
///
/// Carries only deterministic fields; float formatting uses `{:?}`, which
/// round-trips exactly. The trailing `digest` field is the FNV-1a of the
/// *core* — every byte between `{"job":N,` and `,"digest"` — so the
/// record carries its own end-to-end integrity check
/// ([`verify_record_json`]). The id is deliberately excluded: the fleet
/// router rewrites backend-local ids to fleet-wide ones at the edge, and
/// that rewrite must not invalidate the digest.
///
/// Trace context and latency attribution are likewise **never** part of
/// the record body — they ride only as HTTP response headers
/// (`X-CF-Trace`, `X-CF-Attribution`), because they vary run-to-run
/// while the record must stay byte-identical across replays, failovers
/// and resubmissions.
pub fn render_record_json(record: &JobRecord) -> String {
    let head = format!(
        "\"label\":{},\"machine\":{},\"mode\":{}",
        json_str(&record.label),
        json_str(&record.machine),
        json_str(record.mode),
    );
    let core = match &record.outcome {
        Ok(JobOutput::Sim {
            makespan_s,
            steady_s,
            attained_tops,
            peak_fraction,
            root_intensity,
        }) => {
            format!(
                "{head},\"ok\":true,\"makespan_s\":{makespan_s:?},\"steady_s\":{steady_s:?},\"attained_tops\":{attained_tops:?},\"peak_fraction\":{peak_fraction:?},\"root_intensity\":{root_intensity:?}"
            )
        }
        Ok(JobOutput::Exec { elems, memory_hash }) => {
            format!("{head},\"ok\":true,\"elems\":{elems},\"memory_hash\":\"{memory_hash:016x}\"")
        }
        Err(e) => format!("{head},\"ok\":false,\"error\":{}", json_str(&e.to_string())),
    };
    format!("{{\"job\":{},{core},\"digest\":\"{:016x}\"}}", record.index, fnv1a(core.as_bytes()))
}

/// Checks a rendered record line against its embedded `digest` field
/// (and, when `expected_id` is given, against the leading `{"job":N,`
/// id). Any single-byte change to the core is detected — FNV-1a's
/// xor-and-odd-multiply steps are bijections, so flips never cancel at
/// fixed length. Returns `false` for anything that is not a well-formed
/// digest-stamped record.
pub fn verify_record_json(line: &str, expected_id: Option<u64>) -> bool {
    let Some(rest) = line.strip_prefix("{\"job\":") else {
        return false;
    };
    let Some(comma) = rest.find(',') else {
        return false;
    };
    let (id_part, tail) = rest.split_at(comma);
    if id_part.is_empty() || !id_part.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    if let Some(expected) = expected_id {
        if id_part.parse::<u64>() != Ok(expected) {
            return false;
        }
    }
    let tail = &tail[1..];
    // `json_str` escapes quotes inside values, so this marker can only
    // be the structural field — rfind keeps it out of the digest's core.
    let Some(marker) = tail.rfind(",\"digest\":\"") else {
        return false;
    };
    let core = &tail[..marker];
    let suffix = &tail[marker + ",\"digest\":\"".len()..];
    let Some(hex) = suffix.strip_suffix("\"}") else {
        return false;
    };
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return false;
    }
    match u64::from_str_radix(hex, 16) {
        Ok(digest) => digest == fnv1a(core.as_bytes()),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ServeOptions {
        ServeOptions { workers: 2, ..Default::default() }
    }

    #[test]
    fn serves_a_small_manifest_in_order() {
        let text = "workload=matmul order=64 repeat=2\nworkload=matmul order=64 mode=exec seed=3 label=x\n";
        let report = serve_manifest(text, &quick_opts()).unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.failures(), 0);
        assert_eq!(report.records[0].mode, "simulate");
        assert_eq!(report.records[2].mode, "exec");
        assert_eq!(report.records[2].label, "x");
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        // The repeat is answered by the cache.
        assert!(report.stats.cache_hits >= 1);
    }

    #[test]
    fn validation_errors_surface_before_running() {
        let err = serve_manifest("program=/no/such/file.cfasm\n", &quick_opts()).unwrap_err();
        assert!(matches!(err, ServeError::Manifest(ManifestError::Program { .. })), "{err}");
    }

    #[test]
    fn rendered_json_escapes_and_errors() {
        let record = JobRecord {
            index: 1,
            label: "a\"b".into(),
            machine: "f1".into(),
            mode: "simulate",
            outcome: Err(JobError::Panicked("boom".into())),
        };
        let line = render_record_json(&record);
        assert!(line.contains("\"label\":\"a\\\"b\""), "{line}");
        assert!(line.contains("\"ok\":false"), "{line}");
        assert!(line.contains("boom"), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(verify_record_json(&line, Some(1)), "{line}");
    }

    #[test]
    fn record_digest_round_trips_and_flags_any_flip() {
        let record = JobRecord {
            index: 7,
            label: "chaos".into(),
            machine: "f1".into(),
            mode: "simulate",
            outcome: Ok(JobOutput::Exec { elems: 4096, memory_hash: 0xDEAD_BEEF }),
        };
        let line = render_record_json(&record);
        assert!(line.contains(",\"digest\":\""), "{line}");
        assert!(verify_record_json(&line, None), "{line}");
        assert!(verify_record_json(&line, Some(7)), "{line}");
        // The wrong id fails even though the digest (which excludes the
        // id, so the router's rewrite survives) still matches.
        assert!(!verify_record_json(&line, Some(8)), "{line}");
        let rewritten = line.replacen("{\"job\":7,", "{\"job\":123,", 1);
        assert!(verify_record_json(&rewritten, Some(123)), "id rewrite keeps the digest valid");
        // Any single-byte corruption of the core is caught.
        let bytes = line.as_bytes();
        let core_start = "{\"job\":7,".len();
        let core_end = line.rfind(",\"digest\":\"").unwrap();
        for at in core_start..core_end {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= 0x01;
            let mutated = String::from_utf8_lossy(&mutated).to_string();
            assert!(!verify_record_json(&mutated, Some(7)), "flip at {at} undetected: {mutated}");
        }
        // Junk is rejected, not panicked on.
        assert!(!verify_record_json("", None));
        assert!(!verify_record_json("{\"job\":7}", None));
        assert!(!verify_record_json("{\"job\":7,\"ok\":true,\"digest\":\"xyz\"}", None));
    }

    #[test]
    fn profiled_jobs_match_unprofiled_output_and_feed_the_aggregate() {
        let obs = Obs::new(64);
        let plain = serve_manifest("workload=matmul order=64\n", &quick_opts()).unwrap();
        let profiled = serve_manifest(
            "workload=matmul order=64 profile=true\n",
            &ServeOptions { obs: Some(Arc::clone(&obs)), ..quick_opts() },
        )
        .unwrap();
        // Profiling must not change the deterministic record.
        assert_eq!(render_record_json(&plain.records[0]), render_record_json(&profiled.records[0]),);
        let (jobs, rows) = obs.tracer().profile_aggregate();
        assert_eq!(jobs, vec![("f1".to_string(), 1)]);
        assert!(!rows.is_empty());
        assert!(rows.iter().any(|r| r.stage_seconds.iter().sum::<f64>() > 0.0), "{rows:?}");
    }

    #[test]
    fn trace_json_writes_a_chrome_trace_file() {
        let dir = std::env::temp_dir().join(format!("cf-serve-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.trace.json");
        let manifest = format!("workload=matmul order=64 trace_json={}\n", path.to_string_lossy());
        let report = serve_manifest(&manifest, &quick_opts()).unwrap();
        assert_eq!(report.failures(), 0);
        let body = std::fs::read_to_string(&path).unwrap();
        let v = serde_json::from_str(&body).unwrap_or_else(|e| panic!("{e}"));
        let events = v.as_array().unwrap();
        assert!(!events.is_empty());
        // Every event is an object with ph/pid/tid/name.
        for e in events {
            let obj = e.as_object().unwrap();
            assert!(obj.get("ph").and_then(Value::as_str).is_some(), "{e}");
            assert!(obj.get("pid").and_then(Value::as_u64).is_some(), "{e}");
            assert!(obj.get("tid").and_then(Value::as_u64).is_some(), "{e}");
            assert!(obj.get("name").and_then(Value::as_str).is_some(), "{e}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_runs_render_byte_identical() {
        let text = "workload=matmul order=96 repeat=3\n";
        let a = serve_manifest(text, &quick_opts()).unwrap();
        let b = serve_manifest(
            text,
            &ServeOptions { workers: 1, cache_capacity: 0, ..Default::default() },
        )
        .unwrap();
        let ra: Vec<String> = a.records.iter().map(render_record_json).collect();
        let rb: Vec<String> = b.records.iter().map(render_record_json).collect();
        assert_eq!(ra, rb);
    }
}
