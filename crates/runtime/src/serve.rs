//! The manifest-serving engine behind the `cfserve` binary.
//!
//! Lives in the library (rather than the binary) so the chaos tests can
//! drive the *exact* production path — parse, resolve, submit, join in
//! submission order, render JSON — and assert byte-identical output
//! between fault-free and fault-injected runs.
//!
//! Output determinism: every [`JobRecord`] carries only fields that are
//! pure functions of the manifest (no wall-clock, no cache-hit flags, no
//! worker identities), so [`render_record_json`] of the same manifest is
//! byte-identical across worker counts, cache settings and — because
//! supervised retries and checksum-verified cache fills mask transient
//! faults — across seeded fault plans whose faults all heal.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cf_tensor::fingerprint::StableHasher;

use crate::fault::FaultPlan;
use crate::job::{JobError, JobHandle};
use crate::manifest::{self, JobKind, JobSpec, ManifestError};
use crate::scheduler::{ExecResult, Runtime, RuntimeConfig, SimResult};
use crate::stats::StatsSnapshot;
use crate::supervisor::{BreakerConfig, RetryPolicy};

/// How to run a manifest.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Plan/report cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Retry policy for the supervised jobs.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds (disabled by default).
    pub breaker: BreakerConfig,
    /// Deterministic fault-injection plan (`None` = no injection).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            cache_capacity: 256,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            fault_plan: None,
        }
    }
}

/// The deterministic payload of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// A performance simulation's headline numbers.
    Sim {
        /// End-to-end modelled seconds.
        makespan_s: f64,
        /// Steady-state modelled seconds.
        steady_s: f64,
        /// Attained tera-ops/s.
        attained_tops: f64,
        /// Fraction of machine peak attained.
        peak_fraction: f64,
        /// Root-level operational intensity.
        root_intensity: f64,
    },
    /// A functional execution's memory digest.
    Exec {
        /// External-memory elements.
        elems: usize,
        /// Stable content hash of the final memory.
        memory_hash: u64,
    },
}

/// One job's result, in submission (= manifest) order.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission index (0-based, manifest order).
    pub index: usize,
    /// The spec's output tag.
    pub label: String,
    /// The spec's machine name.
    pub machine: String,
    /// `"simulate"` or `"exec"`.
    pub mode: &'static str,
    /// The payload, or why the job ultimately failed.
    pub outcome: Result<JobOutput, JobError>,
}

/// Everything a serve run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-job records in submission order.
    pub records: Vec<JobRecord>,
    /// Runtime counters at the end of the run.
    pub stats: StatsSnapshot,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time from first submission to last join.
    pub wall: Duration,
}

impl ServeReport {
    /// Jobs whose outcome is an error.
    pub fn failures(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// The failed records (submission order).
    pub fn failed_records(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| r.outcome.is_err())
    }
}

enum Pending {
    Sim(JobHandle<SimResult>),
    Exec(JobHandle<ExecResult>),
}

/// Parses `text` and runs every job it describes.
///
/// # Errors
///
/// Grammar, machine-resolution and program-resolution errors — all
/// *validation* failures, surfaced before any job runs. Individual job
/// failures do **not** error here: they become `Err` outcomes in the
/// report (graceful degradation).
pub fn serve_manifest(text: &str, opts: &ServeOptions) -> Result<ServeReport, ManifestError> {
    let specs = manifest::parse_manifest(text)?;
    serve_specs(&specs, opts)
}

/// [`serve_manifest`] for already-parsed specs.
///
/// # Errors
///
/// Machine- and program-resolution failures.
pub fn serve_specs(specs: &[JobSpec], opts: &ServeOptions) -> Result<ServeReport, ManifestError> {
    // Resolve every program and machine up front (shared across repeats
    // via Arc) so validation errors abort before any job runs.
    let mut resolved = Vec::with_capacity(specs.len());
    for spec in specs {
        let program = Arc::new(manifest::resolve_program(&spec.source)?);
        let machine = manifest::machine_by_name(&spec.machine).ok_or_else(|| {
            // Parsing already validated the name; this guards direct
            // `serve_specs` callers handing in unvalidated specs.
            ManifestError::UnknownMachine { name: spec.machine.clone(), line: 0 }
        })?;
        resolved.push((spec, machine, program));
    }

    let runtime = Runtime::new(RuntimeConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        retry: opts.retry.clone(),
        breaker: opts.breaker.clone(),
        fault_plan: opts.fault_plan.clone(),
        ..Default::default()
    });
    let workers = runtime.worker_count();
    let t0 = Instant::now();

    // Submit everything first (the pool interleaves freely), then join in
    // submission order so the record list — and any stdout rendered from
    // it — is deterministic.
    let mut pending: Vec<(String, String, &'static str, Pending)> = Vec::new();
    for (spec, machine, program) in &resolved {
        for _ in 0..spec.repeat {
            let (mode, handle) = match spec.kind {
                JobKind::Simulate => (
                    "simulate",
                    Pending::Sim(runtime.submit_simulate(machine.clone(), Arc::clone(program))),
                ),
                JobKind::Exec { seed } => (
                    "exec",
                    Pending::Exec(runtime.submit_exec(machine.clone(), Arc::clone(program), seed)),
                ),
            };
            pending.push((spec.label.clone(), spec.machine.clone(), mode, handle));
        }
    }

    let records = pending
        .into_iter()
        .enumerate()
        .map(|(index, (label, machine, mode, handle))| {
            let outcome = match handle {
                Pending::Sim(h) => h.join().map(|sim| {
                    let r = &sim.report;
                    JobOutput::Sim {
                        makespan_s: r.makespan_seconds,
                        steady_s: r.steady_seconds,
                        attained_tops: r.attained_ops / 1e12,
                        peak_fraction: r.peak_fraction,
                        root_intensity: r.root_intensity,
                    }
                }),
                Pending::Exec(h) => h.join().map(|exec| {
                    let mut hasher = StableHasher::new();
                    for v in &exec.memory {
                        hasher.write_f32(*v);
                    }
                    JobOutput::Exec { elems: exec.memory.len(), memory_hash: hasher.finish() }
                }),
            };
            JobRecord { index, label, machine, mode, outcome }
        })
        .collect();

    let wall = t0.elapsed();
    let stats = runtime.stats().snapshot();
    runtime.shutdown();
    Ok(ServeReport { records, stats, workers, wall })
}

/// Escapes a string for a JSON value position.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one record as the JSON-lines object `cfserve` prints.
///
/// Carries only deterministic fields; float formatting uses `{:?}`, which
/// round-trips exactly.
pub fn render_record_json(record: &JobRecord) -> String {
    let head = format!(
        "{{\"job\":{},\"label\":{},\"machine\":{},\"mode\":{}",
        record.index,
        json_str(&record.label),
        json_str(&record.machine),
        json_str(record.mode),
    );
    match &record.outcome {
        Ok(JobOutput::Sim {
            makespan_s,
            steady_s,
            attained_tops,
            peak_fraction,
            root_intensity,
        }) => {
            format!(
                "{head},\"ok\":true,\"makespan_s\":{makespan_s:?},\"steady_s\":{steady_s:?},\"attained_tops\":{attained_tops:?},\"peak_fraction\":{peak_fraction:?},\"root_intensity\":{root_intensity:?}}}"
            )
        }
        Ok(JobOutput::Exec { elems, memory_hash }) => {
            format!("{head},\"ok\":true,\"elems\":{elems},\"memory_hash\":\"{memory_hash:016x}\"}}")
        }
        Err(e) => format!("{head},\"ok\":false,\"error\":{}}}", json_str(&e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ServeOptions {
        ServeOptions { workers: 2, ..Default::default() }
    }

    #[test]
    fn serves_a_small_manifest_in_order() {
        let text = "workload=matmul order=64 repeat=2\nworkload=matmul order=64 mode=exec seed=3 label=x\n";
        let report = serve_manifest(text, &quick_opts()).unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.failures(), 0);
        assert_eq!(report.records[0].mode, "simulate");
        assert_eq!(report.records[2].mode, "exec");
        assert_eq!(report.records[2].label, "x");
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        // The repeat is answered by the cache.
        assert!(report.stats.cache_hits >= 1);
    }

    #[test]
    fn validation_errors_surface_before_running() {
        let err = serve_manifest("program=/no/such/file.cfasm\n", &quick_opts()).unwrap_err();
        assert!(matches!(err, ManifestError::Program { .. }), "{err}");
    }

    #[test]
    fn rendered_json_escapes_and_errors() {
        let record = JobRecord {
            index: 1,
            label: "a\"b".into(),
            machine: "f1".into(),
            mode: "simulate",
            outcome: Err(JobError::Panicked("boom".into())),
        };
        let line = render_record_json(&record);
        assert!(line.contains("\"label\":\"a\\\"b\""), "{line}");
        assert!(line.contains("\"ok\":false"), "{line}");
        assert!(line.contains("boom"), "{line}");
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }

    #[test]
    fn two_runs_render_byte_identical() {
        let text = "workload=matmul order=96 repeat=3\n";
        let a = serve_manifest(text, &quick_opts()).unwrap();
        let b = serve_manifest(
            text,
            &ServeOptions { workers: 1, cache_capacity: 0, ..Default::default() },
        )
        .unwrap();
        let ra: Vec<String> = a.records.iter().map(render_record_json).collect();
        let rb: Vec<String> = b.records.iter().map(render_record_json).collect();
        assert_eq!(ra, rb);
    }
}
