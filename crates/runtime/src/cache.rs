//! The plan/report cache: an LRU over finished [`PerfReport`]s keyed by
//! `(machine fingerprint, program content hash)`.
//!
//! Performance simulation is a pure function of machine structure and
//! program content — the planner consults only shapes, capacities and
//! latencies, never data values or wall-clock state — so a cached report
//! is *exactly* the report a cold run would produce. Repeated simulation
//! of the same workload (the dominant pattern in design sweeps and in
//! serving) therefore skips the planner and pipeline model entirely.
//!
//! Functional-execution jobs are **not** cached here: their output depends
//! on the contents of external memory, which is not part of the key (see
//! DESIGN.md §6).
//!
//! The key also defines *identity* beyond the cache: concurrent
//! simulations of the same key run once behind a single-flight guard in
//! the scheduler, and the HTTP job API ([`api`](crate::api)) coalesces
//! concurrently submitted identical specs by this key — one cold
//! computation, N subscribers, each with its own durable job id (see
//! DESIGN.md §9).

use std::collections::HashMap;
use std::sync::Mutex;

use cf_core::{MachineConfig, PerfReport};
use cf_isa::Program;
use std::sync::Arc;

use crate::fault::fnv1a;
use crate::obs::{SpanKind, Stage, Tracer};
use crate::sync;

/// Cache key: machine-structure fingerprint plus program content hash,
/// both stable across processes (see [`cf_tensor::fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`MachineConfig::fingerprint`] of the target machine.
    pub machine: u64,
    /// [`Program::content_hash`] of the workload.
    pub program: u64,
}

impl CacheKey {
    /// The key for simulating `program` on `machine`.
    pub fn new(machine: &MachineConfig, program: &Program) -> Self {
        CacheKey { machine: machine.fingerprint(), program: program.content_hash() }
    }

    /// A single-`u64` digest of the key, used as the span token for
    /// cache trace events.
    pub fn digest(&self) -> u64 {
        self.machine ^ self.program.rotate_left(32)
    }
}

/// FNV-1a content checksum of a report, stored next to every cache entry
/// and re-verified on each hit so corrupted entries are detected instead
/// of served.
pub fn report_checksum(report: &PerfReport) -> u64 {
    // `Debug` for floats round-trips exactly, so the rendering is a
    // faithful (if verbose) content encoding.
    fnv1a(format!("{report:?}").as_bytes())
}

/// What a verifying lookup found.
#[derive(Debug)]
pub enum CacheLookup {
    /// A verified entry.
    Hit(Arc<PerfReport>),
    /// No entry under the key.
    Miss,
    /// The entry's checksum did not match its content; it has been
    /// evicted and the caller should recompute.
    Corrupt,
}

#[derive(Debug)]
struct Entry {
    value: Arc<PerfReport>,
    checksum: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A thread-safe LRU report cache.
///
/// Eviction scans for the least-recently-used entry, which is O(capacity);
/// capacities are small (hundreds of distinct (machine, program) pairs at
/// most in any realistic sweep), so the scan is cheaper than maintaining
/// an intrusive recency list under a lock.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    tracer: Arc<Tracer>,
}

impl PlanCache {
    /// A cache holding at most `capacity` reports. Capacity 0 disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PlanCache::with_tracer(capacity, Arc::new(Tracer::disabled()))
    }

    /// [`new`](PlanCache::new) with a shared tracer: verifying lookups
    /// emit hit/miss/corrupt span events and lookup-latency samples.
    pub fn with_tracer(capacity: usize, tracer: Arc<Tracer>) -> Self {
        PlanCache { inner: Mutex::new(Inner::default()), capacity, tracer }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a report, refreshing its recency on a hit; corrupt
    /// entries read as misses (see [`get_verified`](PlanCache::get_verified)).
    pub fn get(&self, key: &CacheKey) -> Option<Arc<PerfReport>> {
        match self.get_verified(key) {
            CacheLookup::Hit(report) => Some(report),
            CacheLookup::Miss | CacheLookup::Corrupt => None,
        }
    }

    /// Looks up a report and re-verifies its content checksum. A mismatch
    /// evicts the entry and reports [`CacheLookup::Corrupt`] so the
    /// caller can count the detection and recompute.
    pub fn get_verified(&self, key: &CacheKey) -> CacheLookup {
        let t0 = std::time::Instant::now();
        let lookup = self.lookup(key);
        if self.tracer.enabled() {
            let elapsed = t0.elapsed();
            self.tracer.observe(Stage::CacheLookup, elapsed);
            let kind = match &lookup {
                CacheLookup::Hit(_) => SpanKind::CacheHit,
                CacheLookup::Miss => SpanKind::CacheMiss,
                CacheLookup::Corrupt => SpanKind::CacheCorrupt,
            };
            self.tracer.record(kind, key.digest(), Some(elapsed), String::new);
        }
        lookup
    }

    fn lookup(&self, key: &CacheKey) -> CacheLookup {
        let mut inner = sync::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let Some(e) = inner.map.get_mut(key) else {
            return CacheLookup::Miss;
        };
        if report_checksum(&e.value) != e.checksum {
            inner.map.remove(key);
            return CacheLookup::Corrupt;
        }
        e.last_used = tick;
        CacheLookup::Hit(Arc::clone(&e.value))
    }

    /// Inserts (or refreshes) a report, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&self, key: CacheKey, value: Arc<PerfReport>) {
        let checksum = report_checksum(&value);
        self.insert_with_checksum(key, value, checksum);
    }

    /// [`insert`](PlanCache::insert) with an explicit stored checksum —
    /// the fault-injection layer passes a wrong one to model a corrupted
    /// fill that the next [`get_verified`](PlanCache::get_verified) must
    /// catch.
    pub fn insert_with_checksum(&self, key: CacheKey, value: Arc<PerfReport>, checksum: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = sync::lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, Entry { value, checksum, last_used: tick });
    }

    /// Drops every cached report.
    pub fn clear(&self) {
        sync::lock(&self.inner).map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_core::Machine;
    use cf_isa::{Opcode, ProgramBuilder};

    fn matmul(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![n, n]);
        let w = b.alloc("w", vec![n, n]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        b.build()
    }

    fn report(n: usize) -> Arc<PerfReport> {
        Arc::new(Machine::new(MachineConfig::cambricon_f1()).simulate(&matmul(n)).unwrap())
    }

    fn key(n: u64) -> CacheKey {
        CacheKey { machine: 1, program: n }
    }

    #[test]
    fn hit_returns_same_arc() {
        let cache = PlanCache::new(4);
        let r = report(64);
        let cfg = MachineConfig::cambricon_f1();
        let k = CacheKey::new(&cfg, &matmul(64));
        assert!(cache.get(&k).is_none());
        cache.insert(k, Arc::clone(&r));
        let hit = cache.get(&k).unwrap();
        assert!(Arc::ptr_eq(&hit, &r));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let r = report(32);
        cache.insert(key(1), Arc::clone(&r));
        cache.insert(key(2), Arc::clone(&r));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), Arc::clone(&r));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let cache = PlanCache::new(2);
        let r = report(32);
        cache.insert(key(1), Arc::clone(&r));
        cache.insert(key(2), Arc::clone(&r));
        cache.insert(key(2), Arc::clone(&r));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert(key(1), report(32));
        assert!(cache.is_empty());
        assert!(cache.get(&key(1)).is_none());
    }

    #[test]
    fn corrupt_entry_detected_then_healed_by_reinsert() {
        let cache = PlanCache::new(4);
        let r = report(32);
        cache.insert_with_checksum(key(1), Arc::clone(&r), 0xBAD);
        assert!(matches!(cache.get_verified(&key(1)), CacheLookup::Corrupt));
        // The corrupt entry was evicted: further lookups are plain misses.
        assert!(matches!(cache.get_verified(&key(1)), CacheLookup::Miss));
        assert!(cache.get(&key(1)).is_none());
        // A clean re-insert heals the key.
        cache.insert(key(1), r);
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn checksum_is_content_stable() {
        let a = report(48);
        let b = report(48);
        assert_eq!(report_checksum(&a), report_checksum(&b));
        assert_ne!(report_checksum(&a), report_checksum(&report(64)));
    }

    #[test]
    fn distinct_machines_distinct_keys() {
        let p = matmul(64);
        let a = CacheKey::new(&MachineConfig::cambricon_f1(), &p);
        let b = CacheKey::new(&MachineConfig::cambricon_f100(), &p);
        assert_ne!(a, b);
        let c = CacheKey::new(&MachineConfig::cambricon_f1(), &matmul(64));
        assert_eq!(a, c);
    }
}
