//! `cfrouter` — a fault-tolerant HTTP front door over a fleet of
//! `cfserve` backends: one more fractal level, with the router as the
//! parent node.
//!
//! Jobs are **consistent-hashed by plan-cache fingerprint** (the
//! `(machine fingerprint, program hash)` identity from
//! [`crate::cache::CacheKey`], extracted from the `POST /jobs` body by
//! [`api::routing_fingerprint`]) onto a [`Ring`] of backends, so every
//! instance's plan cache stays warm for its own key range. Robustness
//! is the headline:
//!
//! * a **health prober** polls each backend's `/healthz` on a background
//!   thread, ejecting instances that answer `503` or time out
//!   ([`BackendHealth::Ejected`]) and re-admitting them after
//!   consecutive successes; a backend reporting `"draining"` is treated
//!   as *planned removal* ([`BackendHealth::Draining`]), not failure;
//! * failed or ejected-backend requests **fail over** to the next ring
//!   replica with bounded retries and jittered exponential backoff
//!   (reusing [`next_retry`]); a job whose owner died mid-run is
//!   resubmitted from the router's retained spec, so its record still
//!   streams — byte-identical, because records are deterministic;
//! * submissions slower than a **latency quantile** (p95 over the
//!   router's own submit histogram, floored by
//!   [`RouterConfig::hedge_floor`]) get one **hedged duplicate** to the
//!   next replica: first answer wins, the loser's connection is shut
//!   down;
//! * a per-backend **circuit breaker** (the
//!   [`supervisor`](crate::supervisor) state machine) stops hammering a
//!   dying instance between probe passes;
//! * every backend response is **integrity-checked** before the router
//!   trusts it: the `X-CF-Digest` header over the body, plus the
//!   per-record digest field on streamed records (see
//!   [`crate::serve::verify_record_json`]). A mismatch counts as a
//!   failure (`cf_router_corrupt_responses`), feeds the breaker, and
//!   fails over; repeated corruption moves the backend to
//!   [`BackendHealth::Quarantined`] — answering probes but untrusted —
//!   until the quarantine window elapses. All backend traffic flows
//!   through the [`Connector`] seam, so the seeded
//!   [`crate::netfault`] chaos layer can stand in for a lying network.
//!
//! The router's own endpoints: `/healthz` (healthy while ≥ 1 backend is
//! routable), `/stats` (the [`RouterStats`] counters plus the live
//! backend table), `/ring` (the routing table), and `/metrics` — every
//! backend's Prometheus exposition merged into one fleet view (the
//! per-backend `instance` label keeps series distinct) plus the
//! router's own `cf_router_*` series. `POST /jobs`,
//! `GET /jobs/<id>` and `GET /jobs/<id>/status` proxy to the owning
//! backend with the backend-local job id translated to the router's
//! fleet-wide id, so a client cannot tell the fleet from one big
//! instance. See DESIGN.md §10.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::api::{self, HttpRequest};
use crate::fault::fnv1a;
use crate::netfault::{FaultConnector, NetFaultPlan};
use crate::obs::LatencyHistogram;
use crate::serve::{json_str, verify_record_json};
use crate::stats::RouterStats;
use crate::supervisor::{next_retry, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use crate::sync;

/// How long the accept loop sleeps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Per-read/write socket timeout on *client* connections.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Total time a client gets to deliver one complete request.
const READ_DEADLINE: Duration = Duration::from_secs(5);

/// Minimum submit-latency samples before the hedge threshold trusts the
/// histogram's quantile over the configured floor.
const HEDGE_MIN_SAMPLES: u64 = 20;

/// The quantile a submission must exceed before it is hedged.
const HEDGE_QUANTILE: f64 = 0.95;

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

/// A consistent-hash ring over backend indices: each backend owns
/// [`vnodes`](Ring::vnodes) pseudo-random points on a `u64` circle, and
/// a key belongs to the first point at or after its hash. Removing one
/// backend only remaps the keys that backend owned (its points vanish;
/// everyone else's stay put) — the minimal-disruption property the ring
/// proptests pin down.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: usize,
    backends: usize,
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// A ring over `names` with `vnodes` points per backend (minimum 1).
    /// Points derive from the backend *name*, so the same name owns the
    /// same arc regardless of which other backends exist.
    pub fn new(names: &[String], vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (i, name) in names.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a(format!("{name}#{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring { vnodes, backends: names.len(), points }
    }

    /// Points per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The sorted `(point, backend index)` table (the `/ring` payload).
    pub fn points(&self) -> &[(u64, usize)] {
        &self.points
    }

    /// Re-spreads a fingerprint over the point space (fingerprints are
    /// already hashes, but XOR-folded ones cluster; one more FNV pass
    /// decorrelates them from the vnode points).
    fn spread(key: u64) -> u64 {
        fnv1a(&key.to_le_bytes())
    }

    /// The backend that owns `key` (`None` for an empty ring).
    pub fn primary(&self, key: u64) -> Option<usize> {
        self.replicas(key).first().copied()
    }

    /// Every backend in ring-walk order from `key`'s point: the owner
    /// first, then each distinct successor — the failover order.
    pub fn replicas(&self, key: u64) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let h = Self::spread(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut seen = vec![false; self.backends];
        let mut out = Vec::with_capacity(self.backends);
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            if !seen[b] {
                seen[b] = true;
                out.push(b);
                if out.len() == self.backends {
                    break;
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Backend state
// ---------------------------------------------------------------------------

/// A backend's routable state, as maintained by the health prober.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendHealth {
    /// Routable: answering `/healthz` with 200.
    Up,
    /// Ejected after consecutive probe failures (503 / timeout);
    /// re-admitted after consecutive successes.
    Ejected,
    /// Reported `"draining"`: planned removal, not failure. No new work
    /// is routed here, but in-flight polls may still complete.
    Draining,
    /// Quarantined after repeated *corrupt* responses (digest mismatch):
    /// the backend answers probes — it is not dead — but its data cannot
    /// be trusted, so no work routes here until the quarantine window
    /// elapses **and** probes stay healthy.
    Quarantined,
}

impl BackendHealth {
    /// The state's stable wire name (`/stats`, `/ring`, `/metrics`).
    pub fn name(self) -> &'static str {
        match self {
            BackendHealth::Up => "up",
            BackendHealth::Ejected => "ejected",
            BackendHealth::Draining => "draining",
            BackendHealth::Quarantined => "quarantined",
        }
    }
}

/// What one `/healthz` probe observed (`Failed` retains the error text
/// for the `/stats` backend table).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Probe {
    Ok,
    Draining,
    Failed(String),
}

#[derive(Debug)]
struct Backend {
    addr: String,
    health: BackendHealth,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// Digest-mismatch streak; `quarantine_after` of these while `Up`
    /// moves the backend to [`BackendHealth::Quarantined`].
    consecutive_corruptions: u32,
    /// When the quarantine started (release is time- *and* probe-gated).
    quarantined_at: Option<Instant>,
    /// Last probe failure, kept sticky across recovery so an ejection is
    /// debuggable from `/stats` after the backend comes back.
    last_probe_error: Option<String>,
    last_probe_error_at: Option<Instant>,
    breaker: CircuitBreaker,
}

impl Backend {
    fn new(addr: String, breaker: BreakerConfig) -> Backend {
        Backend {
            addr,
            health: BackendHealth::Up,
            consecutive_failures: 0,
            consecutive_successes: 0,
            consecutive_corruptions: 0,
            quarantined_at: None,
            last_probe_error: None,
            last_probe_error_at: None,
            breaker: CircuitBreaker::new(breaker),
        }
    }

    /// Folds one probe observation into the health state machine.
    /// Returns `(ejected, readmitted)` transitions for the counters.
    fn note_probe(
        &mut self,
        probe: Probe,
        eject_after: u32,
        readmit_after: u32,
        quarantine_for: Duration,
    ) -> (bool, bool) {
        match probe {
            Probe::Ok => {
                self.consecutive_failures = 0;
                self.consecutive_successes += 1;
                if self.health != BackendHealth::Up && self.consecutive_successes >= readmit_after {
                    // A quarantined backend additionally sits out its
                    // full window: healthy probes alone do not prove the
                    // data path is trustworthy again.
                    let held = self.health == BackendHealth::Quarantined
                        && self.quarantined_at.is_some_and(|t| t.elapsed() < quarantine_for);
                    if !held {
                        self.health = BackendHealth::Up;
                        self.quarantined_at = None;
                        self.consecutive_corruptions = 0;
                        self.breaker.record_success();
                        return (false, true);
                    }
                }
            }
            Probe::Draining => {
                // Planned removal: not a failure, but not routable.
                self.consecutive_failures = 0;
                self.consecutive_successes = 0;
                self.health = BackendHealth::Draining;
                self.quarantined_at = None;
            }
            Probe::Failed(error) => {
                self.last_probe_error = Some(error);
                self.last_probe_error_at = Some(Instant::now());
                self.consecutive_successes = 0;
                self.consecutive_failures += 1;
                if self.health != BackendHealth::Ejected && self.consecutive_failures >= eject_after
                {
                    // Ejection supersedes quarantine: the backend is no
                    // longer answering at all, so the corruption
                    // evidence resets with the stronger verdict.
                    self.health = BackendHealth::Ejected;
                    self.quarantined_at = None;
                    self.consecutive_corruptions = 0;
                    return (true, false);
                }
            }
        }
        (false, false)
    }
}

// ---------------------------------------------------------------------------
// Router configuration
// ---------------------------------------------------------------------------

/// Construction parameters for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend `host:port` status addresses, in ring order.
    pub backends: Vec<String>,
    /// Consistent-hash points per backend (default 64).
    pub vnodes: usize,
    /// Health-probe cadence (default 250 ms).
    pub probe_interval: Duration,
    /// Per-probe connect/read timeout (default 500 ms).
    pub probe_timeout: Duration,
    /// Consecutive probe failures that eject a backend (default 2).
    pub eject_after: u32,
    /// Consecutive probe successes that re-admit one (default 3).
    pub readmit_after: u32,
    /// Failover retry budget and backoff for proxied requests.
    pub retry: RetryPolicy,
    /// Hedge a submission after this long even while the latency
    /// histogram is cold; `ZERO` disables hedging (default 250 ms).
    pub hedge_floor: Duration,
    /// Per-backend circuit-breaker thresholds (default: open after 4
    /// consecutive request failures for 1 s).
    pub breaker: BreakerConfig,
    /// Proxy connect timeout (default 500 ms).
    pub connect_timeout: Duration,
    /// Proxy read timeout; must exceed the longest `/jobs/<id>`
    /// long-poll (default 150 s).
    pub read_timeout: Duration,
    /// Client request-body bound, as on `cfserve` (default 1 MiB).
    pub max_body: usize,
    /// Consecutive corrupt (digest-mismatch) responses that quarantine a
    /// backend (default 3).
    pub quarantine_after: u32,
    /// Minimum time a quarantined backend sits out before healthy probes
    /// can re-admit it (default 5 s).
    pub quarantine_for: Duration,
    /// Seeded wire-fault plan decorating the dialer (chaos testing);
    /// `None` dials straight TCP.
    pub netfault: Option<NetFaultPlan>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            vnodes: 64,
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            eject_after: 2,
            readmit_after: 3,
            retry: RetryPolicy {
                max_retries: 6,
                base_backoff: Duration::from_millis(25),
                max_backoff: Duration::from_millis(400),
                total_deadline: None,
            },
            hedge_floor: Duration::from_millis(250),
            breaker: BreakerConfig { failure_threshold: 4, open_for: Duration::from_secs(1) },
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(150),
            max_body: api::DEFAULT_MAX_BODY_BYTES,
            quarantine_after: 3,
            quarantine_for: Duration::from_secs(5),
            netfault: None,
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing (client side)
// ---------------------------------------------------------------------------

/// One parsed backend reply.
#[derive(Debug, Clone)]
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// A handle the hedging path uses to abort the losing request: the
/// in-flight stream is registered here, and `cancel` shuts it down so
/// the loser unblocks instead of riding out its read timeout. Public
/// only because it appears in the [`Connector`] seam's signature; a
/// fault decorator just passes it through to the real dialer.
#[derive(Debug, Default)]
pub struct CancelSlot {
    stream: Mutex<Option<TcpStream>>,
    cancelled: AtomicBool,
}

impl CancelSlot {
    fn arm(&self, stream: &TcpStream) {
        let clone = stream.try_clone().ok();
        *sync::lock(&self.stream) = clone;
        if self.cancelled.load(Ordering::SeqCst) {
            self.cancel();
        }
    }

    fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        if let Some(s) = sync::lock(&self.stream).take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// The router's wire seam: one blocking HTTP/1.1 exchange returning the
/// **raw response bytes** (parsing happens above the seam, so a
/// decorator — [`crate::netfault::FaultConnector`] — can refuse, delay,
/// tear, garble, or corrupt at the byte level exactly like a real
/// network would).
pub trait Connector: Send + Sync + std::fmt::Debug {
    /// Dials `addr`, writes `raw`, reads the response to EOF (the peer
    /// closes the connection after its response, which frames the
    /// body). `cancel`, when present, lets a hedging caller abort the
    /// exchange mid-flight.
    ///
    /// # Errors
    ///
    /// Connect/read/write failures, unchanged from the socket layer.
    fn exchange(
        &self,
        addr: &str,
        raw: &[u8],
        connect_timeout: Duration,
        read_timeout: Duration,
        cancel: Option<&CancelSlot>,
    ) -> std::io::Result<Vec<u8>>;
}

/// The real dialer: plain blocking TCP, no faults.
#[derive(Debug, Default)]
pub struct TcpConnector;

impl Connector for TcpConnector {
    fn exchange(
        &self,
        addr: &str,
        raw: &[u8],
        connect_timeout: Duration,
        read_timeout: Duration,
        cancel: Option<&CancelSlot>,
    ) -> std::io::Result<Vec<u8>> {
        let sock: SocketAddr = addr.parse().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{addr}: {e}"))
        })?;
        let mut stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(connect_timeout))?;
        if let Some(slot) = cancel {
            slot.arm(&stream);
        }
        stream.write_all(raw)?;
        let mut bytes = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => bytes.extend_from_slice(&chunk[..n]),
                Err(e) => {
                    if bytes.is_empty() {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(bytes)
    }
}

fn parse_reply(bytes: &[u8]) -> std::io::Result<Reply> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let head_end =
        bytes.windows(4).position(|w| w == b"\r\n\r\n").ok_or_else(|| bad("truncated reply"))?;
    let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| bad("non-UTF-8 reply head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty reply"))?;
    // A real peer always leads with the protocol version; anything else
    // is line noise (a garbled status line must not parse as a reply).
    if !status_line.starts_with("HTTP/") {
        return Err(bad("malformed status line"));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_string(), v.trim().to_string()))
        .collect();
    let mut body = bytes[head_end + 4..].to_vec();
    // Read-to-EOF framing cannot tell a complete body from a torn one
    // on its own — hold the peer to its declared Content-Length.
    if let Some(declared) = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body.len() < declared {
            return Err(bad("torn reply: body shorter than Content-Length"));
        }
        body.truncate(declared);
    }
    Ok(Reply { status, headers, body })
}

/// Whether the reply's `X-CF-Digest` header (when present) matches its
/// body bytes. Replies without the header pass — the check is for peers
/// that stamp it (every `cfserve` does).
fn digest_ok(reply: &Reply) -> bool {
    match reply.header("x-cf-digest") {
        Some(h) => {
            u64::from_str_radix(h.trim(), 16).map(|d| d == fnv1a(&reply.body)).unwrap_or(false)
        }
        None => true,
    }
}

/// Maps a relayed backend status code to a status line the router can
/// answer with (unknown codes degrade to 502).
fn status_line(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        202 => "202 Accepted",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        413 => "413 Payload Too Large",
        500 => "500 Internal Server Error",
        503 => "503 Service Unavailable",
        _ => "502 Bad Gateway",
    }
}

// ---------------------------------------------------------------------------
// The router
// ---------------------------------------------------------------------------

/// Where an accepted job lives: enough to proxy polls and to resubmit
/// the job elsewhere if its backend dies.
#[derive(Debug, Clone)]
struct JobRoute {
    /// The single-job spec body, retained for failover resubmission.
    spec: String,
    /// The ring fingerprint the job was routed by.
    fingerprint: u64,
    /// Owning backend index.
    backend: usize,
    /// The job's id *on that backend* (backend-local ids are translated
    /// to fleet-wide router ids at the edge).
    backend_id: u64,
}

/// One response from the router, ready to serialize.
struct RouterResponse {
    status: &'static str,
    content_type: &'static str,
    retry_after: Option<u64>,
    allow: Option<&'static str>,
    body: String,
}

impl RouterResponse {
    fn json(status: &'static str, body: String) -> RouterResponse {
        RouterResponse {
            status,
            content_type: "application/json",
            retry_after: None,
            allow: None,
            body,
        }
    }

    fn error(status: &'static str, message: &str) -> RouterResponse {
        RouterResponse::json(status, format!("{{\"error\":{}}}", json_str(message)))
    }
}

/// The shard router (see the module docs). Construct with
/// [`Router::new`], serve with [`RouterServer::bind`], and start the
/// health prober with [`Router::start_prober`].
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    ring: Ring,
    backends: Mutex<Vec<Backend>>,
    jobs: Mutex<HashMap<u64, JobRoute>>,
    next_id: AtomicU64,
    stats: RouterStats,
    submit_latency: LatencyHistogram,
    shutdown: Arc<AtomicBool>,
    prober: Mutex<Option<thread::JoinHandle<()>>>,
    connector: Arc<dyn Connector>,
}

impl Router {
    /// A router over `config.backends` (at least one required). A
    /// `config.netfault` plan decorates the dialer with seeded wire
    /// faults (chaos testing — see [`crate::netfault`]).
    pub fn new(config: RouterConfig) -> Arc<Router> {
        let ring = Ring::new(&config.backends, config.vnodes);
        let backends = config
            .backends
            .iter()
            .map(|a| Backend::new(a.clone(), config.breaker.clone()))
            .collect();
        let connector: Arc<dyn Connector> = match &config.netfault {
            Some(plan) => Arc::new(FaultConnector::new(Arc::new(TcpConnector), plan.clone())),
            None => Arc::new(TcpConnector),
        };
        Arc::new(Router {
            ring,
            backends: Mutex::new(backends),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stats: RouterStats::default(),
            submit_latency: LatencyHistogram::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            prober: Mutex::new(None),
            connector,
            config,
        })
    }

    /// One HTTP exchange through the router's [`Connector`].
    fn exchange(
        &self,
        addr: &str,
        raw: &[u8],
        connect_timeout: Duration,
        read_timeout: Duration,
        cancel: Option<&CancelSlot>,
    ) -> std::io::Result<Reply> {
        let bytes = self.connector.exchange(addr, raw, connect_timeout, read_timeout, cancel)?;
        parse_reply(&bytes)
    }

    /// The router's counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Starts the background health prober (idempotent).
    pub fn start_prober(self: &Arc<Self>) {
        let mut slot = sync::lock(&self.prober);
        if slot.is_some() {
            return;
        }
        let router = Arc::clone(self);
        let shutdown = Arc::clone(&self.shutdown);
        let spawned =
            thread::Builder::new().name("cf-router-prober".to_string()).spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    router.probe_once();
                    let mut slept = Duration::ZERO;
                    while slept < router.config.probe_interval && !shutdown.load(Ordering::SeqCst) {
                        let step = POLL_INTERVAL.min(router.config.probe_interval - slept);
                        thread::sleep(step);
                        slept += step;
                    }
                }
            });
        if let Ok(handle) = spawned {
            *slot = Some(handle);
        }
    }

    /// Stops the prober thread (also done when a [`RouterServer`] shuts
    /// down).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = sync::lock(&self.prober).take() {
            let _ = handle.join();
        }
    }

    /// Runs one health-probe pass over every backend (the prober thread
    /// calls this on its cadence; tests call it directly).
    pub fn probe_once(&self) {
        let addrs: Vec<(usize, String)> = {
            let backends = sync::lock(&self.backends);
            backends.iter().enumerate().map(|(i, b)| (i, b.addr.clone())).collect()
        };
        for (idx, addr) in addrs {
            let raw = b"GET /healthz HTTP/1.1\r\nHost: cfrouter\r\nConnection: close\r\n\r\n";
            let reply = self.exchange(
                &addr,
                raw,
                self.config.probe_timeout,
                self.config.probe_timeout,
                None,
            );
            let probe = match reply {
                Ok(r) if r.status == 200 => Probe::Ok,
                Ok(r) if String::from_utf8_lossy(&r.body).contains("\"status\":\"draining\"") => {
                    Probe::Draining
                }
                Ok(r) => Probe::Failed(format!("healthz answered {}", r.status)),
                Err(e) => Probe::Failed(e.to_string()),
            };
            if matches!(probe, Probe::Failed(_)) {
                self.stats.probe_failures.fetch_add(1, Ordering::Relaxed);
            }
            let mut backends = sync::lock(&self.backends);
            if let Some(b) = backends.get_mut(idx) {
                let (ejected, readmitted) = b.note_probe(
                    probe,
                    self.config.eject_after,
                    self.config.readmit_after,
                    self.config.quarantine_for,
                );
                if ejected {
                    self.stats.ejections.fetch_add(1, Ordering::Relaxed);
                }
                if readmitted {
                    self.stats.readmissions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Whether new work may be routed to backend `idx` right now:
    /// healthy per the prober *and* admitted by its circuit breaker.
    fn routable(&self, idx: usize) -> bool {
        let backends = sync::lock(&self.backends);
        match backends.get(idx) {
            Some(b) => b.health == BackendHealth::Up && b.breaker.allow(),
            None => false,
        }
    }

    fn backend_addr(&self, idx: usize) -> String {
        let backends = sync::lock(&self.backends);
        backends.get(idx).map(|b| b.addr.clone()).unwrap_or_default()
    }

    fn note_request_outcome(&self, idx: usize, ok: bool) {
        let mut backends = sync::lock(&self.backends);
        if let Some(b) = backends.get_mut(idx) {
            if ok {
                b.breaker.record_success();
                // An intact, verified response clears the corruption
                // streak: quarantine needs *consecutive* evidence.
                b.consecutive_corruptions = 0;
            } else {
                b.breaker.record_failure();
            }
        }
    }

    /// Books one corrupt (digest-mismatch) response from backend `idx`:
    /// counts it, feeds the circuit breaker, and — past
    /// `quarantine_after` consecutive corruptions while `Up` — moves
    /// the backend to [`BackendHealth::Quarantined`].
    fn note_corruption(&self, idx: usize) {
        self.stats.corrupt_responses.fetch_add(1, Ordering::Relaxed);
        let mut backends = sync::lock(&self.backends);
        if let Some(b) = backends.get_mut(idx) {
            b.breaker.record_failure();
            b.consecutive_corruptions = b.consecutive_corruptions.saturating_add(1);
            if b.health == BackendHealth::Up
                && b.consecutive_corruptions >= self.config.quarantine_after
            {
                b.health = BackendHealth::Quarantined;
                b.quarantined_at = Some(Instant::now());
                self.stats.quarantines.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The candidate order for `fingerprint`: ring replicas with the
    /// routable ones first (relative ring order preserved in both
    /// halves), so failover prefers live backends but can still try a
    /// possibly-recovered one as a last resort.
    fn candidates(&self, fingerprint: u64) -> Vec<usize> {
        let order = self.ring.replicas(fingerprint);
        let (alive, dead): (Vec<usize>, Vec<usize>) =
            order.into_iter().partition(|&i| self.routable(i));
        let mut out = alive;
        out.extend(dead);
        out
    }

    /// The current hedge threshold: the p95 of observed submit latencies
    /// once enough samples exist, floored by `hedge_floor`.
    fn hedge_threshold(&self) -> Duration {
        let floor = self.config.hedge_floor;
        let count = self.submit_latency.count();
        if count < HEDGE_MIN_SAMPLES {
            return floor;
        }
        let counts = self.submit_latency.bucket_counts();
        let target = (count as f64 * HEDGE_QUANTILE).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let micros = 1u64 << (i + 1).min(63);
                return Duration::from_micros(micros).max(floor);
            }
        }
        floor
    }

    /// Sends `raw` to `primary`, hedging one duplicate to `secondary`
    /// if no answer arrives within the hedge threshold. First answer
    /// wins; the loser's stream is shut down.
    fn exchange_hedged(
        &self,
        primary: usize,
        secondary: Option<usize>,
        raw: Vec<u8>,
    ) -> (usize, std::io::Result<Reply>) {
        let threshold = self.hedge_threshold();
        let (tx, rx) = mpsc::channel::<(usize, std::io::Result<Reply>, Arc<CancelSlot>)>();
        let fire = |idx: usize, raw: Vec<u8>, tx: mpsc::Sender<_>| {
            let addr = self.backend_addr(idx);
            let connect = self.config.connect_timeout;
            let read = self.config.read_timeout;
            let connector = Arc::clone(&self.connector);
            let slot = Arc::new(CancelSlot::default());
            let thread_slot = Arc::clone(&slot);
            let thread_tx = tx.clone();
            let spawned =
                thread::Builder::new().name("cf-router-proxy".to_string()).spawn(move || {
                    let reply = connector
                        .exchange(&addr, &raw, connect, read, Some(&thread_slot))
                        .and_then(|bytes| parse_reply(&bytes));
                    let _ = thread_tx.send((idx, reply, thread_slot));
                });
            if spawned.is_err() {
                let refused = std::io::Error::other("proxy thread spawn failed");
                let _ = tx.send((idx, Err(refused), slot));
            }
        };

        fire(primary, raw.clone(), tx.clone());
        let hedge_target = match secondary {
            Some(s) if !threshold.is_zero() && s != primary => Some(s),
            _ => None,
        };
        let first = match hedge_target {
            Some(s) => match rx.recv_timeout(threshold) {
                Ok(first) => Ok(first),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.stats.hedges.fetch_add(1, Ordering::Relaxed);
                    fire(s, raw, tx.clone());
                    rx.recv().map_err(|_| ())
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
            },
            None => rx.recv().map_err(|_| ()),
        };
        drop(tx);
        let Ok((idx, reply, _slot)) = first else {
            let lost = std::io::Error::other("proxy channel lost");
            return (primary, Err(lost));
        };
        // A hedged duplicate that loses gets cancelled so it does not
        // ride out its full read timeout against the slow backend.
        if let Ok((loser_idx, loser_reply, loser_slot)) = rx.try_recv() {
            drop((loser_idx, loser_reply));
            loser_slot.cancel();
        } else if hedge_target.is_some() {
            // The loser is still in flight: shut its stream down. A
            // dedicated drainer reaps the channel so the send never
            // blocks (it is unbounded anyway — this is belt and braces).
            thread::spawn(move || while rx.recv().map(|(_, _, s)| s.cancel()).is_ok() {});
        }
        if idx != primary {
            self.stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
        }
        (idx, reply)
    }

    /// Deterministic backoff jitter for failover attempt `attempt` of
    /// `key` (no RNG dependency; reproduces under test).
    fn failover_jitter(key: u64, attempt: u32) -> f64 {
        let h = fnv1a(&(key ^ u64::from(attempt)).to_le_bytes());
        (h % 1024) as f64 / 1024.0
    }

    // -- POST /jobs ---------------------------------------------------------

    /// Routes a `POST /jobs` body: consistent-hash, forward with
    /// failover + hedging, translate backend ids to router ids.
    fn submit(&self, body: &[u8]) -> RouterResponse {
        let Ok(text) = std::str::from_utf8(body) else {
            return RouterResponse::error("400 Bad Request", "body is not UTF-8");
        };
        let fingerprint = api::routing_fingerprint(text);
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nHost: cfrouter\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
            body.len()
        )
        .into_bytes();

        let t0 = Instant::now();
        let started = Instant::now();
        let mut failures = 0u32;
        loop {
            let candidates = self.candidates(fingerprint);
            let Some(&target) = candidates.get(failures as usize % candidates.len().max(1)) else {
                return RouterResponse::error("502 Bad Gateway", "no backends configured");
            };
            let hedge = hedge_pick(&candidates, target, |c| self.routable(c));
            let (winner, reply) = self.exchange_hedged(target, hedge, raw.clone());
            let error = match reply {
                Ok(r) if r.status == 202 && digest_ok(&r) => {
                    match self.accept(text, fingerprint, winner, &r) {
                        Ok(response) => {
                            self.note_request_outcome(winner, true);
                            self.submit_latency.observe(t0.elapsed());
                            return response;
                        }
                        // An accept body the router cannot book is as
                        // bad as a corrupt one: fail over.
                        Err(response) => {
                            self.note_request_outcome(winner, false);
                            response
                        }
                    }
                }
                Ok(r) if (r.status == 400 || r.status == 413) && digest_ok(&r) => {
                    // The spec itself is bad: every backend would agree.
                    self.note_request_outcome(winner, true);
                    return relay(&r);
                }
                Ok(r) if !digest_ok(&r) => {
                    // The reply does not match its own digest: the wire
                    // (or the backend) is lying. Never trust it.
                    self.note_corruption(winner);
                    RouterResponse::error(
                        "502 Bad Gateway",
                        &format!("backend {}: corrupt response", self.backend_addr(winner)),
                    )
                }
                Ok(r) => {
                    // 503 (shed / draining) or 5xx: try the next replica.
                    self.note_request_outcome(winner, false);
                    relay(&r)
                }
                Err(e) => {
                    self.note_request_outcome(winner, false);
                    RouterResponse::error(
                        "502 Bad Gateway",
                        &format!("backend {}: {e}", self.backend_addr(winner)),
                    )
                }
            };
            failures += 1;
            let jitter = Self::failover_jitter(fingerprint, failures);
            match next_retry(&self.config.retry, failures, started.elapsed(), jitter) {
                Some(backoff) => {
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(backoff);
                }
                // Budget exhausted: the last error is the answer.
                None => return error,
            }
        }
    }

    /// Books an accepted submission: allocate fleet-wide ids, retain
    /// per-job specs for failover, answer with the translated ids.
    /// `Err` carries the response for an accept body the router cannot
    /// book — the caller treats it as a backend failure and fails over.
    fn accept(
        &self,
        body: &str,
        fingerprint: u64,
        backend: usize,
        reply: &Reply,
    ) -> Result<RouterResponse, RouterResponse> {
        let text = String::from_utf8_lossy(&reply.body);
        let Ok(value) = serde_json::from_str(&text) else {
            return Err(RouterResponse::error("502 Bad Gateway", "unparseable backend accept"));
        };
        // Per-element specs: an array submission retains each element as
        // its own resubmittable body.
        let specs: Vec<String> = match serde_json::from_str(body) {
            Ok(parsed) => match parsed.as_array() {
                Some(items) => items.iter().map(|v| v.to_string()).collect(),
                None => vec![body.to_string()],
            },
            Err(_) => vec![body.to_string()],
        };
        let backend_ids: Vec<u64> = if let Some(id) = value.get("id").and_then(|v| v.as_u64()) {
            vec![id]
        } else if let Some(ids) = value.get("ids").and_then(|v| v.as_array()) {
            ids.iter().filter_map(|v| v.as_u64()).collect()
        } else {
            return Err(RouterResponse::error("502 Bad Gateway", "backend accept carries no id"));
        };
        let base = self.next_id.fetch_add(backend_ids.len() as u64, Ordering::Relaxed);
        {
            let mut jobs = sync::lock(&self.jobs);
            for (offset, &backend_id) in backend_ids.iter().enumerate() {
                let spec = specs.get(offset).cloned().unwrap_or_else(|| body.to_string());
                jobs.insert(
                    base + offset as u64,
                    JobRoute { spec, fingerprint, backend, backend_id },
                );
            }
        }
        self.stats.routed.fetch_add(backend_ids.len() as u64, Ordering::Relaxed);
        let body = if backend_ids.len() == 1 && value.get("id").is_some() {
            format!("{{\"id\":{base}}}")
        } else {
            let ids: Vec<String> =
                (0..backend_ids.len() as u64).map(|o| (base + o).to_string()).collect();
            format!("{{\"ids\":[{}]}}", ids.join(","))
        };
        Ok(RouterResponse::json("202 Accepted", body))
    }

    // -- GET /jobs/<id>[/status] --------------------------------------------

    /// Proxies a job poll to the owning backend, translating ids both
    /// ways; a dead owner triggers resubmission to the next replica.
    fn poll(&self, rid: u64, status_only: bool, query: Option<&str>) -> RouterResponse {
        let started = Instant::now();
        let mut failures = 0u32;
        loop {
            let Some(route) = sync::lock(&self.jobs).get(&rid).cloned() else {
                return RouterResponse::error("404 Not Found", "no such job");
            };
            let suffix = if status_only { "/status" } else { "" };
            let q = query.map(|q| format!("?{q}")).unwrap_or_default();
            let raw = format!(
                "GET /jobs/{}{suffix}{q} HTTP/1.1\r\nHost: cfrouter\r\nConnection: close\r\n\r\n",
                route.backend_id
            )
            .into_bytes();
            let addr = self.backend_addr(route.backend);
            let reply = self.exchange(
                &addr,
                &raw,
                self.config.connect_timeout,
                self.config.read_timeout,
                None,
            );
            match reply {
                Ok(r)
                    if (r.status == 200 || r.status == 202)
                        && self.reply_intact(&r, &route, status_only) =>
                {
                    self.note_request_outcome(route.backend, true);
                    if r.status == 200 && !status_only {
                        self.stats.records_streamed.fetch_add(1, Ordering::Relaxed);
                    }
                    return translate_ids(&r, route.backend_id, rid, status_only);
                }
                Ok(r) if r.status == 400 && digest_ok(&r) => {
                    self.note_request_outcome(route.backend, true);
                    return relay(&r);
                }
                // A digest mismatch (header or record field) means the
                // payload cannot be trusted: count it, feed the
                // quarantine state machine, and fail over — the corrupt
                // bytes never reach the client.
                Ok(r) if !self.reply_intact(&r, &route, status_only) => {
                    self.note_corruption(route.backend);
                }
                // 404 (restarted backend lost the job), 5xx, or a dead
                // connection: the owner cannot answer — fail over.
                Ok(_) | Err(_) => self.note_request_outcome(route.backend, false),
            }
            failures += 1;
            let jitter = Self::failover_jitter(route.fingerprint ^ rid, failures);
            let Some(backoff) = next_retry(&self.config.retry, failures, started.elapsed(), jitter)
            else {
                return RouterResponse::error(
                    "502 Bad Gateway",
                    &format!("job {rid}: backend {addr} unreachable and failover exhausted"),
                );
            };
            thread::sleep(backoff);
            if let Some((backend, backend_id)) = self.resubmit(&route) {
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                let mut jobs = sync::lock(&self.jobs);
                if let Some(r) = jobs.get_mut(&rid) {
                    r.backend = backend;
                    r.backend_id = backend_id;
                }
            }
        }
    }

    /// Whether a poll reply survives both integrity checks: the
    /// `X-CF-Digest` response header over the whole body, and — for a
    /// streamed record — the per-record digest field, bound to the
    /// backend-local id the router expects.
    fn reply_intact(&self, reply: &Reply, route: &JobRoute, status_only: bool) -> bool {
        if !digest_ok(reply) {
            return false;
        }
        if reply.status == 200 && !status_only {
            let body = String::from_utf8_lossy(&reply.body);
            return verify_record_json(body.trim_end_matches('\n'), Some(route.backend_id));
        }
        true
    }

    /// Resubmits a lost job's retained spec to the next live replica
    /// (skipping the dead owner); simulation is deterministic, so the
    /// re-run's record is byte-identical to the one the dead backend
    /// would have produced.
    fn resubmit(&self, route: &JobRoute) -> Option<(usize, u64)> {
        let candidates: Vec<usize> = self
            .candidates(route.fingerprint)
            .into_iter()
            .filter(|&c| c != route.backend && self.routable(c))
            .collect();
        for target in candidates {
            let raw = format!(
                "POST /jobs HTTP/1.1\r\nHost: cfrouter\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                route.spec.len(),
                route.spec
            )
            .into_bytes();
            let addr = self.backend_addr(target);
            let reply = self.exchange(
                &addr,
                &raw,
                self.config.connect_timeout,
                self.config.read_timeout,
                None,
            );
            match reply {
                Ok(r) if r.status == 202 && !digest_ok(&r) => self.note_corruption(target),
                Ok(r) if r.status == 202 => {
                    self.note_request_outcome(target, true);
                    let text = String::from_utf8_lossy(&r.body);
                    let id = serde_json::from_str(&text)
                        .ok()
                        .and_then(|v: serde_json::Value| v.get("id").and_then(|i| i.as_u64()));
                    if let Some(id) = id {
                        return Some((target, id));
                    }
                }
                Ok(_) | Err(_) => self.note_request_outcome(target, false),
            }
        }
        None
    }

    // -- Router-local endpoints ---------------------------------------------

    /// The router's `/healthz`: healthy while at least one backend is
    /// routable.
    fn healthz(&self) -> RouterResponse {
        let backends = sync::lock(&self.backends);
        let mut up = 0usize;
        let mut draining = 0usize;
        let mut ejected = 0usize;
        let mut quarantined = 0usize;
        for b in backends.iter() {
            match b.health {
                BackendHealth::Up => up += 1,
                BackendHealth::Draining => draining += 1,
                BackendHealth::Ejected => ejected += 1,
                BackendHealth::Quarantined => quarantined += 1,
            }
        }
        let healthy = up > 0;
        let body = format!(
            "{{\"status\":{},\"backends\":{},\"up\":{up},\"draining\":{draining},\"ejected\":{ejected},\"quarantined\":{quarantined}}}",
            if healthy { "\"ok\"" } else { "\"no-backends\"" },
            backends.len(),
        );
        RouterResponse::json(if healthy { "200 OK" } else { "503 Service Unavailable" }, body)
    }

    /// The router's `/stats`: counters plus the live backend table.
    pub fn stats_json(&self) -> String {
        let backends = sync::lock(&self.backends);
        let jobs = sync::lock(&self.jobs);
        let mut per_backend = vec![0u64; backends.len()];
        for route in jobs.values() {
            if let Some(n) = per_backend.get_mut(route.backend) {
                *n += 1;
            }
        }
        let rows: Vec<String> = backends
            .iter()
            .zip(&per_backend)
            .map(|(b, &n)| {
                let breaker = match b.breaker.state() {
                    BreakerState::Closed => "closed",
                    BreakerState::Open => "open",
                    BreakerState::HalfOpen => "half-open",
                };
                let (probe_error, probe_error_age) = match (&b.last_probe_error, b.last_probe_error_at)
                {
                    (Some(e), Some(at)) => (json_str(e), at.elapsed().as_secs().to_string()),
                    _ => ("null".to_string(), "null".to_string()),
                };
                format!(
                    "{{\"addr\":{},\"health\":{},\"breaker\":{},\"jobs\":{n},\"consecutive_failures\":{},\"consecutive_successes\":{},\"consecutive_corruptions\":{},\"last_probe_error\":{probe_error},\"last_probe_error_age_s\":{probe_error_age}}}",
                    json_str(&b.addr),
                    json_str(b.health.name()),
                    json_str(breaker),
                    b.consecutive_failures,
                    b.consecutive_successes,
                    b.consecutive_corruptions,
                )
            })
            .collect();
        let s = &self.stats;
        format!(
            "{{\"routed\":{},\"records_streamed\":{},\"failovers\":{},\"hedges\":{},\"hedge_wins\":{},\"ejections\":{},\"readmissions\":{},\"probe_failures\":{},\"corrupt_responses\":{},\"quarantines\":{},\"jobs\":{},\"backends\":[{}]}}",
            s.routed.load(Ordering::Relaxed),
            s.records_streamed.load(Ordering::Relaxed),
            s.failovers.load(Ordering::Relaxed),
            s.hedges.load(Ordering::Relaxed),
            s.hedge_wins.load(Ordering::Relaxed),
            s.ejections.load(Ordering::Relaxed),
            s.readmissions.load(Ordering::Relaxed),
            s.probe_failures.load(Ordering::Relaxed),
            s.corrupt_responses.load(Ordering::Relaxed),
            s.quarantines.load(Ordering::Relaxed),
            jobs.len(),
            rows.join(","),
        )
    }

    /// The `/ring` routing table: vnode count, the backend list with
    /// each instance's live health state, and every `(point, backend)`
    /// pair in ring order.
    pub fn ring_json(&self) -> String {
        let backends = sync::lock(&self.backends);
        let names: Vec<String> = backends
            .iter()
            .map(|b| {
                format!(
                    "{{\"addr\":{},\"health\":{}}}",
                    json_str(&b.addr),
                    json_str(b.health.name())
                )
            })
            .collect();
        let points: Vec<String> = self
            .ring
            .points()
            .iter()
            .map(|&(p, b)| format!("{{\"point\":{p},\"backend\":{b}}}"))
            .collect();
        format!(
            "{{\"vnodes\":{},\"backends\":[{}],\"points\":[{}]}}",
            self.ring.vnodes(),
            names.join(","),
            points.join(","),
        )
    }

    /// The aggregated `/metrics` body: every live backend's exposition
    /// merged (comment headers kept once — the renderer is
    /// schema-stable, so families align), plus the router's own
    /// `cf_router_*` series.
    pub fn metrics(&self) -> String {
        let addrs: Vec<String> = {
            let backends = sync::lock(&self.backends);
            backends.iter().map(|b| b.addr.clone()).collect()
        };
        let (tx, rx) = mpsc::channel::<(usize, Option<String>, bool)>();
        let mut expected = 0usize;
        for (i, addr) in addrs.iter().enumerate() {
            let tx = tx.clone();
            let addr = addr.clone();
            let connector = Arc::clone(&self.connector);
            let connect = self.config.connect_timeout;
            let read = self.config.probe_timeout.max(Duration::from_secs(2));
            let spawned =
                thread::Builder::new().name("cf-router-scrape".to_string()).spawn(move || {
                    let raw =
                        b"GET /metrics HTTP/1.1\r\nHost: cfrouter\r\nConnection: close\r\n\r\n";
                    let reply = connector
                        .exchange(&addr, raw, connect, read, None)
                        .and_then(|bytes| parse_reply(&bytes))
                        .ok()
                        .filter(|r| r.status == 200);
                    // A scraped exposition failing its digest is dropped
                    // from the merge, exactly like an unreachable one.
                    let corrupt = reply.as_ref().is_some_and(|r| !digest_ok(r));
                    let body = reply
                        .filter(digest_ok)
                        .map(|r| String::from_utf8_lossy(&r.body).to_string());
                    let _ = tx.send((i, body, corrupt));
                });
            if spawned.is_ok() {
                expected += 1;
            }
        }
        drop(tx);
        let mut bodies: Vec<(usize, String)> = Vec::new();
        for _ in 0..expected {
            match rx.recv() {
                Ok((i, Some(body), _)) => bodies.push((i, body)),
                Ok((i, None, true)) => self.note_corruption(i),
                Ok((_, None, false)) => {}
                Err(_) => break,
            }
        }
        bodies.sort_by_key(|&(i, _)| i);
        let mut out = String::with_capacity(32 * 1024);
        for (n, (_, body)) in bodies.iter().enumerate() {
            if n == 0 {
                out.push_str(body);
            } else {
                for line in body.lines().filter(|l| !l.starts_with('#')) {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out.push_str(&self.own_metrics());
        out
    }

    /// The router's own `cf_router_*` series.
    fn own_metrics(&self) -> String {
        let s = &self.stats;
        let counters: [(&str, &str, u64); 10] = [
            (
                "cf_router_routed_total",
                "Jobs accepted and routed to a backend.",
                s.routed.load(Ordering::Relaxed),
            ),
            (
                "cf_router_records_streamed_total",
                "Finished records streamed through the router.",
                s.records_streamed.load(Ordering::Relaxed),
            ),
            (
                "cf_router_failovers_total",
                "Requests failed over to another ring replica.",
                s.failovers.load(Ordering::Relaxed),
            ),
            (
                "cf_router_hedges_total",
                "Hedged duplicate requests fired past the latency quantile.",
                s.hedges.load(Ordering::Relaxed),
            ),
            (
                "cf_router_hedge_wins_total",
                "Hedged duplicates that answered first.",
                s.hedge_wins.load(Ordering::Relaxed),
            ),
            (
                "cf_router_ejections_total",
                "Backends ejected by the health prober.",
                s.ejections.load(Ordering::Relaxed),
            ),
            (
                "cf_router_readmissions_total",
                "Ejected backends re-admitted after consecutive healthy probes.",
                s.readmissions.load(Ordering::Relaxed),
            ),
            (
                "cf_router_probe_failures_total",
                "Health probes that failed (503 / timeout / connect error).",
                s.probe_failures.load(Ordering::Relaxed),
            ),
            (
                "cf_router_corrupt_responses",
                "Backend responses rejected for a digest mismatch (header or record field).",
                s.corrupt_responses.load(Ordering::Relaxed),
            ),
            (
                "cf_router_quarantines_total",
                "Backends quarantined after repeated corrupt responses.",
                s.quarantines.load(Ordering::Relaxed),
            ),
        ];
        let mut out = String::with_capacity(2048);
        for (name, help, value) in counters {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        }
        out.push_str(concat!(
            "# HELP cf_router_backend_up Backend routability as seen by the prober ",
            "(1 = up, 0 = ejected, draining or quarantined).\n",
            "# TYPE cf_router_backend_up gauge\n",
        ));
        let backends = sync::lock(&self.backends);
        for b in backends.iter() {
            out.push_str(&format!(
                "cf_router_backend_up{{backend=\"{}\",state=\"{}\"}} {}\n",
                b.addr.replace('"', ""),
                b.health.name(),
                u8::from(b.health == BackendHealth::Up),
            ));
        }
        out
    }

    // -- Request dispatch ---------------------------------------------------

    /// Routes one parsed client request (the [`RouterServer`] accept
    /// loop calls this per connection).
    pub fn handle(&self, request: &HttpRequest) -> (String, String) {
        let response = self.dispatch(request);
        // The router stamps its own responses too, so a client can hold
        // the whole chain (backend → router → client) to one check.
        let mut head = format!(
            "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\nX-CF-Digest: {:016x}\r\n",
            response.status,
            response.content_type,
            response.body.len(),
            fnv1a(response.body.as_bytes()),
        );
        if let Some(allow) = response.allow {
            head.push_str(&format!("Allow: {allow}\r\n"));
        }
        if let Some(secs) = response.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        (head, response.body)
    }

    fn dispatch(&self, request: &HttpRequest) -> RouterResponse {
        let path = request.path();
        match path {
            "/healthz" | "/stats" | "/ring" | "/metrics" => {
                if request.method != "GET" {
                    let mut r =
                        RouterResponse::error("405 Method Not Allowed", "only GET is supported");
                    r.allow = Some("GET");
                    return r;
                }
                match path {
                    "/healthz" => self.healthz(),
                    "/stats" => RouterResponse::json("200 OK", self.stats_json()),
                    "/ring" => RouterResponse::json("200 OK", self.ring_json()),
                    _ => RouterResponse {
                        status: "200 OK",
                        content_type: "text/plain; version=0.0.4; charset=utf-8",
                        retry_after: None,
                        allow: None,
                        body: self.metrics(),
                    },
                }
            }
            "/jobs" => {
                if request.method != "POST" {
                    let mut r =
                        RouterResponse::error("405 Method Not Allowed", "submit jobs with POST");
                    r.allow = Some("POST");
                    return r;
                }
                self.submit(&request.body)
            }
            _ => match path.strip_prefix("/jobs/") {
                Some(rest) => {
                    if request.method != "GET" {
                        let mut r =
                            RouterResponse::error("405 Method Not Allowed", "poll jobs with GET");
                        r.allow = Some("GET");
                        return r;
                    }
                    let (id_part, status_only) = match rest.strip_suffix("/status") {
                        Some(id_part) => (id_part, true),
                        None => (rest, false),
                    };
                    match id_part.parse::<u64>() {
                        Ok(id) => self.poll(id, status_only, request.query()),
                        Err(_) => RouterResponse::error(
                            "400 Bad Request",
                            "job id must be an unsigned integer",
                        ),
                    }
                }
                None => RouterResponse::json(
                    "404 Not Found",
                    "{\"error\":\"not found\",\"routes\":[\"/healthz\",\"/stats\",\"/ring\",\
                     \"/metrics\",\"/jobs\",\"/jobs/<id>\",\"/jobs/<id>/status\"]}"
                        .to_string(),
                ),
            },
        }
    }
}

/// Picks the hedge target for `target` from the ring candidates: `None`
/// unless at least two **live** (routable) backends exist — with a lone
/// live backend the duplicate would land on the very instance already
/// serving the primary, a pure waste.
fn hedge_pick(
    candidates: &[usize],
    target: usize,
    routable: impl Fn(usize) -> bool,
) -> Option<usize> {
    let live: Vec<usize> = candidates.iter().copied().filter(|&c| routable(c)).collect();
    if live.len() > 1 {
        live.into_iter().find(|&c| c != target)
    } else {
        None
    }
}

/// Relays a backend response verbatim (status, body, `Retry-After`).
fn relay(reply: &Reply) -> RouterResponse {
    let mut r = RouterResponse::json(
        status_line(reply.status),
        String::from_utf8_lossy(&reply.body).to_string(),
    );
    if let Some(after) = reply.header("retry-after").and_then(|v| v.parse().ok()) {
        r.retry_after = Some(after);
    }
    r
}

/// Rewrites the backend-local id in a poll response to the router's
/// fleet-wide id: records lead with `{"job":N,`, status JSON with
/// `{"id":N,` — both exact prefixes of the deterministic renderers.
fn translate_ids(reply: &Reply, backend_id: u64, rid: u64, status_only: bool) -> RouterResponse {
    let body = String::from_utf8_lossy(&reply.body).to_string();
    let rewritten = if reply.status == 200 && !status_only {
        let from = format!("{{\"job\":{backend_id},");
        let to = format!("{{\"job\":{rid},");
        if body.starts_with(&from) {
            body.replacen(&from, &to, 1)
        } else {
            body
        }
    } else {
        let from = format!("{{\"id\":{backend_id},");
        let to = format!("{{\"id\":{rid},");
        if body.starts_with(&from) {
            body.replacen(&from, &to, 1)
        } else {
            body
        }
    };
    RouterResponse::json(status_line(reply.status), rewritten)
}

// ---------------------------------------------------------------------------
// The router's HTTP server
// ---------------------------------------------------------------------------

/// The router's HTTP/1.1 listener: the same dependency-free
/// thread-per-connection loop as [`crate::StatusServer`], dispatching
/// into [`Router::handle`]. Binds 127.0.0.1 only.
#[derive(Debug)]
pub struct RouterServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
    router: Arc<Router>,
}

impl RouterServer {
    /// Binds `127.0.0.1:port` (0 picks a free port), starts the accept
    /// loop and the router's health prober.
    ///
    /// # Errors
    ///
    /// Any socket bind/configure failure, unchanged.
    pub fn bind(port: u16, router: Arc<Router>) -> std::io::Result<RouterServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        router.start_prober();
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let router = Arc::clone(&router);
            thread::Builder::new()
                .name("cf-router-server".to_string())
                .spawn(move || accept_loop(&listener, &router, &shutdown))?
        };
        Ok(RouterServer { addr, shutdown, thread: Some(thread), router })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and the prober, joining both threads (also
    /// done on drop).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
        self.router.stop();
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, router: &Arc<Router>, shutdown: &AtomicBool) {
    let seq = AtomicU64::new(0);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let router = Arc::clone(router);
                let token = seq.fetch_add(1, Ordering::Relaxed);
                let spawned = thread::Builder::new().name(format!("cf-router-conn-{token}")).spawn(
                    move || {
                        let _ = serve_connection(stream, &router);
                    },
                );
                drop(spawned);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_connection(mut stream: TcpStream, router: &Arc<Router>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + READ_DEADLINE;
    let request = loop {
        match api::parse_request(&buf, router.config.max_body) {
            Ok(Some(request)) => break Ok(request),
            Ok(None) => {}
            Err(e) => break Err(e),
        }
        if Instant::now() > deadline {
            break Err(api::HttpParseError::BadRequestLine);
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) if buf.is_empty() => return Ok(()),
            Ok(0) | Err(_) => break Err(api::HttpParseError::BadRequestLine),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let (head, body) = match request {
        Ok(request) => router.handle(&request),
        Err(e) => {
            let body = format!("{{\"error\":{}}}", json_str(&e.to_string()));
            let head = format!(
                "HTTP/1.1 {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                e.status(),
                body.len(),
            );
            (head, body)
        }
    };
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9100 + i)).collect()
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_backends() {
        let ring = Ring::new(&names(3), 64);
        assert_eq!(ring.points().len(), 3 * 64);
        for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let a = ring.replicas(key);
            let b = ring.replicas(key);
            assert_eq!(a, b);
            assert_eq!(a.len(), 3, "{a:?}");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "replicas must be distinct: {a:?}");
        }
    }

    #[test]
    fn removing_a_backend_keeps_surviving_assignments() {
        let all = names(4);
        let ring = Ring::new(&all, 64);
        let survivors: Vec<String> = all.iter().filter(|n| *n != &all[2]).cloned().collect();
        let smaller = Ring::new(&survivors, 64);
        for key in 0..500u64 {
            let before = match ring.primary(key) {
                Some(b) => b,
                None => panic!("empty ring"),
            };
            let after = match smaller.primary(key) {
                Some(b) => b,
                None => panic!("empty ring"),
            };
            if before != 2 {
                assert_eq!(&all[before], &survivors[after], "key {key} moved needlessly");
            }
        }
    }

    fn failed() -> Probe {
        Probe::Failed("connection refused".to_string())
    }

    #[test]
    fn probe_transitions_eject_and_readmit() {
        let q = Duration::ZERO;
        let mut b = Backend::new(
            "127.0.0.1:1".to_string(),
            BreakerConfig { failure_threshold: 2, open_for: Duration::from_millis(10) },
        );
        assert_eq!(b.health, BackendHealth::Up);
        assert_eq!(b.note_probe(failed(), 2, 3, q), (false, false));
        assert_eq!(b.health, BackendHealth::Up);
        assert_eq!(b.note_probe(failed(), 2, 3, q), (true, false));
        assert_eq!(b.health, BackendHealth::Ejected);
        // The failure that ejected the backend stays visible afterwards.
        assert_eq!(b.last_probe_error.as_deref(), Some("connection refused"));
        // Two successes are not enough at readmit_after = 3.
        assert_eq!(b.note_probe(Probe::Ok, 2, 3, q), (false, false));
        assert_eq!(b.note_probe(Probe::Ok, 2, 3, q), (false, false));
        assert_eq!(b.health, BackendHealth::Ejected);
        assert_eq!(b.note_probe(Probe::Ok, 2, 3, q), (false, true));
        assert_eq!(b.health, BackendHealth::Up);
        assert_eq!(b.last_probe_error.as_deref(), Some("connection refused"));
        // Draining is planned removal: no ejection counted.
        assert_eq!(b.note_probe(Probe::Draining, 2, 3, q), (false, false));
        assert_eq!(b.health, BackendHealth::Draining);
        // A draining backend that stops answering ends up ejected.
        assert_eq!(b.note_probe(failed(), 2, 3, q), (false, false));
        assert_eq!(b.note_probe(failed(), 2, 3, q), (true, false));
        assert_eq!(b.health, BackendHealth::Ejected);
    }

    #[test]
    fn quarantine_requires_consecutive_corruptions_and_sits_out_its_window() {
        let router = Router::new(RouterConfig {
            backends: names(2),
            quarantine_after: 3,
            quarantine_for: Duration::from_millis(40),
            ..RouterConfig::default()
        });
        // Two corruptions, then a good response: streak resets.
        router.note_corruption(0);
        router.note_corruption(0);
        router.note_request_outcome(0, true);
        router.note_corruption(0);
        router.note_corruption(0);
        assert!(router.routable(0), "streak of 2 must not quarantine at threshold 3");
        router.note_corruption(0);
        {
            let backends = sync::lock(&router.backends);
            assert_eq!(backends[0].health, BackendHealth::Quarantined);
        }
        assert!(!router.routable(0));
        assert_eq!(router.stats.quarantines.load(Ordering::Relaxed), 1);
        assert_eq!(router.stats.corrupt_responses.load(Ordering::Relaxed), 5);
        // Healthy probes inside the window do not release the backend...
        {
            let mut backends = sync::lock(&router.backends);
            for _ in 0..3 {
                backends[0].note_probe(Probe::Ok, 2, 3, Duration::from_millis(40));
            }
            assert_eq!(backends[0].health, BackendHealth::Quarantined);
        }
        // ...but once it elapses, the next healthy probe does.
        thread::sleep(Duration::from_millis(45));
        {
            let mut backends = sync::lock(&router.backends);
            assert_eq!(
                backends[0].note_probe(Probe::Ok, 2, 3, Duration::from_millis(40)),
                (false, true)
            );
            assert_eq!(backends[0].health, BackendHealth::Up);
            assert_eq!(backends[0].consecutive_corruptions, 0);
        }
        // The transition is visible in /stats, /ring and /healthz.
        router.note_corruption(1);
        router.note_corruption(1);
        router.note_corruption(1);
        let stats = router.stats_json();
        assert!(stats.contains("\"health\":\"quarantined\""), "{stats}");
        assert!(stats.contains("\"quarantines\":2"), "{stats}");
        let ring = router.ring_json();
        assert!(ring.contains("\"health\":\"quarantined\""), "{ring}");
        let h = router.healthz();
        assert!(h.body.contains("\"quarantined\":1"), "{}", h.body);
    }

    #[test]
    fn hedge_pick_skips_lone_live_backend() {
        // Two live backends: hedge to the other one.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |c| c < 2), Some(1));
        // Only the primary is live: no hedge — the duplicate would land
        // on the same instance.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |c| c == 0), None);
        // Nothing live at all: no hedge either.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |_| false), None);
        // Primary dead, two live replicas: hedge picks a live one.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |c| c > 0), Some(1));
    }

    #[test]
    fn parse_reply_rejects_garbage_and_torn_bodies() {
        // Garbled status line: not a reply at all.
        assert!(parse_reply(b"GARBAGE! 200 OK\r\nContent-Length: 2\r\n\r\n{}").is_err());
        // Body shorter than the declared Content-Length: torn.
        assert!(parse_reply(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n{}").is_err());
        // Trailing bytes past Content-Length are dropped, not trusted.
        let r = match parse_reply(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}junk") {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn digest_header_verifies_the_body() {
        let body = b"{\"id\":0}".to_vec();
        let good = Reply {
            status: 202,
            headers: vec![("X-CF-Digest".to_string(), format!("{:016x}", fnv1a(&body)))],
            body: body.clone(),
        };
        assert!(digest_ok(&good));
        let bad = Reply {
            status: 202,
            headers: vec![("X-CF-Digest".to_string(), format!("{:016x}", fnv1a(&body) ^ 1))],
            body: body.clone(),
        };
        assert!(!digest_ok(&bad));
        let unstamped = Reply { status: 202, headers: Vec::new(), body };
        assert!(digest_ok(&unstamped), "plain upstreams without the header still pass");
    }

    #[test]
    fn reply_parsing_and_status_mapping() {
        let reply = parse_reply(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 7\r\nContent-Length: 2\r\n\r\n{}",
        );
        let reply = match reply {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("7"));
        assert_eq!(reply.body, b"{}");
        assert_eq!(status_line(202), "202 Accepted");
        assert_eq!(status_line(999), "502 Bad Gateway");
        assert!(parse_reply(b"HTTP/1.1 200").is_err());
    }

    #[test]
    fn id_translation_rewrites_exact_prefixes_only() {
        let record = Reply {
            status: 200,
            headers: Vec::new(),
            body: b"{\"job\":3,\"label\":\"x\",\"ok\":true}".to_vec(),
        };
        let out = translate_ids(&record, 3, 17, false);
        assert_eq!(out.body, "{\"job\":17,\"label\":\"x\",\"ok\":true}");
        let status = Reply {
            status: 202,
            headers: Vec::new(),
            body: b"{\"id\":0,\"state\":\"running\"}".to_vec(),
        };
        let out = translate_ids(&status, 0, 5, false);
        assert_eq!(out.body, "{\"id\":5,\"state\":\"running\"}");
        // A body whose prefix does not match is left alone.
        let odd = Reply { status: 200, headers: Vec::new(), body: b"{\"jobs\":3}".to_vec() };
        let out = translate_ids(&odd, 3, 17, false);
        assert_eq!(out.body, "{\"jobs\":3}");
    }

    #[test]
    fn hedge_threshold_floors_then_tracks_the_quantile() {
        let router = Router::new(RouterConfig {
            backends: names(2),
            hedge_floor: Duration::from_millis(10),
            ..RouterConfig::default()
        });
        assert_eq!(router.hedge_threshold(), Duration::from_millis(10));
        // 30 fast samples: p95 lands in a low bucket, clamped up to the floor.
        for _ in 0..30 {
            router.submit_latency.observe(Duration::from_micros(64));
        }
        assert_eq!(router.hedge_threshold(), Duration::from_millis(10));
        // A slow tail drags the p95 above the floor.
        for _ in 0..300 {
            router.submit_latency.observe(Duration::from_millis(80));
        }
        assert!(router.hedge_threshold() >= Duration::from_millis(80));
    }

    #[test]
    fn router_healthz_reflects_backend_states() {
        let router = Router::new(RouterConfig { backends: names(2), ..RouterConfig::default() });
        let r = router.healthz();
        assert_eq!(r.status, "200 OK");
        assert!(r.body.contains("\"up\":2"), "{}", r.body);
        {
            let mut backends = sync::lock(&router.backends);
            backends[0].health = BackendHealth::Ejected;
            backends[1].health = BackendHealth::Draining;
        }
        let r = router.healthz();
        assert_eq!(r.status, "503 Service Unavailable");
        assert!(r.body.contains("\"no-backends\""), "{}", r.body);
        assert!(r.body.contains("\"draining\":1"), "{}", r.body);
        let stats = router.stats_json();
        assert!(stats.contains("\"health\":\"ejected\""), "{stats}");
        assert!(stats.contains("\"health\":\"draining\""), "{stats}");
    }
}
