//! `cfrouter` — a fault-tolerant HTTP front door over a fleet of
//! `cfserve` backends: one more fractal level, with the router as the
//! parent node.
//!
//! Jobs are **consistent-hashed by plan-cache fingerprint** (the
//! `(machine fingerprint, program hash)` identity from
//! [`crate::cache::CacheKey`], extracted from the `POST /jobs` body by
//! [`api::routing_fingerprint`]) onto a [`Ring`] of backends, so every
//! instance's plan cache stays warm for its own key range. Robustness
//! is the headline:
//!
//! * a **health prober** polls each backend's `/healthz` on a background
//!   thread, ejecting instances that answer `503` or time out
//!   ([`BackendHealth::Ejected`]) and re-admitting them after
//!   consecutive successes; a backend reporting `"draining"` is treated
//!   as *planned removal* ([`BackendHealth::Draining`]), not failure;
//! * failed or ejected-backend requests **fail over** to the next ring
//!   replica with bounded retries and jittered exponential backoff
//!   (reusing [`next_retry`]); a job whose owner died mid-run is
//!   resubmitted from the router's retained spec, so its record still
//!   streams — byte-identical, because records are deterministic;
//! * submissions slower than a **latency quantile** (p95 over the
//!   router's own submit histogram, floored by
//!   [`RouterConfig::hedge_floor`]) get one **hedged duplicate** to the
//!   next replica: first answer wins, the loser's connection is shut
//!   down;
//! * a per-backend **circuit breaker** (the
//!   [`supervisor`](crate::supervisor) state machine) stops hammering a
//!   dying instance between probe passes;
//! * every backend response is **integrity-checked** before the router
//!   trusts it: the `X-CF-Digest` header over the body, plus the
//!   per-record digest field on streamed records (see
//!   [`crate::serve::verify_record_json`]). A mismatch counts as a
//!   failure (`cf_router_corrupt_responses`), feeds the breaker, and
//!   fails over; repeated corruption moves the backend to
//!   [`BackendHealth::Quarantined`] — answering probes but untrusted —
//!   until the quarantine window elapses. All backend traffic flows
//!   through the [`Connector`] seam, so the seeded
//!   [`crate::netfault`] chaos layer can stand in for a lying network.
//!
//! The router's own endpoints: `/healthz` (healthy while ≥ 1 backend is
//! routable), `/stats` (the [`RouterStats`] counters plus the live
//! backend table), `/ring` (the routing table), and `/metrics` — every
//! backend's Prometheus exposition merged into one fleet view (the
//! per-backend `instance` label keeps series distinct) plus the
//! router's own `cf_router_*` series. `POST /jobs`,
//! `GET /jobs/<id>` and `GET /jobs/<id>/status` proxy to the owning
//! backend with the backend-local job id translated to the router's
//! fleet-wide id, so a client cannot tell the fleet from one big
//! instance. See DESIGN.md §10.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::api::{self, HttpRequest};
use crate::fault::fnv1a;
use crate::netfault::{FaultConnector, NetFaultPlan};
use crate::obs::LatencyHistogram;
use crate::serve::{json_str, verify_record_json};
use crate::stats::RouterStats;
use crate::supervisor::{next_retry, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use crate::sync;
use crate::trace::{Attribution, TraceContext, ATTRIBUTION_HEADER, TRACE_HEADER};

/// How long the accept loop sleeps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Per-read/write socket timeout on *client* connections.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Total time a client gets to deliver one complete request.
const READ_DEADLINE: Duration = Duration::from_secs(5);

/// Minimum submit-latency samples before the hedge threshold trusts the
/// histogram's quantile over the configured floor.
const HEDGE_MIN_SAMPLES: u64 = 20;

/// The quantile a submission must exceed before it is hedged.
const HEDGE_QUANTILE: f64 = 0.95;

/// Router-side span retention: the most recent spans kept for
/// `GET /trace/<trace-id>` assembly (old spans fall off the front).
const ROUTER_SPAN_CAP: usize = 4096;

/// Bucket count of each SLO burn-rate window ring (60 × 5 s = 5 m,
/// 60 × 60 s = 1 h).
const SLO_SLOTS: usize = 60;

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

/// A consistent-hash ring over backend indices: each backend owns
/// [`vnodes`](Ring::vnodes) pseudo-random points on a `u64` circle, and
/// a key belongs to the first point at or after its hash. Removing one
/// backend only remaps the keys that backend owned (its points vanish;
/// everyone else's stay put) — the minimal-disruption property the ring
/// proptests pin down.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: usize,
    backends: usize,
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// A ring over `names` with `vnodes` points per backend (minimum 1).
    /// Points derive from the backend *name*, so the same name owns the
    /// same arc regardless of which other backends exist.
    pub fn new(names: &[String], vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (i, name) in names.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a(format!("{name}#{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring { vnodes, backends: names.len(), points }
    }

    /// Points per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The sorted `(point, backend index)` table (the `/ring` payload).
    pub fn points(&self) -> &[(u64, usize)] {
        &self.points
    }

    /// Re-spreads a fingerprint over the point space (fingerprints are
    /// already hashes, but XOR-folded ones cluster; one more FNV pass
    /// decorrelates them from the vnode points).
    fn spread(key: u64) -> u64 {
        fnv1a(&key.to_le_bytes())
    }

    /// The backend that owns `key` (`None` for an empty ring).
    pub fn primary(&self, key: u64) -> Option<usize> {
        self.replicas(key).first().copied()
    }

    /// Every backend in ring-walk order from `key`'s point: the owner
    /// first, then each distinct successor — the failover order.
    pub fn replicas(&self, key: u64) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let h = Self::spread(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut seen = vec![false; self.backends];
        let mut out = Vec::with_capacity(self.backends);
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            if !seen[b] {
                seen[b] = true;
                out.push(b);
                if out.len() == self.backends {
                    break;
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Backend state
// ---------------------------------------------------------------------------

/// A backend's routable state, as maintained by the health prober.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendHealth {
    /// Routable: answering `/healthz` with 200.
    Up,
    /// Ejected after consecutive probe failures (503 / timeout);
    /// re-admitted after consecutive successes.
    Ejected,
    /// Reported `"draining"`: planned removal, not failure. No new work
    /// is routed here, but in-flight polls may still complete.
    Draining,
    /// Quarantined after repeated *corrupt* responses (digest mismatch):
    /// the backend answers probes — it is not dead — but its data cannot
    /// be trusted, so no work routes here until the quarantine window
    /// elapses **and** probes stay healthy.
    Quarantined,
}

impl BackendHealth {
    /// The state's stable wire name (`/stats`, `/ring`, `/metrics`).
    pub fn name(self) -> &'static str {
        match self {
            BackendHealth::Up => "up",
            BackendHealth::Ejected => "ejected",
            BackendHealth::Draining => "draining",
            BackendHealth::Quarantined => "quarantined",
        }
    }
}

/// What one `/healthz` probe observed (`Failed` retains the error text
/// for the `/stats` backend table).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Probe {
    Ok,
    Draining,
    Failed(String),
}

#[derive(Debug)]
struct Backend {
    addr: String,
    health: BackendHealth,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// Digest-mismatch streak; `quarantine_after` of these while `Up`
    /// moves the backend to [`BackendHealth::Quarantined`].
    consecutive_corruptions: u32,
    /// When the quarantine started (release is time- *and* probe-gated).
    quarantined_at: Option<Instant>,
    /// Last probe failure, kept sticky across recovery so an ejection is
    /// debuggable from `/stats` after the backend comes back.
    last_probe_error: Option<String>,
    last_probe_error_at: Option<Instant>,
    breaker: CircuitBreaker,
    /// Hedged races this backend answered first (as primary or as the
    /// hedged duplicate's target).
    hedges_won: u64,
    /// Hedged races where this backend's in-flight request was cancelled
    /// because the other side answered first.
    hedges_cancelled: u64,
}

impl Backend {
    fn new(addr: String, breaker: BreakerConfig) -> Backend {
        Backend {
            addr,
            health: BackendHealth::Up,
            consecutive_failures: 0,
            consecutive_successes: 0,
            consecutive_corruptions: 0,
            quarantined_at: None,
            last_probe_error: None,
            last_probe_error_at: None,
            breaker: CircuitBreaker::new(breaker),
            hedges_won: 0,
            hedges_cancelled: 0,
        }
    }

    /// Folds one probe observation into the health state machine.
    /// Returns `(ejected, readmitted)` transitions for the counters.
    fn note_probe(
        &mut self,
        probe: Probe,
        eject_after: u32,
        readmit_after: u32,
        quarantine_for: Duration,
    ) -> (bool, bool) {
        match probe {
            Probe::Ok => {
                self.consecutive_failures = 0;
                self.consecutive_successes += 1;
                if self.health != BackendHealth::Up && self.consecutive_successes >= readmit_after {
                    // A quarantined backend additionally sits out its
                    // full window: healthy probes alone do not prove the
                    // data path is trustworthy again.
                    let held = self.health == BackendHealth::Quarantined
                        && self.quarantined_at.is_some_and(|t| t.elapsed() < quarantine_for);
                    if !held {
                        self.health = BackendHealth::Up;
                        self.quarantined_at = None;
                        self.consecutive_corruptions = 0;
                        self.breaker.record_success();
                        return (false, true);
                    }
                }
            }
            Probe::Draining => {
                // Planned removal: not a failure, but not routable.
                self.consecutive_failures = 0;
                self.consecutive_successes = 0;
                self.health = BackendHealth::Draining;
                self.quarantined_at = None;
            }
            Probe::Failed(error) => {
                self.last_probe_error = Some(error);
                self.last_probe_error_at = Some(Instant::now());
                self.consecutive_successes = 0;
                self.consecutive_failures += 1;
                if self.health != BackendHealth::Ejected && self.consecutive_failures >= eject_after
                {
                    // Ejection supersedes quarantine: the backend is no
                    // longer answering at all, so the corruption
                    // evidence resets with the stronger verdict.
                    self.health = BackendHealth::Ejected;
                    self.quarantined_at = None;
                    self.consecutive_corruptions = 0;
                    return (true, false);
                }
            }
        }
        (false, false)
    }
}

// ---------------------------------------------------------------------------
// Router configuration
// ---------------------------------------------------------------------------

/// Construction parameters for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend `host:port` status addresses, in ring order.
    pub backends: Vec<String>,
    /// Consistent-hash points per backend (default 64).
    pub vnodes: usize,
    /// Health-probe cadence (default 250 ms).
    pub probe_interval: Duration,
    /// Per-probe connect/read timeout (default 500 ms).
    pub probe_timeout: Duration,
    /// Consecutive probe failures that eject a backend (default 2).
    pub eject_after: u32,
    /// Consecutive probe successes that re-admit one (default 3).
    pub readmit_after: u32,
    /// Failover retry budget and backoff for proxied requests.
    pub retry: RetryPolicy,
    /// Hedge a submission after this long even while the latency
    /// histogram is cold; `ZERO` disables hedging (default 250 ms).
    pub hedge_floor: Duration,
    /// Per-backend circuit-breaker thresholds (default: open after 4
    /// consecutive request failures for 1 s).
    pub breaker: BreakerConfig,
    /// Proxy connect timeout (default 500 ms).
    pub connect_timeout: Duration,
    /// Proxy read timeout; must exceed the longest `/jobs/<id>`
    /// long-poll (default 150 s).
    pub read_timeout: Duration,
    /// Client request-body bound, as on `cfserve` (default 1 MiB).
    pub max_body: usize,
    /// Consecutive corrupt (digest-mismatch) responses that quarantine a
    /// backend (default 3).
    pub quarantine_after: u32,
    /// Minimum time a quarantined backend sits out before healthy probes
    /// can re-admit it (default 5 s).
    pub quarantine_for: Duration,
    /// Seeded wire-fault plan decorating the dialer (chaos testing);
    /// `None` dials straight TCP.
    pub netfault: Option<NetFaultPlan>,
    /// End-to-end latency target for SLO accounting: a streamed record
    /// counts *good* when its attributed latency (backend `total_us`
    /// plus router submit network and backoff overhead — poll wait
    /// excluded, since it depends on client timing) is within the
    /// target. `None` disables SLO accounting (the `cf_slo_*` families
    /// are still declared, sample-less).
    pub slo_target: Option<Duration>,
    /// The SLO objective: the fraction of records that must be good
    /// (default 0.99). A burn rate of 1.0 means bad records arrive at
    /// exactly the rate that exhausts the error budget on schedule.
    pub slo_objective: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            vnodes: 64,
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            eject_after: 2,
            readmit_after: 3,
            retry: RetryPolicy {
                max_retries: 6,
                base_backoff: Duration::from_millis(25),
                max_backoff: Duration::from_millis(400),
                total_deadline: None,
            },
            hedge_floor: Duration::from_millis(250),
            breaker: BreakerConfig { failure_threshold: 4, open_for: Duration::from_secs(1) },
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(150),
            max_body: api::DEFAULT_MAX_BODY_BYTES,
            quarantine_after: 3,
            quarantine_for: Duration::from_secs(5),
            netfault: None,
            slo_target: None,
            slo_objective: 0.99,
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing (client side)
// ---------------------------------------------------------------------------

/// One parsed backend reply.
#[derive(Debug, Clone)]
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// A handle the hedging path uses to abort the losing request: the
/// in-flight stream is registered here, and `cancel` shuts it down so
/// the loser unblocks instead of riding out its read timeout. Public
/// only because it appears in the [`Connector`] seam's signature; a
/// fault decorator just passes it through to the real dialer.
#[derive(Debug, Default)]
pub struct CancelSlot {
    stream: Mutex<Option<TcpStream>>,
    cancelled: AtomicBool,
}

impl CancelSlot {
    fn arm(&self, stream: &TcpStream) {
        let clone = stream.try_clone().ok();
        *sync::lock(&self.stream) = clone;
        if self.cancelled.load(Ordering::SeqCst) {
            self.cancel();
        }
    }

    fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        if let Some(s) = sync::lock(&self.stream).take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// The router's wire seam: one blocking HTTP/1.1 exchange returning the
/// **raw response bytes** (parsing happens above the seam, so a
/// decorator — [`crate::netfault::FaultConnector`] — can refuse, delay,
/// tear, garble, or corrupt at the byte level exactly like a real
/// network would).
pub trait Connector: Send + Sync + std::fmt::Debug {
    /// Dials `addr`, writes `raw`, reads the response to EOF (the peer
    /// closes the connection after its response, which frames the
    /// body). `cancel`, when present, lets a hedging caller abort the
    /// exchange mid-flight.
    ///
    /// # Errors
    ///
    /// Connect/read/write failures, unchanged from the socket layer.
    fn exchange(
        &self,
        addr: &str,
        raw: &[u8],
        connect_timeout: Duration,
        read_timeout: Duration,
        cancel: Option<&CancelSlot>,
    ) -> std::io::Result<Vec<u8>>;
}

/// The real dialer: plain blocking TCP, no faults.
#[derive(Debug, Default)]
pub struct TcpConnector;

impl Connector for TcpConnector {
    fn exchange(
        &self,
        addr: &str,
        raw: &[u8],
        connect_timeout: Duration,
        read_timeout: Duration,
        cancel: Option<&CancelSlot>,
    ) -> std::io::Result<Vec<u8>> {
        let sock: SocketAddr = addr.parse().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{addr}: {e}"))
        })?;
        let mut stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(connect_timeout))?;
        if let Some(slot) = cancel {
            slot.arm(&stream);
        }
        stream.write_all(raw)?;
        let mut bytes = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => bytes.extend_from_slice(&chunk[..n]),
                Err(e) => {
                    if bytes.is_empty() {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(bytes)
    }
}

fn parse_reply(bytes: &[u8]) -> std::io::Result<Reply> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let head_end =
        bytes.windows(4).position(|w| w == b"\r\n\r\n").ok_or_else(|| bad("truncated reply"))?;
    let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| bad("non-UTF-8 reply head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty reply"))?;
    // A real peer always leads with the protocol version; anything else
    // is line noise (a garbled status line must not parse as a reply).
    if !status_line.starts_with("HTTP/") {
        return Err(bad("malformed status line"));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_string(), v.trim().to_string()))
        .collect();
    let mut body = bytes[head_end + 4..].to_vec();
    // Read-to-EOF framing cannot tell a complete body from a torn one
    // on its own — hold the peer to its declared Content-Length.
    if let Some(declared) = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body.len() < declared {
            return Err(bad("torn reply: body shorter than Content-Length"));
        }
        body.truncate(declared);
    }
    Ok(Reply { status, headers, body })
}

/// Whether the reply's `X-CF-Digest` header (when present) matches its
/// body bytes. Replies without the header pass — the check is for peers
/// that stamp it (every `cfserve` does).
fn digest_ok(reply: &Reply) -> bool {
    match reply.header("x-cf-digest") {
        Some(h) => {
            u64::from_str_radix(h.trim(), 16).map(|d| d == fnv1a(&reply.body)).unwrap_or(false)
        }
        None => true,
    }
}

/// One resolved (possibly hedged) submit attempt: which backend
/// answered first, under which attempt trace context and cause, fired
/// when, with what reply.
struct AttemptReply {
    backend: usize,
    ctx: TraceContext,
    cause: &'static str,
    fired_at: Instant,
    reply: std::io::Result<Reply>,
}

/// The raw `POST /jobs` request for one attempt, stamped with the
/// attempt's trace context so the backend's per-job spans parent to it.
fn submit_raw(text: &str, ctx: TraceContext) -> Vec<u8> {
    format!(
        "POST /jobs HTTP/1.1\r\nHost: cfrouter\r\n{TRACE_HEADER}: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        ctx.encode(),
        text.len(),
    )
    .into_bytes()
}

/// One backend `/trace` event that belongs to the requested trace:
/// decoded just far enough to merge (times in µs on the *backend's*
/// clock — rebased into the parent attempt's window at render time).
struct BackendTraceEvent {
    kind: String,
    detail: String,
    at_us: u64,
    duration_us: Option<u64>,
    span: u64,
    parent: Option<u64>,
}

/// Decodes a backend `/trace` body, keeping only events stamped with
/// `trace_id`. `None` when the body is not the expected JSON shape.
fn parse_backend_trace(body: &str, trace_id: u128) -> Option<Vec<BackendTraceEvent>> {
    let value = serde_json::from_str(body).ok()?;
    let events = value.get("events")?.as_array()?;
    let want = format!("{trace_id:032x}");
    let mut out = Vec::new();
    for e in events {
        if e.get("trace").and_then(|t| t.as_str()) != Some(want.as_str()) {
            continue;
        }
        let Some(span) =
            e.get("span").and_then(|s| s.as_str()).and_then(|s| u64::from_str_radix(s, 16).ok())
        else {
            continue;
        };
        let parent =
            e.get("parent").and_then(|p| p.as_str()).and_then(|p| u64::from_str_radix(p, 16).ok());
        let at_us =
            e.get("at_s").and_then(|v| v.as_f64()).map(|s| (s * 1e6).max(0.0) as u64).unwrap_or(0);
        let duration_us =
            e.get("duration_s").and_then(|v| v.as_f64()).map(|s| (s * 1e6).max(0.0) as u64);
        out.push(BackendTraceEvent {
            kind: e.get("kind").and_then(|k| k.as_str()).unwrap_or("event").to_string(),
            detail: e.get("detail").and_then(|d| d.as_str()).unwrap_or("").to_string(),
            at_us,
            duration_us,
            span,
            parent,
        });
    }
    Some(out)
}

/// Renders the merged Chrome-trace document: router spans on pid 0
/// (dispatch on tid 0, each attempt on its own lane — hedge races
/// overlap in time, so they must not share one), then each backend's
/// events on pid `i + 1`, grouped under the attempt span that caused
/// them. Backend timestamps are offsets from a different clock, so
/// each group is re-based into its attempt's `[start, start + dur)`
/// window and clamped to keep parent/child intervals strictly nested.
fn render_merged_trace(
    trace_id: u128,
    router_spans: &[RouterSpan],
    scraped: &[(usize, Vec<BackendTraceEvent>)],
    addrs: &[String],
) -> String {
    use cf_core::profile::{trace_complete_event, trace_process_name, trace_thread_name};
    use serde_json::{Map, Value};

    let mut evs: Vec<Value> = Vec::new();
    evs.push(trace_process_name(0, "cfrouter"));
    let mut router_end = 0u64;
    let mut attempt_windows: HashMap<u64, (u64, u64, &'static str)> = HashMap::new();
    let mut next_tid = 1u64;
    for s in router_spans {
        let tid = if s.name == "dispatch" {
            evs.push(trace_thread_name(0, 0, "dispatch"));
            0
        } else {
            let tid = next_tid;
            next_tid += 1;
            evs.push(trace_thread_name(0, tid, &format!("attempt {tid}")));
            attempt_windows.insert(s.span_id, (s.start_us, s.dur_us.max(2), s.cause));
            tid
        };
        let mut args = Map::new();
        args.insert("cause", s.cause);
        args.insert("outcome", s.outcome);
        args.insert("span", format!("{:016x}", s.span_id));
        if let Some(p) = s.parent {
            args.insert("parent", format!("{p:016x}"));
        }
        if let Some(b) = s.backend {
            args.insert("backend", b as u64);
        }
        let mut ev = trace_complete_event(
            &format!("{} ({})", s.name, s.cause),
            "router",
            0,
            tid,
            s.start_us as f64,
            s.dur_us.max(1) as f64,
        );
        if let Value::Object(m) = &mut ev {
            m.insert("args", Value::Object(args));
        }
        evs.push(ev);
        router_end = router_end.max(s.start_us + s.dur_us.max(1));
    }

    for &(i, ref events) in scraped {
        if events.is_empty() {
            continue;
        }
        let pid = i as u64 + 1;
        let addr = addrs.get(i).map(String::as_str).unwrap_or("?");
        evs.push(trace_process_name(pid, &format!("cfserve {addr}")));
        // Group this backend's events by the router attempt span they
        // parent to; events with no (known) parent merge into one
        // "unparented" group after the router's own timeline.
        let mut groups: HashMap<Option<u64>, Vec<&BackendTraceEvent>> = HashMap::new();
        for e in events {
            let key = e.parent.filter(|p| attempt_windows.contains_key(p));
            groups.entry(key).or_default().push(e);
        }
        let mut keys: Vec<Option<u64>> = groups.keys().copied().collect();
        keys.sort_unstable();
        let mut tid = 0u64;
        for key in keys {
            let Some(group) = groups.get(&key) else { continue };
            let min_at = group.iter().map(|e| e.at_us).min().unwrap_or(0);
            let (base, limit) = match key.and_then(|p| attempt_windows.get(&p)) {
                Some(&(wstart, wdur, cause)) => {
                    // The attempt box re-rendered on the backend's pid,
                    // so its children visually nest under it.
                    evs.push(trace_complete_event(
                        &format!("attempt ({cause})"),
                        "backend",
                        pid,
                        tid,
                        wstart as f64,
                        wdur as f64,
                    ));
                    (wstart + 1, wstart + wdur - 1)
                }
                None => (router_end + 10, u64::MAX),
            };
            for e in group {
                let ts = base.saturating_add(e.at_us - min_at).min(limit);
                let mut args = Map::new();
                args.insert("detail", e.detail.as_str());
                args.insert("span", format!("{:016x}", e.span));
                if let Some(p) = e.parent {
                    args.insert("parent", format!("{p:016x}"));
                }
                if let Some(d) = e.duration_us {
                    args.insert("duration_us", d);
                }
                let mut ev = trace_complete_event(&e.kind, "backend", pid, tid, ts as f64, 0.0);
                if let Value::Object(m) = &mut ev {
                    m.insert("args", Value::Object(args));
                }
                evs.push(ev);
            }
            tid += 1;
        }
    }

    format!("{{\"trace\":\"{trace_id:032x}\",\"traceEvents\":{}}}", Value::Array(evs))
}

/// Maps a relayed backend status code to a status line the router can
/// answer with (unknown codes degrade to 502).
fn status_line(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        202 => "202 Accepted",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        413 => "413 Payload Too Large",
        500 => "500 Internal Server Error",
        503 => "503 Service Unavailable",
        _ => "502 Bad Gateway",
    }
}

// ---------------------------------------------------------------------------
// Distributed-trace spans and SLO accounting
// ---------------------------------------------------------------------------

/// One router-side span: the dispatch of a submission, or a single
/// attempt against one backend (primary, hedge, failover, resubmit).
/// Retained in a bounded ring for `GET /trace/<trace-id>` assembly.
#[derive(Debug, Clone)]
struct RouterSpan {
    trace_id: u128,
    span_id: u64,
    parent: Option<u64>,
    /// `"dispatch"` (the whole routed submission) or `"attempt"` (one
    /// exchange against one backend).
    name: &'static str,
    /// Why the span exists: `"submit"` for dispatch; `"primary"`,
    /// `"hedge"`, `"eject-failover"`, `"corrupt-failover"` or
    /// `"resubmit"` for attempts.
    cause: &'static str,
    /// Target backend index (attempts only).
    backend: Option<usize>,
    /// Start offset, µs since the router started.
    start_us: u64,
    dur_us: u64,
    /// `"ok"`, `"failed"`, or `"cancelled"` (a hedged race's loser).
    outcome: &'static str,
}

/// One burn-rate window bucket (`slot` disambiguates ring reuse: a
/// bucket whose slot is stale belongs to a previous revolution and is
/// reset on the next write, ignored on reads outside the window).
#[derive(Debug, Clone, Copy, Default)]
struct SloBucket {
    slot: u64,
    good: u64,
    bad: u64,
}

/// SLO accounting over streamed records: lifetime good/bad counters
/// plus two bucket rings for the 5-minute (60 × 5 s) and 1-hour
/// (60 × 60 s) burn-rate windows. Burn rate is
/// `(bad_w / total_w) / (1 − objective)` over the window — the rate at
/// which the error budget is being spent, 1.0 meaning "on schedule to
/// exhaust it exactly".
#[derive(Debug)]
struct SloTracker {
    target: Duration,
    objective: f64,
    good: AtomicU64,
    bad: AtomicU64,
    w5m: Mutex<[SloBucket; SLO_SLOTS]>,
    w1h: Mutex<[SloBucket; SLO_SLOTS]>,
}

impl SloTracker {
    fn new(target: Duration, objective: f64) -> SloTracker {
        SloTracker {
            target,
            // An objective of 1.0 would make every burn rate infinite;
            // clamp just below so the math stays finite.
            objective: objective.clamp(0.0, 0.999_999),
            good: AtomicU64::new(0),
            bad: AtomicU64::new(0),
            w5m: Mutex::new([SloBucket::default(); SLO_SLOTS]),
            w1h: Mutex::new([SloBucket::default(); SLO_SLOTS]),
        }
    }

    /// Books one streamed record at router-uptime `uptime`.
    fn record(&self, latency: Duration, uptime: Duration) {
        let good = latency <= self.target;
        if good {
            self.good.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bad.fetch_add(1, Ordering::Relaxed);
        }
        Self::bump(&self.w5m, uptime.as_secs() / 5, good);
        Self::bump(&self.w1h, uptime.as_secs() / 60, good);
    }

    fn bump(ring: &Mutex<[SloBucket; SLO_SLOTS]>, slot: u64, good: bool) {
        let mut ring = sync::lock(ring);
        let b = &mut ring[(slot as usize) % SLO_SLOTS];
        if b.slot != slot {
            *b = SloBucket { slot, good: 0, bad: 0 };
        }
        if good {
            b.good += 1;
        } else {
            b.bad += 1;
        }
    }

    fn window(ring: &Mutex<[SloBucket; SLO_SLOTS]>, now_slot: u64) -> (u64, u64) {
        let ring = sync::lock(ring);
        let lo = now_slot.saturating_sub(SLO_SLOTS as u64 - 1);
        ring.iter()
            .filter(|b| b.slot >= lo && b.slot <= now_slot)
            .fold((0, 0), |(g, bd), b| (g + b.good, bd + b.bad))
    }

    fn burn_rate(&self, ring: &Mutex<[SloBucket; SLO_SLOTS]>, now_slot: u64) -> f64 {
        let (good, bad) = Self::window(ring, now_slot);
        let total = good + bad;
        let allowed = 1.0 - self.objective;
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / allowed
    }

    /// Lifetime error budget remaining, 1.0 (untouched) → 0.0 (spent).
    fn budget_remaining(&self) -> f64 {
        let good = self.good.load(Ordering::Relaxed);
        let bad = self.bad.load(Ordering::Relaxed);
        let total = good + bad;
        if total == 0 {
            return 1.0;
        }
        let allowed = (1.0 - self.objective) * total as f64;
        (1.0 - bad as f64 / allowed).clamp(0.0, 1.0)
    }
}

/// `Duration` → whole µs, saturating (the span/attribution unit).
fn dur_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// The router
// ---------------------------------------------------------------------------

/// Where an accepted job lives: enough to proxy polls and to resubmit
/// the job elsewhere if its backend dies.
#[derive(Debug, Clone)]
struct JobRoute {
    /// The single-job spec body, retained for failover resubmission.
    spec: String,
    /// The ring fingerprint the job was routed by.
    fingerprint: u64,
    /// Owning backend index.
    backend: usize,
    /// The job's id *on that backend* (backend-local ids are translated
    /// to fleet-wide router ids at the edge).
    backend_id: u64,
    /// The submission's root trace context — the router's dispatch
    /// span; every attempt (and the backend's per-job span) descends
    /// from it.
    trace: TraceContext,
    /// When the router accepted the submission (attribution clock).
    accepted_at: Instant,
    /// Submit-exchange time (dial + transfer + backend accept), µs.
    net_submit_us: u64,
    /// Failover/backoff sleeps attributed to this job so far, µs.
    backoff_us: u64,
}

/// One response from the router, ready to serialize.
struct RouterResponse {
    status: &'static str,
    content_type: &'static str,
    retry_after: Option<u64>,
    allow: Option<&'static str>,
    /// Extra response headers (`X-CF-Trace`, `X-CF-Attribution`) —
    /// trace identity and latency attribution ride as headers only, so
    /// relayed record bodies stay byte-identical to the backend's.
    extra: Vec<(&'static str, String)>,
    body: String,
}

impl RouterResponse {
    fn json(status: &'static str, body: String) -> RouterResponse {
        RouterResponse {
            status,
            content_type: "application/json",
            retry_after: None,
            allow: None,
            extra: Vec::new(),
            body,
        }
    }

    fn error(status: &'static str, message: &str) -> RouterResponse {
        RouterResponse::json(status, format!("{{\"error\":{}}}", json_str(message)))
    }
}

/// The shard router (see the module docs). Construct with
/// [`Router::new`], serve with [`RouterServer::bind`], and start the
/// health prober with [`Router::start_prober`].
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    ring: Ring,
    backends: Mutex<Vec<Backend>>,
    jobs: Mutex<HashMap<u64, JobRoute>>,
    next_id: AtomicU64,
    stats: RouterStats,
    submit_latency: LatencyHistogram,
    shutdown: Arc<AtomicBool>,
    prober: Mutex<Option<thread::JoinHandle<()>>>,
    connector: Arc<dyn Connector>,
    /// The router's span clock zero (span offsets are µs since this).
    started: Instant,
    /// Bounded ring of router-side spans for trace assembly.
    spans: Mutex<VecDeque<RouterSpan>>,
    /// SLO accounting, when a target is configured.
    slo: Option<SloTracker>,
}

impl Router {
    /// A router over `config.backends` (at least one required). A
    /// `config.netfault` plan decorates the dialer with seeded wire
    /// faults (chaos testing — see [`crate::netfault`]).
    pub fn new(config: RouterConfig) -> Arc<Router> {
        let ring = Ring::new(&config.backends, config.vnodes);
        let backends = config
            .backends
            .iter()
            .map(|a| Backend::new(a.clone(), config.breaker.clone()))
            .collect();
        let connector: Arc<dyn Connector> = match &config.netfault {
            Some(plan) => Arc::new(FaultConnector::new(Arc::new(TcpConnector), plan.clone())),
            None => Arc::new(TcpConnector),
        };
        let slo = config.slo_target.map(|t| SloTracker::new(t, config.slo_objective));
        Arc::new(Router {
            ring,
            backends: Mutex::new(backends),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stats: RouterStats::default(),
            submit_latency: LatencyHistogram::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            prober: Mutex::new(None),
            connector,
            started: Instant::now(),
            spans: Mutex::new(VecDeque::new()),
            slo,
            config,
        })
    }

    /// One HTTP exchange through the router's [`Connector`].
    fn exchange(
        &self,
        addr: &str,
        raw: &[u8],
        connect_timeout: Duration,
        read_timeout: Duration,
        cancel: Option<&CancelSlot>,
    ) -> std::io::Result<Reply> {
        let bytes = self.connector.exchange(addr, raw, connect_timeout, read_timeout, cancel)?;
        parse_reply(&bytes)
    }

    /// The router's counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Appends one span to the bounded store (oldest falls off).
    fn record_span(&self, span: RouterSpan) {
        let mut spans = sync::lock(&self.spans);
        if spans.len() >= ROUTER_SPAN_CAP {
            spans.pop_front();
        }
        spans.push_back(span);
    }

    /// Records one finished attempt span against `backend` (fired at
    /// `fired_at`, ending now).
    fn record_attempt(
        &self,
        ctx: TraceContext,
        cause: &'static str,
        backend: usize,
        fired_at: Instant,
        outcome: &'static str,
    ) {
        self.record_span(RouterSpan {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent: ctx.parent,
            name: "attempt",
            cause,
            backend: Some(backend),
            start_us: dur_us(fired_at.duration_since(self.started)),
            dur_us: dur_us(fired_at.elapsed()),
            outcome,
        });
    }

    /// Starts the background health prober (idempotent).
    pub fn start_prober(self: &Arc<Self>) {
        let mut slot = sync::lock(&self.prober);
        if slot.is_some() {
            return;
        }
        let router = Arc::clone(self);
        let shutdown = Arc::clone(&self.shutdown);
        let spawned =
            thread::Builder::new().name("cf-router-prober".to_string()).spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    router.probe_once();
                    let mut slept = Duration::ZERO;
                    while slept < router.config.probe_interval && !shutdown.load(Ordering::SeqCst) {
                        let step = POLL_INTERVAL.min(router.config.probe_interval - slept);
                        thread::sleep(step);
                        slept += step;
                    }
                }
            });
        if let Ok(handle) = spawned {
            *slot = Some(handle);
        }
    }

    /// Stops the prober thread (also done when a [`RouterServer`] shuts
    /// down).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = sync::lock(&self.prober).take() {
            let _ = handle.join();
        }
    }

    /// Runs one health-probe pass over every backend (the prober thread
    /// calls this on its cadence; tests call it directly).
    pub fn probe_once(&self) {
        let addrs: Vec<(usize, String)> = {
            let backends = sync::lock(&self.backends);
            backends.iter().enumerate().map(|(i, b)| (i, b.addr.clone())).collect()
        };
        for (idx, addr) in addrs {
            let raw = b"GET /healthz HTTP/1.1\r\nHost: cfrouter\r\nConnection: close\r\n\r\n";
            let reply = self.exchange(
                &addr,
                raw,
                self.config.probe_timeout,
                self.config.probe_timeout,
                None,
            );
            let probe = match reply {
                Ok(r) if r.status == 200 => Probe::Ok,
                Ok(r) if String::from_utf8_lossy(&r.body).contains("\"status\":\"draining\"") => {
                    Probe::Draining
                }
                Ok(r) => Probe::Failed(format!("healthz answered {}", r.status)),
                Err(e) => Probe::Failed(e.to_string()),
            };
            if matches!(probe, Probe::Failed(_)) {
                self.stats.probe_failures.fetch_add(1, Ordering::Relaxed);
            }
            let mut backends = sync::lock(&self.backends);
            if let Some(b) = backends.get_mut(idx) {
                let (ejected, readmitted) = b.note_probe(
                    probe,
                    self.config.eject_after,
                    self.config.readmit_after,
                    self.config.quarantine_for,
                );
                if ejected {
                    self.stats.ejections.fetch_add(1, Ordering::Relaxed);
                }
                if readmitted {
                    self.stats.readmissions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Whether new work may be routed to backend `idx` right now:
    /// healthy per the prober *and* admitted by its circuit breaker.
    fn routable(&self, idx: usize) -> bool {
        let backends = sync::lock(&self.backends);
        match backends.get(idx) {
            Some(b) => b.health == BackendHealth::Up && b.breaker.allow(),
            None => false,
        }
    }

    fn backend_addr(&self, idx: usize) -> String {
        let backends = sync::lock(&self.backends);
        backends.get(idx).map(|b| b.addr.clone()).unwrap_or_default()
    }

    fn note_request_outcome(&self, idx: usize, ok: bool) {
        let mut backends = sync::lock(&self.backends);
        if let Some(b) = backends.get_mut(idx) {
            if ok {
                b.breaker.record_success();
                // An intact, verified response clears the corruption
                // streak: quarantine needs *consecutive* evidence.
                b.consecutive_corruptions = 0;
            } else {
                b.breaker.record_failure();
            }
        }
    }

    /// Books one corrupt (digest-mismatch) response from backend `idx`:
    /// counts it, feeds the circuit breaker, and — past
    /// `quarantine_after` consecutive corruptions while `Up` — moves
    /// the backend to [`BackendHealth::Quarantined`].
    fn note_corruption(&self, idx: usize) {
        self.stats.corrupt_responses.fetch_add(1, Ordering::Relaxed);
        let mut backends = sync::lock(&self.backends);
        if let Some(b) = backends.get_mut(idx) {
            b.breaker.record_failure();
            b.consecutive_corruptions = b.consecutive_corruptions.saturating_add(1);
            if b.health == BackendHealth::Up
                && b.consecutive_corruptions >= self.config.quarantine_after
            {
                b.health = BackendHealth::Quarantined;
                b.quarantined_at = Some(Instant::now());
                self.stats.quarantines.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The candidate order for `fingerprint`: ring replicas with the
    /// routable ones first (relative ring order preserved in both
    /// halves), so failover prefers live backends but can still try a
    /// possibly-recovered one as a last resort.
    fn candidates(&self, fingerprint: u64) -> Vec<usize> {
        let order = self.ring.replicas(fingerprint);
        let (alive, dead): (Vec<usize>, Vec<usize>) =
            order.into_iter().partition(|&i| self.routable(i));
        let mut out = alive;
        out.extend(dead);
        out
    }

    /// The current hedge threshold: the p95 of observed submit latencies
    /// once enough samples exist, floored by `hedge_floor`.
    fn hedge_threshold(&self) -> Duration {
        let floor = self.config.hedge_floor;
        let count = self.submit_latency.count();
        if count < HEDGE_MIN_SAMPLES {
            return floor;
        }
        let counts = self.submit_latency.bucket_counts();
        let target = (count as f64 * HEDGE_QUANTILE).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let micros = 1u64 << (i + 1).min(63);
                return Duration::from_micros(micros).max(floor);
            }
        }
        floor
    }

    /// Fires one submit attempt at `primary` — with its own child trace
    /// context, so the backend's spans parent to this attempt — hedging
    /// one duplicate to `secondary` if no answer arrives within the
    /// hedge threshold. First answer wins; the loser's stream is shut
    /// down, its span recorded as `cancelled`, and the hedge outcome
    /// booked on both backends' counters.
    fn exchange_hedged(
        &self,
        root: TraceContext,
        cause: &'static str,
        primary: usize,
        secondary: Option<usize>,
        text: &str,
    ) -> AttemptReply {
        let threshold = self.hedge_threshold();
        let (tx, rx) = mpsc::channel::<(usize, std::io::Result<Reply>, Arc<CancelSlot>)>();
        let fire = |idx: usize, raw: Vec<u8>, tx: mpsc::Sender<_>| {
            let addr = self.backend_addr(idx);
            let connect = self.config.connect_timeout;
            let read = self.config.read_timeout;
            let connector = Arc::clone(&self.connector);
            let slot = Arc::new(CancelSlot::default());
            let thread_slot = Arc::clone(&slot);
            let thread_tx = tx.clone();
            let spawned =
                thread::Builder::new().name("cf-router-proxy".to_string()).spawn(move || {
                    let reply = connector
                        .exchange(&addr, &raw, connect, read, Some(&thread_slot))
                        .and_then(|bytes| parse_reply(&bytes));
                    let _ = thread_tx.send((idx, reply, thread_slot));
                });
            if spawned.is_err() {
                let refused = std::io::Error::other("proxy thread spawn failed");
                let _ = tx.send((idx, Err(refused), slot));
            }
        };

        let primary_ctx = root.child();
        let primary_fired = Instant::now();
        fire(primary, submit_raw(text, primary_ctx), tx.clone());
        let hedge_target = match secondary {
            Some(s) if !threshold.is_zero() && s != primary => Some(s),
            _ => None,
        };
        let mut hedge_fired: Option<(usize, TraceContext, Instant)> = None;
        let first = match hedge_target {
            Some(s) => match rx.recv_timeout(threshold) {
                Ok(first) => Ok(first),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.stats.hedges.fetch_add(1, Ordering::Relaxed);
                    let hedge_ctx = root.child();
                    hedge_fired = Some((s, hedge_ctx, Instant::now()));
                    fire(s, submit_raw(text, hedge_ctx), tx.clone());
                    rx.recv().map_err(|_| ())
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
            },
            None => rx.recv().map_err(|_| ()),
        };
        drop(tx);
        let Ok((idx, reply, _slot)) = first else {
            let lost = std::io::Error::other("proxy channel lost");
            return AttemptReply {
                backend: primary,
                ctx: primary_ctx,
                cause,
                fired_at: primary_fired,
                reply: Err(lost),
            };
        };
        // A hedged duplicate that loses gets cancelled so it does not
        // ride out its full read timeout against the slow backend.
        if let Ok((loser_idx, loser_reply, loser_slot)) = rx.try_recv() {
            drop((loser_idx, loser_reply));
            loser_slot.cancel();
        } else if hedge_fired.is_some() {
            // The loser is still in flight: shut its stream down. A
            // dedicated drainer reaps the channel so the send never
            // blocks (it is unbounded anyway — this is belt and braces).
            thread::spawn(move || while rx.recv().map(|(_, _, s)| s.cancel()).is_ok() {});
        }
        // Resolve the race: the loser's span closes as `cancelled`,
        // and the per-backend hedge outcome lands on both sides.
        let (ctx, win_cause, fired_at) = match hedge_fired {
            Some((hedge_idx, hedge_ctx, hedge_at)) => {
                let (loser_idx, loser_ctx, loser_cause, loser_at) = if idx == primary {
                    (hedge_idx, hedge_ctx, "hedge", hedge_at)
                } else {
                    (primary, primary_ctx, cause, primary_fired)
                };
                self.record_attempt(loser_ctx, loser_cause, loser_idx, loser_at, "cancelled");
                {
                    let mut backends = sync::lock(&self.backends);
                    if let Some(b) = backends.get_mut(idx) {
                        b.hedges_won += 1;
                    }
                    if let Some(b) = backends.get_mut(loser_idx) {
                        b.hedges_cancelled += 1;
                    }
                }
                if idx == primary {
                    (primary_ctx, cause, primary_fired)
                } else {
                    (hedge_ctx, "hedge", hedge_at)
                }
            }
            None => (primary_ctx, cause, primary_fired),
        };
        if idx != primary {
            self.stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
        }
        AttemptReply { backend: idx, ctx, cause: win_cause, fired_at, reply }
    }

    /// Deterministic backoff jitter for failover attempt `attempt` of
    /// `key` (no RNG dependency; reproduces under test).
    fn failover_jitter(key: u64, attempt: u32) -> f64 {
        let h = fnv1a(&(key ^ u64::from(attempt)).to_le_bytes());
        (h % 1024) as f64 / 1024.0
    }

    // -- POST /jobs ---------------------------------------------------------

    /// Routes a `POST /jobs` body: consistent-hash, forward with
    /// failover + hedging, translate backend ids to router ids. The
    /// whole dispatch becomes the trace's root router span — parented
    /// to the client's context when one was propagated in — and the
    /// response echoes the root on `X-CF-Trace`.
    fn submit(&self, body: &[u8], client: Option<TraceContext>) -> RouterResponse {
        let root = match client {
            Some(c) => c.child(),
            None => TraceContext::mint(),
        };
        let t0 = Instant::now();
        let mut response = self.submit_routed(body, root, t0);
        self.record_span(RouterSpan {
            trace_id: root.trace_id,
            span_id: root.span_id,
            parent: root.parent,
            name: "dispatch",
            cause: "submit",
            backend: None,
            start_us: dur_us(t0.duration_since(self.started)),
            dur_us: dur_us(t0.elapsed()),
            outcome: if response.status.starts_with("202") { "ok" } else { "failed" },
        });
        response.extra.push((TRACE_HEADER, root.encode()));
        response
    }

    /// The submit failover loop under the dispatch span `root`.
    fn submit_routed(&self, body: &[u8], root: TraceContext, t0: Instant) -> RouterResponse {
        let Ok(text) = std::str::from_utf8(body) else {
            return RouterResponse::error("400 Bad Request", "body is not UTF-8");
        };
        let fingerprint = api::routing_fingerprint(text);
        let started = Instant::now();
        let mut failures = 0u32;
        let mut cause: &'static str = "primary";
        let mut backoff_total = Duration::ZERO;
        loop {
            let candidates = self.candidates(fingerprint);
            let Some(&target) = candidates.get(failures as usize % candidates.len().max(1)) else {
                return RouterResponse::error("502 Bad Gateway", "no backends configured");
            };
            let hedge = hedge_pick(&candidates, target, |c| self.routable(c));
            let attempt = self.exchange_hedged(root, cause, target, hedge, text);
            let winner = attempt.backend;
            let (error, next_cause) = match attempt.reply {
                Ok(r) if r.status == 202 && digest_ok(&r) => {
                    let booked =
                        self.accept(text, fingerprint, winner, &r, root, t0, dur_us(backoff_total));
                    match booked {
                        Ok(response) => {
                            self.note_request_outcome(winner, true);
                            self.record_attempt(
                                attempt.ctx,
                                attempt.cause,
                                winner,
                                attempt.fired_at,
                                "ok",
                            );
                            self.submit_latency.observe(t0.elapsed());
                            return response;
                        }
                        // An accept body the router cannot book is as
                        // bad as a corrupt one: fail over.
                        Err(response) => {
                            self.note_request_outcome(winner, false);
                            (response, "eject-failover")
                        }
                    }
                }
                Ok(r) if (r.status == 400 || r.status == 413) && digest_ok(&r) => {
                    // The spec itself is bad: every backend would agree.
                    self.note_request_outcome(winner, true);
                    self.record_attempt(attempt.ctx, attempt.cause, winner, attempt.fired_at, "ok");
                    return relay(&r);
                }
                Ok(r) if !digest_ok(&r) => {
                    // The reply does not match its own digest: the wire
                    // (or the backend) is lying. Never trust it.
                    self.note_corruption(winner);
                    let error = RouterResponse::error(
                        "502 Bad Gateway",
                        &format!("backend {}: corrupt response", self.backend_addr(winner)),
                    );
                    (error, "corrupt-failover")
                }
                Ok(r) => {
                    // 503 (shed / draining) or 5xx: try the next replica.
                    self.note_request_outcome(winner, false);
                    (relay(&r), "eject-failover")
                }
                Err(e) => {
                    self.note_request_outcome(winner, false);
                    let error = RouterResponse::error(
                        "502 Bad Gateway",
                        &format!("backend {}: {e}", self.backend_addr(winner)),
                    );
                    (error, "eject-failover")
                }
            };
            self.record_attempt(attempt.ctx, attempt.cause, winner, attempt.fired_at, "failed");
            cause = next_cause;
            failures += 1;
            let jitter = Self::failover_jitter(fingerprint, failures);
            match next_retry(&self.config.retry, failures, started.elapsed(), jitter) {
                Some(backoff) => {
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(backoff);
                    backoff_total += backoff;
                }
                // Budget exhausted: the last error is the answer.
                None => return error,
            }
        }
    }

    /// Books an accepted submission: allocate fleet-wide ids, retain
    /// per-job specs for failover, answer with the translated ids.
    /// `Err` carries the response for an accept body the router cannot
    /// book — the caller treats it as a backend failure and fails over.
    #[allow(clippy::too_many_arguments)]
    fn accept(
        &self,
        body: &str,
        fingerprint: u64,
        backend: usize,
        reply: &Reply,
        root: TraceContext,
        accepted_at: Instant,
        backoff_us: u64,
    ) -> Result<RouterResponse, RouterResponse> {
        let text = String::from_utf8_lossy(&reply.body);
        let Ok(value) = serde_json::from_str(&text) else {
            return Err(RouterResponse::error("502 Bad Gateway", "unparseable backend accept"));
        };
        // Per-element specs: an array submission retains each element as
        // its own resubmittable body.
        let specs: Vec<String> = match serde_json::from_str(body) {
            Ok(parsed) => match parsed.as_array() {
                Some(items) => items.iter().map(|v| v.to_string()).collect(),
                None => vec![body.to_string()],
            },
            Err(_) => vec![body.to_string()],
        };
        let backend_ids: Vec<u64> = if let Some(id) = value.get("id").and_then(|v| v.as_u64()) {
            vec![id]
        } else if let Some(ids) = value.get("ids").and_then(|v| v.as_array()) {
            ids.iter().filter_map(|v| v.as_u64()).collect()
        } else {
            return Err(RouterResponse::error("502 Bad Gateway", "backend accept carries no id"));
        };
        let base = self.next_id.fetch_add(backend_ids.len() as u64, Ordering::Relaxed);
        {
            let mut jobs = sync::lock(&self.jobs);
            for (offset, &backend_id) in backend_ids.iter().enumerate() {
                let spec = specs.get(offset).cloned().unwrap_or_else(|| body.to_string());
                jobs.insert(
                    base + offset as u64,
                    JobRoute {
                        spec,
                        fingerprint,
                        backend,
                        backend_id,
                        trace: root,
                        accepted_at,
                        net_submit_us: dur_us(accepted_at.elapsed()),
                        backoff_us,
                    },
                );
            }
        }
        self.stats.routed.fetch_add(backend_ids.len() as u64, Ordering::Relaxed);
        let body = if backend_ids.len() == 1 && value.get("id").is_some() {
            format!("{{\"id\":{base}}}")
        } else {
            let ids: Vec<String> =
                (0..backend_ids.len() as u64).map(|o| (base + o).to_string()).collect();
            format!("{{\"ids\":[{}]}}", ids.join(","))
        };
        Ok(RouterResponse::json("202 Accepted", body))
    }

    // -- GET /jobs/<id>[/status] --------------------------------------------

    /// Proxies a job poll to the owning backend, translating ids both
    /// ways; a dead owner triggers resubmission to the next replica.
    fn poll(&self, rid: u64, status_only: bool, query: Option<&str>) -> RouterResponse {
        let started = Instant::now();
        let mut failures = 0u32;
        loop {
            let Some(route) = sync::lock(&self.jobs).get(&rid).cloned() else {
                return RouterResponse::error("404 Not Found", "no such job");
            };
            let suffix = if status_only { "/status" } else { "" };
            let q = query.map(|q| format!("?{q}")).unwrap_or_default();
            let raw = format!(
                "GET /jobs/{}{suffix}{q} HTTP/1.1\r\nHost: cfrouter\r\nConnection: close\r\n\r\n",
                route.backend_id
            )
            .into_bytes();
            let addr = self.backend_addr(route.backend);
            let reply = self.exchange(
                &addr,
                &raw,
                self.config.connect_timeout,
                self.config.read_timeout,
                None,
            );
            match reply {
                Ok(r)
                    if (r.status == 200 || r.status == 202)
                        && self.reply_intact(&r, &route, status_only) =>
                {
                    self.note_request_outcome(route.backend, true);
                    if r.status == 200 && !status_only {
                        self.stats.records_streamed.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut response = translate_ids(&r, route.backend_id, rid, status_only);
                    // Trace/attribution ride only as headers, never in
                    // the record body: byte-identity is preserved.
                    if let Some(trace) = r.header(TRACE_HEADER) {
                        response.extra.push((TRACE_HEADER, trace.to_string()));
                    }
                    if r.status == 200 {
                        if let Some(attr) =
                            r.header(ATTRIBUTION_HEADER).and_then(Attribution::parse)
                        {
                            response
                                .extra
                                .push((ATTRIBUTION_HEADER, self.finish_attribution(&route, attr)));
                        }
                    }
                    return response;
                }
                Ok(r) if r.status == 400 && digest_ok(&r) => {
                    self.note_request_outcome(route.backend, true);
                    return relay(&r);
                }
                // A digest mismatch (header or record field) means the
                // payload cannot be trusted: count it, feed the
                // quarantine state machine, and fail over — the corrupt
                // bytes never reach the client.
                Ok(r) if !self.reply_intact(&r, &route, status_only) => {
                    self.note_corruption(route.backend);
                }
                // 404 (restarted backend lost the job), 5xx, or a dead
                // connection: the owner cannot answer — fail over.
                Ok(_) | Err(_) => self.note_request_outcome(route.backend, false),
            }
            failures += 1;
            let jitter = Self::failover_jitter(route.fingerprint ^ rid, failures);
            let Some(backoff) = next_retry(&self.config.retry, failures, started.elapsed(), jitter)
            else {
                return RouterResponse::error(
                    "502 Bad Gateway",
                    &format!("job {rid}: backend {addr} unreachable and failover exhausted"),
                );
            };
            thread::sleep(backoff);
            {
                // Retry backoff is the client's time too: accrue it so
                // the final attribution can name it.
                let mut jobs = sync::lock(&self.jobs);
                if let Some(r) = jobs.get_mut(&rid) {
                    r.backoff_us = r.backoff_us.saturating_add(dur_us(backoff));
                }
            }
            if let Some((backend, backend_id)) = self.resubmit(&route) {
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                let mut jobs = sync::lock(&self.jobs);
                if let Some(r) = jobs.get_mut(&rid) {
                    r.backend = backend;
                    r.backend_id = backend_id;
                }
            }
        }
    }

    /// Whether a poll reply survives both integrity checks: the
    /// `X-CF-Digest` response header over the whole body, and — for a
    /// streamed record — the per-record digest field, bound to the
    /// backend-local id the router expects.
    fn reply_intact(&self, reply: &Reply, route: &JobRoute, status_only: bool) -> bool {
        if !digest_ok(reply) {
            return false;
        }
        if reply.status == 200 && !status_only {
            let body = String::from_utf8_lossy(&reply.body);
            return verify_record_json(body.trim_end_matches('\n'), Some(route.backend_id));
        }
        true
    }

    /// Extends a backend's attribution with the router-side components
    /// (submit network time, poll-side residue, retry backoff), folds
    /// the result into the `/stats` aggregates, and classifies the job
    /// against the SLO. Returns the encoded header value.
    ///
    /// `net_poll_us` is the residue of the router-observed wall clock
    /// (accept → record streamed) not covered by the backend's own
    /// `total_us`, the submit dial, or backoff sleeps — so the full
    /// component sum equals the router's end-to-end measurement.
    fn finish_attribution(&self, route: &JobRoute, mut attr: Attribution) -> String {
        let total = attr.total_us();
        let router_total = dur_us(route.accepted_at.elapsed());
        let net_poll = router_total
            .saturating_sub(total)
            .saturating_sub(route.net_submit_us)
            .saturating_sub(route.backoff_us);
        attr.push("net_submit_us", route.net_submit_us);
        attr.push("net_poll_us", net_poll);
        attr.push("backoff_us", route.backoff_us);
        self.stats.attr_records.fetch_add(1, Ordering::Relaxed);
        self.stats.attr_total_us.fetch_add(total, Ordering::Relaxed);
        self.stats
            .attr_admission_us
            .fetch_add(attr.get("admission_us").unwrap_or(0), Ordering::Relaxed);
        self.stats.attr_queue_us.fetch_add(attr.get("queue_us").unwrap_or(0), Ordering::Relaxed);
        self.stats.attr_run_us.fetch_add(attr.get("run_us").unwrap_or(0), Ordering::Relaxed);
        self.stats
            .attr_net_us
            .fetch_add(route.net_submit_us.saturating_add(net_poll), Ordering::Relaxed);
        self.stats.attr_backoff_us.fetch_add(route.backoff_us, Ordering::Relaxed);
        if let Some(slo) = &self.slo {
            // SLO latency: backend execution + submit dial + backoff.
            // Poll wait is excluded — it measures the client's polling
            // cadence, not the fleet's service quality.
            let latency =
                total.saturating_add(route.net_submit_us).saturating_add(route.backoff_us);
            slo.record(Duration::from_micros(latency), self.started.elapsed());
        }
        attr.encode()
    }

    /// Resubmits a lost job's retained spec to the next live replica
    /// (skipping the dead owner); simulation is deterministic, so the
    /// re-run's record is byte-identical to the one the dead backend
    /// would have produced.
    fn resubmit(&self, route: &JobRoute) -> Option<(usize, u64)> {
        let candidates: Vec<usize> = self
            .candidates(route.fingerprint)
            .into_iter()
            .filter(|&c| c != route.backend && self.routable(c))
            .collect();
        for target in candidates {
            // Each resubmission attempt is its own child span under
            // the job's dispatch span, cause "resubmit".
            let ctx = route.trace.child();
            let fired_at = Instant::now();
            let raw = submit_raw(&route.spec, ctx);
            let addr = self.backend_addr(target);
            let reply = self.exchange(
                &addr,
                &raw,
                self.config.connect_timeout,
                self.config.read_timeout,
                None,
            );
            match reply {
                Ok(r) if r.status == 202 && !digest_ok(&r) => {
                    self.note_corruption(target);
                    self.record_attempt(ctx, "resubmit", target, fired_at, "failed");
                }
                Ok(r) if r.status == 202 => {
                    self.note_request_outcome(target, true);
                    let text = String::from_utf8_lossy(&r.body);
                    let id = serde_json::from_str(&text)
                        .ok()
                        .and_then(|v: serde_json::Value| v.get("id").and_then(|i| i.as_u64()));
                    if let Some(id) = id {
                        self.record_attempt(ctx, "resubmit", target, fired_at, "ok");
                        return Some((target, id));
                    }
                    self.record_attempt(ctx, "resubmit", target, fired_at, "failed");
                }
                Ok(_) | Err(_) => {
                    self.note_request_outcome(target, false);
                    self.record_attempt(ctx, "resubmit", target, fired_at, "failed");
                }
            }
        }
        None
    }

    // -- Router-local endpoints ---------------------------------------------

    /// The router's `/healthz`: healthy while at least one backend is
    /// routable.
    fn healthz(&self) -> RouterResponse {
        let backends = sync::lock(&self.backends);
        let mut up = 0usize;
        let mut draining = 0usize;
        let mut ejected = 0usize;
        let mut quarantined = 0usize;
        for b in backends.iter() {
            match b.health {
                BackendHealth::Up => up += 1,
                BackendHealth::Draining => draining += 1,
                BackendHealth::Ejected => ejected += 1,
                BackendHealth::Quarantined => quarantined += 1,
            }
        }
        let healthy = up > 0;
        let body = format!(
            "{{\"status\":{},\"backends\":{},\"up\":{up},\"draining\":{draining},\"ejected\":{ejected},\"quarantined\":{quarantined}}}",
            if healthy { "\"ok\"" } else { "\"no-backends\"" },
            backends.len(),
        );
        RouterResponse::json(if healthy { "200 OK" } else { "503 Service Unavailable" }, body)
    }

    /// The router's `/stats`: counters plus the live backend table.
    pub fn stats_json(&self) -> String {
        let backends = sync::lock(&self.backends);
        let jobs = sync::lock(&self.jobs);
        let mut per_backend = vec![0u64; backends.len()];
        for route in jobs.values() {
            if let Some(n) = per_backend.get_mut(route.backend) {
                *n += 1;
            }
        }
        let rows: Vec<String> = backends
            .iter()
            .zip(&per_backend)
            .map(|(b, &n)| {
                let breaker = match b.breaker.state() {
                    BreakerState::Closed => "closed",
                    BreakerState::Open => "open",
                    BreakerState::HalfOpen => "half-open",
                };
                let (probe_error, probe_error_age) = match (&b.last_probe_error, b.last_probe_error_at)
                {
                    (Some(e), Some(at)) => (json_str(e), at.elapsed().as_secs().to_string()),
                    _ => ("null".to_string(), "null".to_string()),
                };
                format!(
                    "{{\"addr\":{},\"health\":{},\"breaker\":{},\"jobs\":{n},\"consecutive_failures\":{},\"consecutive_successes\":{},\"consecutive_corruptions\":{},\"hedges_won\":{},\"hedges_cancelled\":{},\"last_probe_error\":{probe_error},\"last_probe_error_age_s\":{probe_error_age}}}",
                    json_str(&b.addr),
                    json_str(b.health.name()),
                    json_str(breaker),
                    b.consecutive_failures,
                    b.consecutive_successes,
                    b.consecutive_corruptions,
                    b.hedges_won,
                    b.hedges_cancelled,
                )
            })
            .collect();
        let s = &self.stats;
        let attribution = format!(
            "{{\"records\":{},\"total_us\":{},\"admission_us\":{},\"queue_us\":{},\"run_us\":{},\"net_us\":{},\"backoff_us\":{}}}",
            s.attr_records.load(Ordering::Relaxed),
            s.attr_total_us.load(Ordering::Relaxed),
            s.attr_admission_us.load(Ordering::Relaxed),
            s.attr_queue_us.load(Ordering::Relaxed),
            s.attr_run_us.load(Ordering::Relaxed),
            s.attr_net_us.load(Ordering::Relaxed),
            s.attr_backoff_us.load(Ordering::Relaxed),
        );
        format!(
            "{{\"routed\":{},\"records_streamed\":{},\"failovers\":{},\"hedges\":{},\"hedge_wins\":{},\"ejections\":{},\"readmissions\":{},\"probe_failures\":{},\"corrupt_responses\":{},\"quarantines\":{},\"jobs\":{},\"spans\":{},\"attribution\":{attribution},\"backends\":[{}]}}",
            s.routed.load(Ordering::Relaxed),
            s.records_streamed.load(Ordering::Relaxed),
            s.failovers.load(Ordering::Relaxed),
            s.hedges.load(Ordering::Relaxed),
            s.hedge_wins.load(Ordering::Relaxed),
            s.ejections.load(Ordering::Relaxed),
            s.readmissions.load(Ordering::Relaxed),
            s.probe_failures.load(Ordering::Relaxed),
            s.corrupt_responses.load(Ordering::Relaxed),
            s.quarantines.load(Ordering::Relaxed),
            jobs.len(),
            sync::lock(&self.spans).len(),
            rows.join(","),
        )
    }

    /// The `/ring` routing table: vnode count, the backend list with
    /// each instance's live health state, and every `(point, backend)`
    /// pair in ring order.
    pub fn ring_json(&self) -> String {
        let backends = sync::lock(&self.backends);
        let names: Vec<String> = backends
            .iter()
            .map(|b| {
                format!(
                    "{{\"addr\":{},\"health\":{}}}",
                    json_str(&b.addr),
                    json_str(b.health.name())
                )
            })
            .collect();
        let points: Vec<String> = self
            .ring
            .points()
            .iter()
            .map(|&(p, b)| format!("{{\"point\":{p},\"backend\":{b}}}"))
            .collect();
        format!(
            "{{\"vnodes\":{},\"backends\":[{}],\"points\":[{}]}}",
            self.ring.vnodes(),
            names.join(","),
            points.join(","),
        )
    }

    /// Assembles the fleet-wide trace for `trace_id`: the router's own
    /// spans plus matching spans scraped from every backend's `/trace`,
    /// merged into one Chrome-trace (`traceEvents`) document. The
    /// router is pid 0; each backend is pid `i + 1`. Backend events are
    /// re-based into their parent attempt's router-clock window (their
    /// `at_s` stamps are relative to the *backend's* tracer birth, a
    /// different clock), preserving order and strict nesting.
    pub fn trace_json(&self, trace_id: u128) -> String {
        let router_spans: Vec<RouterSpan> =
            sync::lock(&self.spans).iter().filter(|s| s.trace_id == trace_id).cloned().collect();
        let addrs: Vec<String> = {
            let backends = sync::lock(&self.backends);
            backends.iter().map(|b| b.addr.clone()).collect()
        };
        // Scrape every backend in parallel, mirroring `metrics()`: a
        // corrupt or unreachable instance is simply absent from the
        // merge.
        let (tx, rx) = mpsc::channel::<(usize, Option<String>, bool)>();
        let mut expected = 0usize;
        for (i, addr) in addrs.iter().enumerate() {
            let tx = tx.clone();
            let addr = addr.clone();
            let connector = Arc::clone(&self.connector);
            let connect = self.config.connect_timeout;
            let read = self.config.probe_timeout.max(Duration::from_secs(2));
            let spawned =
                thread::Builder::new().name("cf-router-scrape".to_string()).spawn(move || {
                    let raw = format!(
                        "GET /trace?trace={trace_id:032x}&limit=4096 HTTP/1.1\r\nHost: cfrouter\r\nConnection: close\r\n\r\n"
                    );
                    let reply = connector
                        .exchange(&addr, raw.as_bytes(), connect, read, None)
                        .and_then(|bytes| parse_reply(&bytes))
                        .ok()
                        .filter(|r| r.status == 200);
                    let corrupt = reply.as_ref().is_some_and(|r| !digest_ok(r));
                    let body = reply
                        .filter(digest_ok)
                        .map(|r| String::from_utf8_lossy(&r.body).to_string());
                    let _ = tx.send((i, body, corrupt));
                });
            if spawned.is_ok() {
                expected += 1;
            }
        }
        drop(tx);
        let mut scraped: Vec<(usize, Vec<BackendTraceEvent>)> = Vec::new();
        for _ in 0..expected {
            match rx.recv() {
                Ok((i, Some(body), _)) => {
                    if let Some(events) = parse_backend_trace(&body, trace_id) {
                        scraped.push((i, events));
                    }
                }
                Ok((i, None, true)) => self.note_corruption(i),
                Ok((_, None, false)) => {}
                Err(_) => break,
            }
        }
        scraped.sort_by_key(|&(i, _)| i);
        render_merged_trace(trace_id, &router_spans, &scraped, &addrs)
    }

    /// The aggregated `/metrics` body: every live backend's exposition
    /// merged (comment headers kept once — the renderer is
    /// schema-stable, so families align), plus the router's own
    /// `cf_router_*` series.
    pub fn metrics(&self) -> String {
        let addrs: Vec<String> = {
            let backends = sync::lock(&self.backends);
            backends.iter().map(|b| b.addr.clone()).collect()
        };
        let (tx, rx) = mpsc::channel::<(usize, Option<String>, bool)>();
        let mut expected = 0usize;
        for (i, addr) in addrs.iter().enumerate() {
            let tx = tx.clone();
            let addr = addr.clone();
            let connector = Arc::clone(&self.connector);
            let connect = self.config.connect_timeout;
            let read = self.config.probe_timeout.max(Duration::from_secs(2));
            let spawned =
                thread::Builder::new().name("cf-router-scrape".to_string()).spawn(move || {
                    let raw =
                        b"GET /metrics HTTP/1.1\r\nHost: cfrouter\r\nConnection: close\r\n\r\n";
                    let reply = connector
                        .exchange(&addr, raw, connect, read, None)
                        .and_then(|bytes| parse_reply(&bytes))
                        .ok()
                        .filter(|r| r.status == 200);
                    // A scraped exposition failing its digest is dropped
                    // from the merge, exactly like an unreachable one.
                    let corrupt = reply.as_ref().is_some_and(|r| !digest_ok(r));
                    let body = reply
                        .filter(digest_ok)
                        .map(|r| String::from_utf8_lossy(&r.body).to_string());
                    let _ = tx.send((i, body, corrupt));
                });
            if spawned.is_ok() {
                expected += 1;
            }
        }
        drop(tx);
        let mut bodies: Vec<(usize, String)> = Vec::new();
        for _ in 0..expected {
            match rx.recv() {
                Ok((i, Some(body), _)) => bodies.push((i, body)),
                Ok((i, None, true)) => self.note_corruption(i),
                Ok((_, None, false)) => {}
                Err(_) => break,
            }
        }
        bodies.sort_by_key(|&(i, _)| i);
        let mut out = String::with_capacity(32 * 1024);
        for (n, (_, body)) in bodies.iter().enumerate() {
            if n == 0 {
                out.push_str(body);
            } else {
                for line in body.lines().filter(|l| !l.starts_with('#')) {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out.push_str(&self.own_metrics());
        out
    }

    /// The router's own `cf_router_*` series.
    fn own_metrics(&self) -> String {
        let s = &self.stats;
        let counters: [(&str, &str, u64); 10] = [
            (
                "cf_router_routed_total",
                "Jobs accepted and routed to a backend.",
                s.routed.load(Ordering::Relaxed),
            ),
            (
                "cf_router_records_streamed_total",
                "Finished records streamed through the router.",
                s.records_streamed.load(Ordering::Relaxed),
            ),
            (
                "cf_router_failovers_total",
                "Requests failed over to another ring replica.",
                s.failovers.load(Ordering::Relaxed),
            ),
            (
                "cf_router_hedges_total",
                "Hedged duplicate requests fired past the latency quantile.",
                s.hedges.load(Ordering::Relaxed),
            ),
            (
                "cf_router_hedge_wins_total",
                "Hedged duplicates that answered first.",
                s.hedge_wins.load(Ordering::Relaxed),
            ),
            (
                "cf_router_ejections_total",
                "Backends ejected by the health prober.",
                s.ejections.load(Ordering::Relaxed),
            ),
            (
                "cf_router_readmissions_total",
                "Ejected backends re-admitted after consecutive healthy probes.",
                s.readmissions.load(Ordering::Relaxed),
            ),
            (
                "cf_router_probe_failures_total",
                "Health probes that failed (503 / timeout / connect error).",
                s.probe_failures.load(Ordering::Relaxed),
            ),
            (
                "cf_router_corrupt_responses",
                "Backend responses rejected for a digest mismatch (header or record field).",
                s.corrupt_responses.load(Ordering::Relaxed),
            ),
            (
                "cf_router_quarantines_total",
                "Backends quarantined after repeated corrupt responses.",
                s.quarantines.load(Ordering::Relaxed),
            ),
        ];
        let mut out = String::with_capacity(2048);
        for (name, help, value) in counters {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        }
        out.push_str(concat!(
            "# HELP cf_router_backend_up Backend routability as seen by the prober ",
            "(1 = up, 0 = ejected, draining or quarantined).\n",
            "# TYPE cf_router_backend_up gauge\n",
        ));
        let backends = sync::lock(&self.backends);
        for b in backends.iter() {
            out.push_str(&format!(
                "cf_router_backend_up{{backend=\"{}\",state=\"{}\"}} {}\n",
                b.addr.replace('"', ""),
                b.health.name(),
                u8::from(b.health == BackendHealth::Up),
            ));
        }
        drop(backends);
        self.slo_metrics(&mut out);
        out
    }

    /// Appends the `cf_slo_*` families. HELP/TYPE lines are always
    /// emitted so dashboards can discover the series; samples appear
    /// only when an SLO target is configured (`--slo-ms`).
    fn slo_metrics(&self, out: &mut String) {
        let slo = self.slo.as_ref();
        let uptime = self.started.elapsed();
        let series: [(&str, &str, &str, Option<String>); 7] = [
            (
                "cf_slo_good_total",
                "counter",
                "Finished jobs whose SLO latency met the target.",
                slo.map(|s| s.good.load(Ordering::Relaxed).to_string()),
            ),
            (
                "cf_slo_bad_total",
                "counter",
                "Finished jobs whose SLO latency missed the target.",
                slo.map(|s| s.bad.load(Ordering::Relaxed).to_string()),
            ),
            (
                "cf_slo_error_budget_remaining",
                "gauge",
                "Fraction of the error budget still unspent (1 = untouched, 0 = exhausted).",
                slo.map(|s| format!("{:?}", s.budget_remaining())),
            ),
            (
                "cf_slo_burn_rate_5m",
                "gauge",
                "Error-budget burn rate over the trailing 5 minutes (1 = burning exactly at budget).",
                slo.map(|s| format!("{:?}", s.burn_rate(&s.w5m, uptime.as_secs() / 5))),
            ),
            (
                "cf_slo_burn_rate_1h",
                "gauge",
                "Error-budget burn rate over the trailing hour (1 = burning exactly at budget).",
                slo.map(|s| format!("{:?}", s.burn_rate(&s.w1h, uptime.as_secs() / 60))),
            ),
            (
                "cf_slo_target_seconds",
                "gauge",
                "Configured SLO latency target.",
                slo.map(|s| format!("{:?}", s.target.as_secs_f64())),
            ),
            (
                "cf_slo_objective",
                "gauge",
                "Configured SLO availability objective (e.g. 0.99).",
                slo.map(|s| format!("{:?}", s.objective)),
            ),
        ];
        for (name, kind, help, sample) in series {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            if let Some(value) = sample {
                out.push_str(&format!("{name} {value}\n"));
            }
        }
    }

    // -- Request dispatch ---------------------------------------------------

    /// Routes one parsed client request (the [`RouterServer`] accept
    /// loop calls this per connection).
    pub fn handle(&self, request: &HttpRequest) -> (String, String) {
        let response = self.dispatch(request);
        // The router stamps its own responses too, so a client can hold
        // the whole chain (backend → router → client) to one check.
        let mut head = format!(
            "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\nX-CF-Digest: {:016x}\r\n",
            response.status,
            response.content_type,
            response.body.len(),
            fnv1a(response.body.as_bytes()),
        );
        if let Some(allow) = response.allow {
            head.push_str(&format!("Allow: {allow}\r\n"));
        }
        if let Some(secs) = response.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        for (name, value) in &response.extra {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        (head, response.body)
    }

    fn dispatch(&self, request: &HttpRequest) -> RouterResponse {
        let path = request.path();
        match path {
            "/healthz" | "/stats" | "/ring" | "/metrics" => {
                if request.method != "GET" {
                    let mut r =
                        RouterResponse::error("405 Method Not Allowed", "only GET is supported");
                    r.allow = Some("GET");
                    return r;
                }
                match path {
                    "/healthz" => self.healthz(),
                    "/stats" => RouterResponse::json("200 OK", self.stats_json()),
                    "/ring" => RouterResponse::json("200 OK", self.ring_json()),
                    _ => RouterResponse {
                        status: "200 OK",
                        content_type: "text/plain; version=0.0.4; charset=utf-8",
                        retry_after: None,
                        allow: None,
                        extra: Vec::new(),
                        body: self.metrics(),
                    },
                }
            }
            "/jobs" => {
                if request.method != "POST" {
                    let mut r =
                        RouterResponse::error("405 Method Not Allowed", "submit jobs with POST");
                    r.allow = Some("POST");
                    return r;
                }
                // A client-supplied trace context parents the router's
                // dispatch span; a malformed one is the client's bug
                // and gets a 400, not a silent re-mint.
                let client = match request.header(TRACE_HEADER) {
                    Some(h) => match TraceContext::parse(h) {
                        Ok(c) => Some(c),
                        Err(e) => {
                            return RouterResponse::error(
                                "400 Bad Request",
                                &format!("malformed {TRACE_HEADER} header: {e}"),
                            );
                        }
                    },
                    None => None,
                };
                self.submit(&request.body, client)
            }
            _ => match path.strip_prefix("/trace/") {
                Some(rest) => {
                    if request.method != "GET" {
                        let mut r = RouterResponse::error(
                            "405 Method Not Allowed",
                            "fetch traces with GET",
                        );
                        r.allow = Some("GET");
                        return r;
                    }
                    match u128::from_str_radix(rest, 16) {
                        Ok(id) if rest.len() <= 32 && id != 0 => {
                            RouterResponse::json("200 OK", self.trace_json(id))
                        }
                        _ => RouterResponse::error(
                            "400 Bad Request",
                            "trace id must be 1-32 hex digits, nonzero",
                        ),
                    }
                }
                None => self.dispatch_jobs(request, path),
            },
        }
    }

    /// The `/jobs/<id>` poll routes plus the 404 fallthrough.
    fn dispatch_jobs(&self, request: &HttpRequest, path: &str) -> RouterResponse {
        match path.strip_prefix("/jobs/") {
            Some(rest) => {
                if request.method != "GET" {
                    let mut r =
                        RouterResponse::error("405 Method Not Allowed", "poll jobs with GET");
                    r.allow = Some("GET");
                    return r;
                }
                let (id_part, status_only) = match rest.strip_suffix("/status") {
                    Some(id_part) => (id_part, true),
                    None => (rest, false),
                };
                match id_part.parse::<u64>() {
                    Ok(id) => self.poll(id, status_only, request.query()),
                    Err(_) => RouterResponse::error(
                        "400 Bad Request",
                        "job id must be an unsigned integer",
                    ),
                }
            }
            None => RouterResponse::json(
                "404 Not Found",
                "{\"error\":\"not found\",\"routes\":[\"/healthz\",\"/stats\",\"/ring\",\
                 \"/metrics\",\"/jobs\",\"/jobs/<id>\",\"/jobs/<id>/status\",\
                 \"/trace/<trace-id>\"]}"
                    .to_string(),
            ),
        }
    }
}

/// Picks the hedge target for `target` from the ring candidates: `None`
/// unless at least two **live** (routable) backends exist — with a lone
/// live backend the duplicate would land on the very instance already
/// serving the primary, a pure waste.
fn hedge_pick(
    candidates: &[usize],
    target: usize,
    routable: impl Fn(usize) -> bool,
) -> Option<usize> {
    let live: Vec<usize> = candidates.iter().copied().filter(|&c| routable(c)).collect();
    if live.len() > 1 {
        live.into_iter().find(|&c| c != target)
    } else {
        None
    }
}

/// Relays a backend response verbatim (status, body, `Retry-After`).
fn relay(reply: &Reply) -> RouterResponse {
    let mut r = RouterResponse::json(
        status_line(reply.status),
        String::from_utf8_lossy(&reply.body).to_string(),
    );
    if let Some(after) = reply.header("retry-after").and_then(|v| v.parse().ok()) {
        r.retry_after = Some(after);
    }
    r
}

/// Rewrites the backend-local id in a poll response to the router's
/// fleet-wide id: records lead with `{"job":N,`, status JSON with
/// `{"id":N,` — both exact prefixes of the deterministic renderers.
fn translate_ids(reply: &Reply, backend_id: u64, rid: u64, status_only: bool) -> RouterResponse {
    let body = String::from_utf8_lossy(&reply.body).to_string();
    let rewritten = if reply.status == 200 && !status_only {
        let from = format!("{{\"job\":{backend_id},");
        let to = format!("{{\"job\":{rid},");
        if body.starts_with(&from) {
            body.replacen(&from, &to, 1)
        } else {
            body
        }
    } else {
        let from = format!("{{\"id\":{backend_id},");
        let to = format!("{{\"id\":{rid},");
        if body.starts_with(&from) {
            body.replacen(&from, &to, 1)
        } else {
            body
        }
    };
    RouterResponse::json(status_line(reply.status), rewritten)
}

// ---------------------------------------------------------------------------
// The router's HTTP server
// ---------------------------------------------------------------------------

/// The router's HTTP/1.1 listener: the same dependency-free
/// thread-per-connection loop as [`crate::StatusServer`], dispatching
/// into [`Router::handle`]. Binds 127.0.0.1 only.
#[derive(Debug)]
pub struct RouterServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
    router: Arc<Router>,
}

impl RouterServer {
    /// Binds `127.0.0.1:port` (0 picks a free port), starts the accept
    /// loop and the router's health prober.
    ///
    /// # Errors
    ///
    /// Any socket bind/configure failure, unchanged.
    pub fn bind(port: u16, router: Arc<Router>) -> std::io::Result<RouterServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        router.start_prober();
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let router = Arc::clone(&router);
            thread::Builder::new()
                .name("cf-router-server".to_string())
                .spawn(move || accept_loop(&listener, &router, &shutdown))?
        };
        Ok(RouterServer { addr, shutdown, thread: Some(thread), router })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and the prober, joining both threads (also
    /// done on drop).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
        self.router.stop();
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, router: &Arc<Router>, shutdown: &AtomicBool) {
    let seq = AtomicU64::new(0);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let router = Arc::clone(router);
                let token = seq.fetch_add(1, Ordering::Relaxed);
                let spawned = thread::Builder::new().name(format!("cf-router-conn-{token}")).spawn(
                    move || {
                        let _ = serve_connection(stream, &router);
                    },
                );
                drop(spawned);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_connection(mut stream: TcpStream, router: &Arc<Router>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + READ_DEADLINE;
    let request = loop {
        match api::parse_request(&buf, router.config.max_body) {
            Ok(Some(request)) => break Ok(request),
            Ok(None) => {}
            Err(e) => break Err(e),
        }
        if Instant::now() > deadline {
            break Err(api::HttpParseError::BadRequestLine);
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) if buf.is_empty() => return Ok(()),
            Ok(0) | Err(_) => break Err(api::HttpParseError::BadRequestLine),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let (head, body) = match request {
        Ok(request) => router.handle(&request),
        Err(e) => {
            let body = format!("{{\"error\":{}}}", json_str(&e.to_string()));
            let head = format!(
                "HTTP/1.1 {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                e.status(),
                body.len(),
            );
            (head, body)
        }
    };
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9100 + i)).collect()
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_backends() {
        let ring = Ring::new(&names(3), 64);
        assert_eq!(ring.points().len(), 3 * 64);
        for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let a = ring.replicas(key);
            let b = ring.replicas(key);
            assert_eq!(a, b);
            assert_eq!(a.len(), 3, "{a:?}");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "replicas must be distinct: {a:?}");
        }
    }

    #[test]
    fn removing_a_backend_keeps_surviving_assignments() {
        let all = names(4);
        let ring = Ring::new(&all, 64);
        let survivors: Vec<String> = all.iter().filter(|n| *n != &all[2]).cloned().collect();
        let smaller = Ring::new(&survivors, 64);
        for key in 0..500u64 {
            let before = match ring.primary(key) {
                Some(b) => b,
                None => panic!("empty ring"),
            };
            let after = match smaller.primary(key) {
                Some(b) => b,
                None => panic!("empty ring"),
            };
            if before != 2 {
                assert_eq!(&all[before], &survivors[after], "key {key} moved needlessly");
            }
        }
    }

    fn failed() -> Probe {
        Probe::Failed("connection refused".to_string())
    }

    #[test]
    fn probe_transitions_eject_and_readmit() {
        let q = Duration::ZERO;
        let mut b = Backend::new(
            "127.0.0.1:1".to_string(),
            BreakerConfig { failure_threshold: 2, open_for: Duration::from_millis(10) },
        );
        assert_eq!(b.health, BackendHealth::Up);
        assert_eq!(b.note_probe(failed(), 2, 3, q), (false, false));
        assert_eq!(b.health, BackendHealth::Up);
        assert_eq!(b.note_probe(failed(), 2, 3, q), (true, false));
        assert_eq!(b.health, BackendHealth::Ejected);
        // The failure that ejected the backend stays visible afterwards.
        assert_eq!(b.last_probe_error.as_deref(), Some("connection refused"));
        // Two successes are not enough at readmit_after = 3.
        assert_eq!(b.note_probe(Probe::Ok, 2, 3, q), (false, false));
        assert_eq!(b.note_probe(Probe::Ok, 2, 3, q), (false, false));
        assert_eq!(b.health, BackendHealth::Ejected);
        assert_eq!(b.note_probe(Probe::Ok, 2, 3, q), (false, true));
        assert_eq!(b.health, BackendHealth::Up);
        assert_eq!(b.last_probe_error.as_deref(), Some("connection refused"));
        // Draining is planned removal: no ejection counted.
        assert_eq!(b.note_probe(Probe::Draining, 2, 3, q), (false, false));
        assert_eq!(b.health, BackendHealth::Draining);
        // A draining backend that stops answering ends up ejected.
        assert_eq!(b.note_probe(failed(), 2, 3, q), (false, false));
        assert_eq!(b.note_probe(failed(), 2, 3, q), (true, false));
        assert_eq!(b.health, BackendHealth::Ejected);
    }

    #[test]
    fn quarantine_requires_consecutive_corruptions_and_sits_out_its_window() {
        let router = Router::new(RouterConfig {
            backends: names(2),
            quarantine_after: 3,
            quarantine_for: Duration::from_millis(40),
            ..RouterConfig::default()
        });
        // Two corruptions, then a good response: streak resets.
        router.note_corruption(0);
        router.note_corruption(0);
        router.note_request_outcome(0, true);
        router.note_corruption(0);
        router.note_corruption(0);
        assert!(router.routable(0), "streak of 2 must not quarantine at threshold 3");
        router.note_corruption(0);
        {
            let backends = sync::lock(&router.backends);
            assert_eq!(backends[0].health, BackendHealth::Quarantined);
        }
        assert!(!router.routable(0));
        assert_eq!(router.stats.quarantines.load(Ordering::Relaxed), 1);
        assert_eq!(router.stats.corrupt_responses.load(Ordering::Relaxed), 5);
        // Healthy probes inside the window do not release the backend...
        {
            let mut backends = sync::lock(&router.backends);
            for _ in 0..3 {
                backends[0].note_probe(Probe::Ok, 2, 3, Duration::from_millis(40));
            }
            assert_eq!(backends[0].health, BackendHealth::Quarantined);
        }
        // ...but once it elapses, the next healthy probe does.
        thread::sleep(Duration::from_millis(45));
        {
            let mut backends = sync::lock(&router.backends);
            assert_eq!(
                backends[0].note_probe(Probe::Ok, 2, 3, Duration::from_millis(40)),
                (false, true)
            );
            assert_eq!(backends[0].health, BackendHealth::Up);
            assert_eq!(backends[0].consecutive_corruptions, 0);
        }
        // The transition is visible in /stats, /ring and /healthz.
        router.note_corruption(1);
        router.note_corruption(1);
        router.note_corruption(1);
        let stats = router.stats_json();
        assert!(stats.contains("\"health\":\"quarantined\""), "{stats}");
        assert!(stats.contains("\"quarantines\":2"), "{stats}");
        let ring = router.ring_json();
        assert!(ring.contains("\"health\":\"quarantined\""), "{ring}");
        let h = router.healthz();
        assert!(h.body.contains("\"quarantined\":1"), "{}", h.body);
    }

    #[test]
    fn hedge_pick_skips_lone_live_backend() {
        // Two live backends: hedge to the other one.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |c| c < 2), Some(1));
        // Only the primary is live: no hedge — the duplicate would land
        // on the same instance.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |c| c == 0), None);
        // Nothing live at all: no hedge either.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |_| false), None);
        // Primary dead, two live replicas: hedge picks a live one.
        assert_eq!(hedge_pick(&[0, 1, 2], 0, |c| c > 0), Some(1));
    }

    #[test]
    fn parse_reply_rejects_garbage_and_torn_bodies() {
        // Garbled status line: not a reply at all.
        assert!(parse_reply(b"GARBAGE! 200 OK\r\nContent-Length: 2\r\n\r\n{}").is_err());
        // Body shorter than the declared Content-Length: torn.
        assert!(parse_reply(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n{}").is_err());
        // Trailing bytes past Content-Length are dropped, not trusted.
        let r = match parse_reply(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}junk") {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn digest_header_verifies_the_body() {
        let body = b"{\"id\":0}".to_vec();
        let good = Reply {
            status: 202,
            headers: vec![("X-CF-Digest".to_string(), format!("{:016x}", fnv1a(&body)))],
            body: body.clone(),
        };
        assert!(digest_ok(&good));
        let bad = Reply {
            status: 202,
            headers: vec![("X-CF-Digest".to_string(), format!("{:016x}", fnv1a(&body) ^ 1))],
            body: body.clone(),
        };
        assert!(!digest_ok(&bad));
        let unstamped = Reply { status: 202, headers: Vec::new(), body };
        assert!(digest_ok(&unstamped), "plain upstreams without the header still pass");
    }

    #[test]
    fn reply_parsing_and_status_mapping() {
        let reply = parse_reply(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 7\r\nContent-Length: 2\r\n\r\n{}",
        );
        let reply = match reply {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("7"));
        assert_eq!(reply.body, b"{}");
        assert_eq!(status_line(202), "202 Accepted");
        assert_eq!(status_line(999), "502 Bad Gateway");
        assert!(parse_reply(b"HTTP/1.1 200").is_err());
    }

    #[test]
    fn id_translation_rewrites_exact_prefixes_only() {
        let record = Reply {
            status: 200,
            headers: Vec::new(),
            body: b"{\"job\":3,\"label\":\"x\",\"ok\":true}".to_vec(),
        };
        let out = translate_ids(&record, 3, 17, false);
        assert_eq!(out.body, "{\"job\":17,\"label\":\"x\",\"ok\":true}");
        let status = Reply {
            status: 202,
            headers: Vec::new(),
            body: b"{\"id\":0,\"state\":\"running\"}".to_vec(),
        };
        let out = translate_ids(&status, 0, 5, false);
        assert_eq!(out.body, "{\"id\":5,\"state\":\"running\"}");
        // A body whose prefix does not match is left alone.
        let odd = Reply { status: 200, headers: Vec::new(), body: b"{\"jobs\":3}".to_vec() };
        let out = translate_ids(&odd, 3, 17, false);
        assert_eq!(out.body, "{\"jobs\":3}");
    }

    #[test]
    fn hedge_threshold_floors_then_tracks_the_quantile() {
        let router = Router::new(RouterConfig {
            backends: names(2),
            hedge_floor: Duration::from_millis(10),
            ..RouterConfig::default()
        });
        assert_eq!(router.hedge_threshold(), Duration::from_millis(10));
        // 30 fast samples: p95 lands in a low bucket, clamped up to the floor.
        for _ in 0..30 {
            router.submit_latency.observe(Duration::from_micros(64));
        }
        assert_eq!(router.hedge_threshold(), Duration::from_millis(10));
        // A slow tail drags the p95 above the floor.
        for _ in 0..300 {
            router.submit_latency.observe(Duration::from_millis(80));
        }
        assert!(router.hedge_threshold() >= Duration::from_millis(80));
    }

    #[test]
    fn router_healthz_reflects_backend_states() {
        let router = Router::new(RouterConfig { backends: names(2), ..RouterConfig::default() });
        let r = router.healthz();
        assert_eq!(r.status, "200 OK");
        assert!(r.body.contains("\"up\":2"), "{}", r.body);
        {
            let mut backends = sync::lock(&router.backends);
            backends[0].health = BackendHealth::Ejected;
            backends[1].health = BackendHealth::Draining;
        }
        let r = router.healthz();
        assert_eq!(r.status, "503 Service Unavailable");
        assert!(r.body.contains("\"no-backends\""), "{}", r.body);
        assert!(r.body.contains("\"draining\":1"), "{}", r.body);
        let stats = router.stats_json();
        assert!(stats.contains("\"health\":\"ejected\""), "{stats}");
        assert!(stats.contains("\"health\":\"draining\""), "{stats}");
    }

    #[test]
    fn slo_tracker_burn_rate_and_budget() {
        let slo = SloTracker::new(Duration::from_millis(100), 0.99);
        // 99 good + 1 bad at a 99% objective: budget exactly spent,
        // 5m burn rate exactly 1.0.
        for i in 0..100u64 {
            let latency =
                if i == 0 { Duration::from_millis(200) } else { Duration::from_millis(10) };
            slo.record(latency, Duration::from_secs(i / 10));
        }
        assert_eq!(slo.good.load(Ordering::Relaxed), 99);
        assert_eq!(slo.bad.load(Ordering::Relaxed), 1);
        let burn = slo.burn_rate(&slo.w5m, 9 / 5);
        assert!((burn - 1.0).abs() < 1e-9, "burn={burn}");
        let budget = slo.budget_remaining();
        assert!(budget.abs() < 1e-9, "budget={budget}");
        // An empty window burns nothing; an untouched tracker has a
        // full budget.
        let fresh = SloTracker::new(Duration::from_millis(100), 0.99);
        assert_eq!(fresh.burn_rate(&fresh.w5m, 0), 0.0);
        assert_eq!(fresh.budget_remaining(), 1.0);
        // Old slots age out of the 5-minute window: book one bad job
        // at slot 0, look 60+ slots later.
        let aged = SloTracker::new(Duration::from_millis(100), 0.99);
        aged.record(Duration::from_millis(200), Duration::ZERO);
        assert!(aged.burn_rate(&aged.w5m, 0) > 0.0);
        assert_eq!(aged.burn_rate(&aged.w5m, 100), 0.0);
    }

    #[test]
    fn submit_raw_stamps_the_trace_header() {
        let ctx = TraceContext::mint();
        let raw = submit_raw("{\"x\":1}", ctx);
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("POST /jobs HTTP/1.1\r\n"), "{text}");
        assert!(text.contains(&format!("{TRACE_HEADER}: {}\r\n", ctx.encode())), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"), "{text}");
    }

    #[test]
    fn merged_trace_nests_backend_events_inside_attempt_windows() {
        let root = TraceContext::mint();
        let attempt = root.child();
        let spans = vec![
            RouterSpan {
                trace_id: root.trace_id,
                span_id: attempt.span_id,
                parent: attempt.parent,
                name: "attempt",
                cause: "primary",
                backend: Some(0),
                start_us: 100,
                dur_us: 5_000,
                outcome: "ok",
            },
            RouterSpan {
                trace_id: root.trace_id,
                span_id: root.span_id,
                parent: None,
                name: "dispatch",
                cause: "submit",
                backend: None,
                start_us: 50,
                dur_us: 6_000,
                outcome: "ok",
            },
        ];
        let events = vec![BackendTraceEvent {
            kind: "job-settle".to_string(),
            detail: "job 0".to_string(),
            at_us: 777,
            duration_us: Some(42),
            span: attempt.span_id + 1,
            parent: Some(attempt.span_id),
        }];
        let addrs = vec!["127.0.0.1:9000".to_string()];
        let body = render_merged_trace(root.trace_id, &spans, &[(0usize, events)], &addrs);
        let parsed = serde_json::from_str(&body).expect("merged trace parses");
        assert_eq!(
            parsed.get("trace").and_then(|t| t.as_str()),
            Some(format!("{:032x}", root.trace_id).as_str())
        );
        let evs = parsed.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents");
        // The backend's settle event lands strictly inside its
        // attempt's [100, 5100) window, on the backend's pid 1.
        let settle = evs
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("job-settle"))
            .expect("settle event present");
        assert_eq!(settle.get("pid").and_then(|p| p.as_u64()), Some(1));
        let ts = settle.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!(ts > 100.0 && ts < 5_100.0, "ts={ts}");
        // The attempt window is re-rendered on the backend pid so the
        // children nest under a visible parent box.
        assert!(
            evs.iter().any(|e| {
                e.get("pid").and_then(|p| p.as_u64()) == Some(1)
                    && e.get("name").and_then(|n| n.as_str()) == Some("attempt (primary)")
            }),
            "{body}"
        );
    }
}
