//! cf-netfault: deterministic, seeded *network* fault injection for the
//! fleet — the wire-level sibling of [`crate::fault`].
//!
//! A [`NetFaultPlan`] decides, purely from a hash of `(seed, site,
//! backend token, request fingerprint, attempt)`, whether a given wire
//! fault fires on a given exchange. The backend token is the FNV-1a of
//! the dialed address, the request fingerprint is the FNV-1a of the raw
//! request bytes, and the attempt numbers repeated exchanges of the
//! same `(backend, request)` pair — so one seed reproduces the same
//! fault *schedule* at any concurrency: the n-th identical request to a
//! backend always draws the n-th decision, no matter how other traffic
//! interleaves. Retries therefore draw fresh decisions (faults heal
//! under failover) while a replayed run replays the same schedule.
//!
//! Sites (see [`NetFaultSite`]):
//!
//! * **Refuse** — the connect is refused outright;
//! * **ConnectLatency** — the connect/first byte stalls for
//!   [`NetFaultSpec::latency`] (timing-only);
//! * **Trickle** — the response bytes trickle in over
//!   [`NetFaultSpec::trickle`] (slow-loris; timing-only);
//! * **Tear** — the connection tears mid-body: the reply truncates and
//!   the declared `Content-Length` no longer matches;
//! * **Garbage** — the status line is overwritten with garbage;
//! * **Corrupt** — one deterministic body byte flips, which the
//!   end-to-end record digest must catch (see
//!   [`crate::serve::verify_record_json`]).
//!
//! Two deployment shapes share the same plan: the in-process
//! [`FaultConnector`] decorating the router's real dialer (the
//! [`Connector`] seam in [`crate::router`]), and the standalone
//! byte-level [`FaultProxy`] (`cfrouter --fault-proxy`) for black-box
//! end-to-end runs where the victim must not even link the fault code.
//! See DESIGN.md §11.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::api;
use crate::fault::{fnv1a, mix};
use crate::router::{CancelSlot, Connector};
use crate::sync;

/// Where a wire fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFaultSite {
    /// Refuse the connect outright.
    Refuse,
    /// Stall the connect / first response byte.
    ConnectLatency,
    /// Trickle the response bytes out slowly (slow-loris).
    Trickle,
    /// Tear the connection mid-body (truncated reply).
    Tear,
    /// Overwrite the status line with garbage.
    Garbage,
    /// Flip one deterministic body byte.
    Corrupt,
}

impl NetFaultSite {
    /// Decision-hash tag; disjoint from [`crate::fault::FaultSite`]
    /// tags so a shared seed never correlates job and wire faults.
    fn tag(self) -> u64 {
        match self {
            NetFaultSite::Refuse => 0x11,
            NetFaultSite::ConnectLatency => 0x12,
            NetFaultSite::Trickle => 0x13,
            NetFaultSite::Tear => 0x14,
            NetFaultSite::Garbage => 0x15,
            NetFaultSite::Corrupt => 0x16,
        }
    }

    /// Every site, in decision-priority order (at most one fault fires
    /// per exchange; connection-level faults outrank payload ones).
    pub const ALL: [NetFaultSite; 6] = [
        NetFaultSite::Refuse,
        NetFaultSite::Garbage,
        NetFaultSite::Tear,
        NetFaultSite::Corrupt,
        NetFaultSite::ConnectLatency,
        NetFaultSite::Trickle,
    ];
}

/// Per-site injection rates (each a probability in `[0, 1]`) plus the
/// timing-fault durations.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultSpec {
    /// Rate of refused connects (per exchange).
    pub refuse_rate: f64,
    /// Rate of stalled connects (per exchange).
    pub connect_latency_rate: f64,
    /// How long a stalled connect waits.
    pub latency: Duration,
    /// Rate of trickled responses (per exchange).
    pub trickle_rate: f64,
    /// Total extra time a trickled response takes to deliver.
    pub trickle: Duration,
    /// Rate of mid-body connection tears (per exchange).
    pub tear_rate: f64,
    /// Rate of garbage status lines (per exchange).
    pub garbage_rate: f64,
    /// Rate of single-byte body corruption (per exchange).
    pub corrupt_rate: f64,
}

impl NetFaultSpec {
    /// All rates zero: a plan that never fires.
    pub fn none() -> Self {
        NetFaultSpec {
            refuse_rate: 0.0,
            connect_latency_rate: 0.0,
            latency: Duration::from_millis(25),
            trickle_rate: 0.0,
            trickle: Duration::from_millis(50),
            tear_rate: 0.0,
            garbage_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// Parses a `--netfault-spec` string: comma-separated `site=rate`
    /// pairs, e.g.
    /// `refuse=0.1,connect_latency=0.05,latency_ms=25,trickle=0.1,trickle_ms=50,tear=0.1,garbage=0.05,corrupt=0.1`.
    ///
    /// # Errors
    ///
    /// A message naming the unparseable pair or out-of-range rate.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = NetFaultSpec::none();
        for pair in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                pair.split_once('=').ok_or_else(|| format!("bad netfault-spec item `{pair}`"))?;
            let rate = |v: &str| {
                v.parse::<f64>().map_err(|_| format!("bad netfault-spec value `{v}` for `{key}`"))
            };
            let millis = |v: &str| {
                v.parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| format!("bad netfault-spec value `{v}` for `{key}`"))
            };
            match key {
                "refuse" => spec.refuse_rate = rate(value)?,
                "connect_latency" => spec.connect_latency_rate = rate(value)?,
                "latency_ms" => spec.latency = millis(value)?,
                "trickle" => spec.trickle_rate = rate(value)?,
                "trickle_ms" => spec.trickle = millis(value)?,
                "tear" => spec.tear_rate = rate(value)?,
                "garbage" => spec.garbage_rate = rate(value)?,
                "corrupt" => spec.corrupt_rate = rate(value)?,
                other => return Err(format!("unknown netfault site `{other}`")),
            }
        }
        for (name, rate) in [
            ("refuse", spec.refuse_rate),
            ("connect_latency", spec.connect_latency_rate),
            ("trickle", spec.trickle_rate),
            ("tear", spec.tear_rate),
            ("garbage", spec.garbage_rate),
            ("corrupt", spec.corrupt_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("netfault rate `{name}` must be in [0, 1], got {rate}"));
            }
        }
        Ok(spec)
    }

    fn rate(&self, site: NetFaultSite) -> f64 {
        match site {
            NetFaultSite::Refuse => self.refuse_rate,
            NetFaultSite::ConnectLatency => self.connect_latency_rate,
            NetFaultSite::Trickle => self.trickle_rate,
            NetFaultSite::Tear => self.tear_rate,
            NetFaultSite::Garbage => self.garbage_rate,
            NetFaultSite::Corrupt => self.corrupt_rate,
        }
    }
}

/// One wire fault the plan decided to inject on one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Refuse the connect.
    Refuse,
    /// Sleep this long before dialing.
    ConnectLatency(Duration),
    /// Deliver the response over this much extra time.
    Trickle(Duration),
    /// Truncate the reply mid-body.
    Tear,
    /// Overwrite the status line.
    Garbage,
    /// Flip one body byte.
    Corrupt,
}

/// A seeded, stateless wire-fault decider (see the module docs for the
/// determinism argument).
#[derive(Clone, PartialEq)]
pub struct NetFaultPlan {
    seed: u64,
    spec: NetFaultSpec,
}

impl fmt::Debug for NetFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetFaultPlan").field("seed", &self.seed).field("spec", &self.spec).finish()
    }
}

impl NetFaultPlan {
    /// A plan that injects per `spec`, decided by hashing against `seed`.
    pub fn new(seed: u64, spec: NetFaultSpec) -> Self {
        NetFaultPlan { seed, spec }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-site rates.
    pub fn spec(&self) -> &NetFaultSpec {
        &self.spec
    }

    /// Whether `site` fires for decision point
    /// `(backend, fingerprint, attempt)`.
    pub fn fires(&self, site: NetFaultSite, backend: u64, fingerprint: u64, attempt: u32) -> bool {
        let rate = self.spec.rate(site);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = mix(mix(mix(mix(self.seed, site.tag()), backend), fingerprint), u64::from(attempt));
        // Map the hash to [0, 1) with 53 bits of precision.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }

    /// The fault (if any) to inject on one exchange: sites are checked
    /// in [`NetFaultSite::ALL`] priority order and the first firing one
    /// wins, so at most one fault applies per exchange.
    pub fn decide(&self, backend: u64, fingerprint: u64, attempt: u32) -> Option<NetFault> {
        for site in NetFaultSite::ALL {
            if self.fires(site, backend, fingerprint, attempt) {
                return Some(match site {
                    NetFaultSite::Refuse => NetFault::Refuse,
                    NetFaultSite::ConnectLatency => NetFault::ConnectLatency(self.spec.latency),
                    NetFaultSite::Trickle => NetFault::Trickle(self.spec.trickle),
                    NetFaultSite::Tear => NetFault::Tear,
                    NetFaultSite::Garbage => NetFault::Garbage,
                    NetFaultSite::Corrupt => NetFault::Corrupt,
                });
            }
        }
        None
    }
}

/// Deterministically mangles raw reply bytes in place for the payload
/// fault families. `key` seeds byte-position choices so the same
/// decision point mangles the same way on every run.
pub fn mangle(bytes: &mut Vec<u8>, fault: NetFault, key: u64) {
    let head_end = bytes.windows(4).position(|w| w == b"\r\n\r\n");
    match fault {
        NetFault::Tear => {
            // Keep the head but cut the body short (or halve a headless
            // blob): the declared Content-Length no longer matches.
            let keep = match head_end {
                Some(h) if bytes.len() > h + 4 => h + 4 + (bytes.len() - h - 4) / 2,
                _ => bytes.len() / 2,
            };
            bytes.truncate(keep);
        }
        NetFault::Garbage => {
            for (i, b) in bytes.iter_mut().take(8).enumerate() {
                *b = b"GARBAGE!"[i];
            }
        }
        NetFault::Corrupt => {
            let body_start = head_end.map(|h| h + 4).unwrap_or(0);
            if bytes.len() > body_start {
                let span = bytes.len() - body_start;
                let at = body_start + (mix(key, 0x77) % span as u64) as usize;
                bytes[at] ^= 0x55;
            } else if let Some(last) = bytes.last_mut() {
                // No body: break the head terminator instead.
                *last ^= 0x55;
            }
        }
        NetFault::Refuse | NetFault::ConnectLatency(_) | NetFault::Trickle(_) => {}
    }
}

/// Numbers repeated exchanges of the same `(backend, fingerprint)`
/// pair: the n-th call returns n-1. Shared by the connector decorator
/// and the proxy so both key decisions the same way.
#[derive(Debug, Default)]
struct AttemptLedger {
    seen: Mutex<HashMap<(u64, u64), u32>>,
}

impl AttemptLedger {
    fn next(&self, backend: u64, fingerprint: u64) -> u32 {
        let mut seen = sync::lock(&self.seen);
        let slot = seen.entry((backend, fingerprint)).or_insert(0);
        let attempt = *slot;
        *slot = slot.saturating_add(1);
        attempt
    }
}

/// A [`Connector`] decorator injecting the plan's wire faults over the
/// real dialer — the router-side deployment of the netfault layer.
#[derive(Debug)]
pub struct FaultConnector {
    inner: Arc<dyn Connector>,
    plan: NetFaultPlan,
    ledger: AttemptLedger,
    injected: AtomicU64,
}

impl FaultConnector {
    /// Decorates `inner` with faults drawn from `plan`.
    pub fn new(inner: Arc<dyn Connector>, plan: NetFaultPlan) -> FaultConnector {
        FaultConnector {
            inner,
            plan,
            ledger: AttemptLedger::default(),
            injected: AtomicU64::new(0),
        }
    }

    /// Faults injected so far (tests assert the plan actually fired).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl Connector for FaultConnector {
    fn exchange(
        &self,
        addr: &str,
        raw: &[u8],
        connect_timeout: Duration,
        read_timeout: Duration,
        cancel: Option<&CancelSlot>,
    ) -> std::io::Result<Vec<u8>> {
        let backend = fnv1a(addr.as_bytes());
        let fingerprint = fnv1a(raw);
        let attempt = self.ledger.next(backend, fingerprint);
        let Some(fault) = self.plan.decide(backend, fingerprint, attempt) else {
            return self.inner.exchange(addr, raw, connect_timeout, read_timeout, cancel);
        };
        self.injected.fetch_add(1, Ordering::Relaxed);
        match fault {
            NetFault::Refuse => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "netfault: connect refused",
            )),
            NetFault::ConnectLatency(d) => {
                thread::sleep(d);
                self.inner.exchange(addr, raw, connect_timeout, read_timeout, cancel)
            }
            NetFault::Trickle(d) => {
                let bytes =
                    self.inner.exchange(addr, raw, connect_timeout, read_timeout, cancel)?;
                thread::sleep(d);
                Ok(bytes)
            }
            NetFault::Tear | NetFault::Garbage | NetFault::Corrupt => {
                let mut bytes =
                    self.inner.exchange(addr, raw, connect_timeout, read_timeout, cancel)?;
                mangle(&mut bytes, fault, mix(backend, fingerprint));
                Ok(bytes)
            }
        }
    }
}

/// Proxy-side connect timeout against the upstream.
const PROXY_CONNECT: Duration = Duration::from_secs(2);
/// Proxy-side read timeout: must outlast a `/jobs/<id>` long-poll.
const PROXY_READ: Duration = Duration::from_secs(150);
/// Time a proxied client gets to deliver one complete request.
const PROXY_CLIENT_READ: Duration = Duration::from_secs(10);
/// How long the accept loop sleeps when no connection is pending.
const PROXY_POLL: Duration = Duration::from_millis(10);
/// Trickle chunk size: small enough that a trickled record crosses many
/// writes, large enough to finish inside a test timeout.
const TRICKLE_CHUNK: usize = 256;

/// A standalone byte-level fault proxy: listens on a local port,
/// forwards each complete request to `upstream`, and applies the plan's
/// faults to the raw response bytes on the way back. Black-box: the
/// process under test just dials the proxy's address as if it were the
/// backend (`cfrouter --fault-proxy`).
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds `127.0.0.1:port` (0 picks a free port) proxying to
    /// `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Any socket bind/configure failure, unchanged.
    pub fn bind(port: u16, upstream: &str, plan: NetFaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let upstream = upstream.to_string();
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new().name("cf-fault-proxy".to_string()).spawn(move || {
                accept_loop(&listener, &upstream, plan, &shutdown);
            })?
        };
        Ok(FaultProxy { addr, shutdown, thread: Some(thread) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread (also done on drop).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, upstream: &str, plan: NetFaultPlan, shutdown: &AtomicBool) {
    let ledger = Arc::new(AttemptLedger::default());
    let plan = Arc::new(plan);
    let upstream = Arc::new(upstream.to_string());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ledger = Arc::clone(&ledger);
                let plan = Arc::clone(&plan);
                let upstream = Arc::clone(&upstream);
                let spawned = thread::Builder::new().name("cf-fault-proxy-conn".to_string()).spawn(
                    move || {
                        let _ = proxy_connection(stream, &upstream, &plan, &ledger);
                    },
                );
                drop(spawned);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(PROXY_POLL),
            Err(_) => thread::sleep(PROXY_POLL),
        }
    }
}

/// Reads one complete request off `client`, decides the fault for its
/// `(upstream, request-bytes)` point, forwards, mangles, answers.
fn proxy_connection(
    mut client: TcpStream,
    upstream: &str,
    plan: &NetFaultPlan,
    ledger: &AttemptLedger,
) -> std::io::Result<()> {
    client.set_read_timeout(Some(Duration::from_millis(500)))?;
    client.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + PROXY_CLIENT_READ;
    loop {
        match api::parse_request(&buf, api::DEFAULT_MAX_BODY_BYTES) {
            Ok(Some(_)) => break,
            Ok(None) => {}
            // Unparseable request: forward nothing, drop the client.
            Err(_) => return Ok(()),
        }
        if Instant::now() > deadline {
            return Ok(());
        }
        match client.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return Ok(()),
        }
    }

    let backend = fnv1a(upstream.as_bytes());
    let fingerprint = fnv1a(&buf);
    let attempt = ledger.next(backend, fingerprint);
    let fault = plan.decide(backend, fingerprint, attempt);
    if fault == Some(NetFault::Refuse) {
        // Connect refusal, black-box style: close without a byte.
        return Ok(());
    }
    if let Some(NetFault::ConnectLatency(d)) = fault {
        thread::sleep(d);
    }

    let sock: SocketAddr = upstream.parse().map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{upstream}: {e}"))
    })?;
    let mut up = TcpStream::connect_timeout(&sock, PROXY_CONNECT)?;
    up.set_read_timeout(Some(PROXY_READ))?;
    up.set_write_timeout(Some(PROXY_CONNECT))?;
    up.write_all(&buf)?;
    let mut bytes = Vec::with_capacity(1024);
    loop {
        match up.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }

    match fault {
        Some(f @ (NetFault::Tear | NetFault::Garbage | NetFault::Corrupt)) => {
            mangle(&mut bytes, f, mix(backend, fingerprint));
            client.write_all(&bytes)?;
        }
        Some(NetFault::Trickle(total)) => {
            let chunks = bytes.chunks(TRICKLE_CHUNK).len().max(1);
            let pause = total / chunks as u32;
            for piece in bytes.chunks(TRICKLE_CHUNK) {
                client.write_all(piece)?;
                client.flush()?;
                thread::sleep(pause);
            }
        }
        _ => client.write_all(&bytes)?,
    }
    client.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> NetFaultSpec {
        NetFaultSpec {
            refuse_rate: 0.1,
            connect_latency_rate: 0.05,
            trickle_rate: 0.05,
            tear_rate: 0.1,
            garbage_rate: 0.05,
            corrupt_rate: 0.1,
            ..NetFaultSpec::none()
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = NetFaultPlan::new(7, mixed());
        let b = NetFaultPlan::new(7, mixed());
        let c = NetFaultPlan::new(8, mixed());
        let mut diverged = false;
        for backend in 0..10u64 {
            for fp in 0..50u64 {
                for attempt in 0..3 {
                    let d = a.decide(backend, fp, attempt);
                    assert_eq!(d, b.decide(backend, fp, attempt));
                    diverged |= d != c.decide(backend, fp, attempt);
                }
            }
        }
        assert!(diverged, "different seeds never diverged across 1500 decisions");
    }

    #[test]
    fn retries_draw_fresh_decisions() {
        let plan = NetFaultPlan::new(3, NetFaultSpec { refuse_rate: 0.5, ..NetFaultSpec::none() });
        let healed = (0..200u64).any(|fp| {
            plan.fires(NetFaultSite::Refuse, 1, fp, 0)
                && !plan.fires(NetFaultSite::Refuse, 1, fp, 1)
        });
        assert!(healed, "no decision point healed on retry at 50%");
    }

    #[test]
    fn spec_parses_and_rejects() {
        let spec =
            NetFaultSpec::parse("refuse=0.1, tear=0.2,corrupt=0.05,latency_ms=7,trickle_ms=9")
                .unwrap();
        assert_eq!(spec.refuse_rate, 0.1);
        assert_eq!(spec.tear_rate, 0.2);
        assert_eq!(spec.corrupt_rate, 0.05);
        assert_eq!(spec.latency, Duration::from_millis(7));
        assert_eq!(spec.trickle, Duration::from_millis(9));
        assert!(NetFaultSpec::parse("bogus=1").is_err());
        assert!(NetFaultSpec::parse("refuse=2.0").is_err());
        assert!(NetFaultSpec::parse("refuse").is_err());
        assert_eq!(NetFaultSpec::parse("").unwrap(), NetFaultSpec::none());
    }

    #[test]
    fn mangle_tear_truncates_body_and_garbage_breaks_status() {
        let reply = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n0123456789".to_vec();
        let mut torn = reply.clone();
        mangle(&mut torn, NetFault::Tear, 42);
        assert!(torn.len() < reply.len(), "tear must shorten the reply");
        assert!(torn.windows(4).any(|w| w == b"\r\n\r\n"), "tear keeps the head");

        let mut garbled = reply.clone();
        mangle(&mut garbled, NetFault::Garbage, 42);
        assert_eq!(&garbled[..8], b"GARBAGE!");
        assert_eq!(garbled.len(), reply.len());

        let mut flipped = reply.clone();
        mangle(&mut flipped, NetFault::Corrupt, 42);
        assert_eq!(flipped.len(), reply.len());
        let diff = reply.iter().zip(&flipped).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1, "corrupt flips exactly one byte");
        let head_end = reply.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert_eq!(&flipped[..head_end], &reply[..head_end], "corrupt stays in the body");
    }

    #[test]
    fn attempt_ledger_numbers_repeats_per_point() {
        let ledger = AttemptLedger::default();
        assert_eq!(ledger.next(1, 10), 0);
        assert_eq!(ledger.next(1, 10), 1);
        assert_eq!(ledger.next(2, 10), 0, "distinct backends count separately");
        assert_eq!(ledger.next(1, 11), 0, "distinct requests count separately");
        assert_eq!(ledger.next(1, 10), 2);
    }
}
