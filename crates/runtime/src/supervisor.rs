//! The supervision layer: retry-with-backoff for idempotent jobs and a
//! circuit breaker that sheds load under sustained failure.
//!
//! Simulation and functional-execution jobs are pure functions of their
//! inputs, so a failed attempt can be re-run safely. The scheduler wraps
//! those job bodies in `Supervisor::supervise`: each attempt that fails
//! with a
//! *transient* error (a panic, an injected fault, a transient DMA error)
//! is retried up to [`RetryPolicy::max_retries`] times, sleeping an
//! exponentially growing, deterministically jittered backoff between
//! attempts, bounded by [`RetryPolicy::total_deadline`].
//!
//! The [`CircuitBreaker`] watches terminal outcomes across jobs: after
//! [`BreakerConfig::failure_threshold`] *consecutive* failures it opens
//! and sheds new jobs ([`crate::JobError::CircuitOpen`]) for
//! [`BreakerConfig::open_for`]; the first job after that interval runs as
//! a half-open probe whose outcome closes the breaker or re-opens it.
//! All breaker methods take explicit [`Instant`]s so the state machine is
//! testable without sleeping.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::fault::{FaultPlan, FaultSite};
use crate::job::JobError;
use crate::obs::{SpanKind, Stage, Tracer};
use crate::stats::RuntimeStats;
use crate::sync;
use std::sync::Arc;

/// Retry policy for supervised (idempotent) jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Upper bound on time spent in the job including backoffs; a retry
    /// whose backoff would cross this gives up instead. `None` = no bound.
    pub total_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            total_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `max_retries` times with default backoffs.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy { max_retries, ..Default::default() }
    }

    /// The backoff before retry number `failures` (1-based: the retry
    /// after the first failed attempt is `failures = 1`), jittered by
    /// `jitter ∈ [0, 1)` into `[½·nominal, nominal]`, capped at
    /// [`max_backoff`](RetryPolicy::max_backoff).
    pub fn backoff(&self, failures: u32, jitter: f64) -> Duration {
        let doublings = failures.saturating_sub(1).min(20);
        let nominal =
            self.base_backoff.saturating_mul(1u32 << doublings).min(self.max_backoff).as_secs_f64();
        Duration::from_secs_f64(nominal * (0.5 + 0.5 * jitter.clamp(0.0, 1.0)))
    }
}

/// Decides whether a job that has failed `failures` times (≥ 1) after
/// running for `elapsed` may retry, and with what backoff.
///
/// Returns `None` when the retry budget is exhausted or the backoff would
/// cross the total deadline — the invariants the resilience proptests
/// pin down.
pub fn next_retry(
    policy: &RetryPolicy,
    failures: u32,
    elapsed: Duration,
    jitter: f64,
) -> Option<Duration> {
    if failures > policy.max_retries {
        return None;
    }
    let backoff = policy.backoff(failures, jitter);
    if let Some(deadline) = policy.total_deadline {
        if elapsed + backoff > deadline {
            return None;
        }
    }
    Some(backoff)
}

/// Circuit-breaker construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive terminal failures that open the breaker
    /// (0 disables the breaker entirely).
    pub failure_threshold: u32,
    /// How long an open breaker sheds load before probing.
    pub open_for: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // Disabled by default: shedding is an opt-in service behaviour.
        BreakerConfig { failure_threshold: 0, open_for: Duration::from_millis(500) }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting jobs; counting consecutive failures.
    Closed,
    /// Shedding jobs until the open interval passes.
    Open,
    /// One probe job is in flight; its outcome decides the next state.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// A consecutive-failure circuit breaker (see the module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: None,
            }),
        }
    }

    /// Whether the breaker can trip at all.
    pub fn enabled(&self) -> bool {
        self.config.failure_threshold > 0
    }

    /// The current state (transitions lazily on [`allow_at`]).
    ///
    /// [`allow_at`]: CircuitBreaker::allow_at
    pub fn state(&self) -> BreakerState {
        sync::lock(&self.inner).state
    }

    /// Whether a job arriving at `now` may run. Open → `false` until the
    /// open interval passes, then the first caller becomes the half-open
    /// probe (`true`) and subsequent callers are shed until the probe
    /// resolves.
    pub fn allow_at(&self, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut inner = sync::lock(&self.inner);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => match inner.open_until {
                Some(until) if now < until => false,
                _ => {
                    inner.state = BreakerState::HalfOpen;
                    true
                }
            },
        }
    }

    /// [`allow_at`](CircuitBreaker::allow_at) at the current instant.
    pub fn allow(&self) -> bool {
        self.allow_at(Instant::now())
    }

    /// Records a job that reached a terminal success.
    pub fn record_success(&self) {
        if !self.enabled() {
            return;
        }
        let mut inner = sync::lock(&self.inner);
        inner.consecutive_failures = 0;
        inner.open_until = None;
        inner.state = BreakerState::Closed;
    }

    /// Records a job that reached a terminal failure at `now`.
    pub fn record_failure_at(&self, now: Instant) {
        if !self.enabled() {
            return;
        }
        let mut inner = sync::lock(&self.inner);
        match inner.state {
            BreakerState::HalfOpen => {
                // Failed probe: back to a full open interval.
                inner.state = BreakerState::Open;
                inner.open_until = Some(now + self.config.open_for);
            }
            _ => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.open_until = Some(now + self.config.open_for);
                }
            }
        }
    }

    /// [`record_failure_at`](CircuitBreaker::record_failure_at) at the
    /// current instant.
    pub fn record_failure(&self) {
        self.record_failure_at(Instant::now());
    }
}

/// Everything [`supervise`] needs from the pool.
pub(crate) struct Supervisor {
    pub(crate) policy: RetryPolicy,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) plan: Option<FaultPlan>,
    pub(crate) tracer: Arc<Tracer>,
}

impl Supervisor {
    /// Whether an error is worth retrying (attempt-scoped, transient).
    fn retryable(e: &JobError) -> bool {
        match e {
            JobError::Panicked(_) => true,
            JobError::Sim(core) => core.is_transient(),
            _ => false,
        }
    }

    /// Runs `body` under supervision: breaker admission, per-attempt
    /// fault injection, panic isolation and retry-with-backoff.
    ///
    /// `token` is the job's stable identity (its submission id) — every
    /// fault and jitter decision keys off it so runs reproduce.
    pub(crate) fn supervise<T>(
        &self,
        stats: &RuntimeStats,
        token: u64,
        body: impl Fn(u32) -> Result<T, JobError>,
    ) -> Result<T, JobError> {
        if !self.breaker.allow() {
            stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(JobError::CircuitOpen);
        }
        let started = Instant::now();
        let mut failures = 0u32;
        loop {
            let attempt = failures;
            let outcome = match self.inject_attempt(stats, token, attempt) {
                Some(err) => Err(err),
                None => catch_unwind(AssertUnwindSafe(|| body(attempt)))
                    .unwrap_or_else(|payload| Err(JobError::Panicked(panic_message(&*payload)))),
            };
            match outcome {
                Ok(value) => {
                    self.breaker.record_success();
                    return Ok(value);
                }
                Err(e) => {
                    if Self::retryable(&e) {
                        failures += 1;
                        let jitter =
                            self.plan.as_ref().map(|p| p.jitter(token, attempt)).unwrap_or(1.0);
                        if let Some(backoff) =
                            next_retry(&self.policy, failures, started.elapsed(), jitter)
                        {
                            stats.retries.fetch_add(1, Ordering::Relaxed);
                            self.tracer.observe(Stage::RetryBackoff, backoff);
                            self.tracer.record(SpanKind::JobRetry, token, Some(backoff), || {
                                format!("attempt={attempt} error={e}")
                            });
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                            continue;
                        }
                    }
                    self.breaker.record_failure();
                    return Err(e);
                }
            }
        }
    }

    /// Fires the per-attempt fault sites; returns the injected error, if
    /// any. Latency injection sleeps and returns `None`.
    fn inject_attempt(&self, stats: &RuntimeStats, token: u64, attempt: u32) -> Option<JobError> {
        let plan = self.plan.as_ref()?;
        if plan.fires(FaultSite::JobLatency, token, attempt) {
            stats.faults_injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(plan.spec().latency);
        }
        if plan.fires(FaultSite::DeadlineExpiry, token, attempt) {
            stats.faults_injected.fetch_add(1, Ordering::Relaxed);
            // An injected expiry is transient by construction (a clean
            // rerun meets the deadline), so surface it as a retryable
            // panic-class error rather than a genuine DeadlineExceeded.
            return Some(JobError::Panicked(format!(
                "injected deadline expiry (job {token}, attempt {attempt})"
            )));
        }
        if plan.fires(FaultSite::WorkerPanic, token, attempt) {
            stats.faults_injected.fetch_add(1, Ordering::Relaxed);
            // Synthesized rather than a real unwind so chaos runs do not
            // spray panic messages on stderr; genuine panics still take
            // the catch_unwind path in `supervise`.
            return Some(JobError::Panicked(format!(
                "injected worker panic (job {token}, attempt {attempt})"
            )));
        }
        None
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            total_deadline: Some(Duration::from_millis(100)),
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = policy();
        assert_eq!(p.backoff(1, 1.0), Duration::from_millis(10));
        assert_eq!(p.backoff(2, 1.0), Duration::from_millis(20));
        assert_eq!(p.backoff(3, 1.0), Duration::from_millis(40));
        assert_eq!(p.backoff(10, 1.0), Duration::from_millis(40));
        // Jitter 0 halves the nominal backoff.
        assert_eq!(p.backoff(1, 0.0), Duration::from_millis(5));
    }

    #[test]
    fn next_retry_respects_budget_and_deadline() {
        let p = policy();
        assert!(next_retry(&p, 1, Duration::ZERO, 1.0).is_some());
        assert!(next_retry(&p, 3, Duration::ZERO, 1.0).is_some());
        assert!(next_retry(&p, 4, Duration::ZERO, 1.0).is_none());
        assert!(next_retry(&p, 1, Duration::from_millis(95), 1.0).is_none());
    }

    #[test]
    fn breaker_full_cycle() {
        let cfg = BreakerConfig { failure_threshold: 2, open_for: Duration::from_millis(100) };
        let b = CircuitBreaker::new(cfg);
        let t0 = Instant::now();
        assert!(b.allow_at(t0));
        b.record_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_at(t0 + Duration::from_millis(50)));
        // Interval passed: one probe allowed, the rest shed.
        assert!(b.allow_at(t0 + Duration::from_millis(150)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow_at(t0 + Duration::from_millis(151)));
        // Failed probe re-opens for a fresh interval.
        b.record_failure_at(t0 + Duration::from_millis(160));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_at(t0 + Duration::from_millis(200)));
        // Successful probe closes.
        assert!(b.allow_at(t0 + Duration::from_millis(300)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow_at(t0 + Duration::from_millis(301)));
    }

    #[test]
    fn disabled_breaker_always_allows() {
        let b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..10 {
            b.record_failure();
        }
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
