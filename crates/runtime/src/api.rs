//! The HTTP job API: `POST /jobs` ingestion over the status server.
//!
//! [`StatusServer`](crate::StatusServer) started read-only; this module
//! promotes it to a full ingestion path. A client POSTs a JSON job spec
//! (the same fields as one manifest line), gets a job id back
//! immediately, and streams the finished record from `GET /jobs/<id>`
//! (a blocking long-poll) or checks `GET /jobs/<id>/status`. Three
//! properties drive the design:
//!
//! * **Durability before acknowledgement.** An accepted job is written
//!   to the API's write-ahead journal — an acceptance record
//!   carrying the canonical manifest line — and fsync'd *before* the id
//!   is returned. A crash between acceptance and completion leaves the
//!   accept on disk; `cfserve --resume` replays it, re-runs the job
//!   under the same id, and serves the identical record over HTTP.
//! * **Shedding at the front door.** Admission control
//!   ([`LoadPolicy`](crate::LoadPolicy)) is consulted before anything
//!   is journaled; an overloaded pool answers `503` with a
//!   `Retry-After` derived from how far past the limit the pool is,
//!   instead of queueing unboundedly.
//! * **Cross-request coalescing.** Two concurrent submissions of the
//!   same `(machine fingerprint, program content hash)` pair — the plan
//!   cache key — run as *one* computation: the second joins the first
//!   as a subscriber, gets its own durable id and record, and the
//!   `cf_api_coalesced_total` counter ticks once per joined request.
//!
//! The byte-exact record contract: a job submitted over the API and the
//! identical manifest line produce byte-identical result records (both
//! go through [`serve::render_record_json`](crate::serve::render_record_json)
//! from the same deterministic [`JobOutput`]).
//!
//! The module also owns the dependency-free incremental HTTP/1.1
//! request parser ([`parse_request`]) the server reads with: torn reads
//! return `Ok(None)` (read more), malformed request lines and headers
//! are typed errors the server maps to `400`, and a `Content-Length`
//! beyond the configured bound fails *before* the body arrives, so the
//! reader never buffers more than `--max-body-bytes`. See DESIGN.md §9.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cf_core::MachineConfig;
use cf_isa::Program;

use crate::cache::CacheKey;
use crate::fault::fnv1a;
use crate::job::{JobError, JobOptions};
use crate::journal::{AcceptedEntry, JobEntry, Journal, JournalError, RunHeader, JOURNAL_VERSION};
use crate::manifest::{self, JobKind};
use crate::obs::{SpanKind, Tracer};
use crate::scheduler::Runtime;
use crate::serve::{exec_output, json_str, render_record_json, sim_output, JobOutput, JobRecord};
use crate::sync;
use crate::trace::{Attribution, TraceContext, TOTAL_KEY};

/// Default request-body bound (`cfserve --max-body-bytes`).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

/// Request-head bound: the request line plus headers must fit here.
const MAX_HEAD_BYTES: usize = 8192;

/// Hottest-signature count for profiled API jobs (matches the manifest
/// serving path so profiled records stay identical).
const PROFILE_TOP_SIGNATURES: usize = 16;

/// Submission retries absorbed when admission capacity is raced away
/// between the front-door check and the actual submit.
const SUBMIT_RACE_RETRIES: u32 = 3;

// ---------------------------------------------------------------------------
// HTTP request parsing
// ---------------------------------------------------------------------------

/// One parsed HTTP/1.x request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target, query string included.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order; folded
    /// continuation lines are already joined into their header's value.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The target's path component (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's query string, if any (without the `?`).
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// The first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Why a request did not parse (each maps to one HTTP error status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// The request line is not `METHOD SP TARGET SP HTTP/…`.
    BadRequestLine,
    /// The head (request line + headers) exceeds `MAX_HEAD_BYTES` (8 KiB).
    HeadTooLarge,
    /// A header line has no `:` or an empty/spaced name.
    BadHeader,
    /// `Content-Length` is not a single unsigned integer.
    BadContentLength,
    /// `Content-Length` exceeds the configured body bound.
    BodyTooLarge {
        /// The declared body length.
        length: u64,
        /// The configured bound.
        max: usize,
    },
}

impl HttpParseError {
    /// The HTTP status line this error maps to.
    pub fn status(&self) -> &'static str {
        match self {
            HttpParseError::BodyTooLarge { .. } => "413 Payload Too Large",
            _ => "400 Bad Request",
        }
    }
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpParseError::BadRequestLine => write!(f, "malformed request line"),
            HttpParseError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpParseError::BadHeader => write!(f, "malformed header line"),
            HttpParseError::BadContentLength => write!(f, "malformed Content-Length"),
            HttpParseError::BodyTooLarge { length, max } => {
                write!(f, "body of {length} bytes exceeds the {max}-byte bound")
            }
        }
    }
}

impl std::error::Error for HttpParseError {}

/// Incrementally parses one request from the bytes read so far.
///
/// `Ok(None)` means the request is not complete yet — read more and
/// call again (a torn read mid-head or mid-body is not an error).
/// Errors are terminal for the connection: the head will never parse no
/// matter how many more bytes arrive, or the declared body exceeds
/// `max_body` (detected from the header alone, so the caller never
/// buffers an oversized body).
///
/// # Errors
///
/// See [`HttpParseError`]; each variant maps to a 400/413 response.
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<Option<HttpRequest>, HttpParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpParseError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpParseError::BadRequestLine)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpParseError::BadRequestLine)?;
    let (method, target) = parse_request_line(request_line)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // RFC 7230 obs-fold: a continuation line extends the
            // previous header's value.
            let (_, value) = headers.last_mut().ok_or(HttpParseError::BadHeader)?;
            value.push(' ');
            value.push_str(line.trim());
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpParseError::BadHeader);
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let mut length: u64 = 0;
    let mut seen_length = false;
    for (name, value) in &headers {
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: u64 = value.parse().map_err(|_| HttpParseError::BadContentLength)?;
            if seen_length && parsed != length {
                return Err(HttpParseError::BadContentLength);
            }
            length = parsed;
            seen_length = true;
        }
    }
    if length > max_body as u64 {
        return Err(HttpParseError::BodyTooLarge { length, max: max_body });
    }
    let body_start = head_end + 4;
    let body_end = body_start + length as usize;
    if buf.len() < body_end {
        return Ok(None);
    }
    Ok(Some(HttpRequest { method, target, headers, body: buf[body_start..body_end].to_vec() }))
}

/// Byte offset of the head's final line (start of `\r\n\r\n`), if the
/// terminator has arrived.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<(String, String), HttpParseError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpParseError::BadRequestLine);
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpParseError::BadRequestLine);
    }
    if !target.starts_with('/') || !version.starts_with("HTTP/") {
        return Err(HttpParseError::BadRequestLine);
    }
    Ok((method.to_string(), target.to_string()))
}

// ---------------------------------------------------------------------------
// Job API
// ---------------------------------------------------------------------------

/// Why a submission was rejected (each maps to one HTTP error status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec is malformed (`400`).
    Bad(String),
    /// Admission control shed the job at the front door (`503`).
    Shed {
        /// Suggested `Retry-After` seconds, derived from how far past
        /// its limit the pool is (clamped to `1..=30`), then jittered
        /// into the upper half of that window so shed clients don't
        /// retry in a thundering herd.
        retry_after_s: u64,
        /// The shed rendering (limit, in-flight count, queued bytes).
        message: String,
    },
    /// The write-ahead journal rejected the acceptance record (`500`);
    /// an unacknowledged job must not run without a durable accept.
    Journal(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Bad(m) => write!(f, "{m}"),
            SubmitError::Shed { message, .. } => write!(f, "{message}"),
            SubmitError::Journal(m) => write!(f, "journal: {m}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What a successful `POST /jobs` accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOk {
    /// A single spec object: one job id.
    One(u64),
    /// A spec array: one id per element, in array order.
    Many(Vec<u64>),
}

/// What [`JobApi::wait`] observed within its timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobWait {
    /// The finished record, rendered byte-identically to the manifest
    /// serving path.
    Done(String),
    /// Still running at the deadline: the status JSON to long-poll with.
    Running(String),
}

/// What a journal resume recovered for the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApiResume {
    /// Completed jobs replayed from the journal (answered without
    /// re-running).
    pub replayed: usize,
    /// Journaled-but-unanswered accepts re-submitted under their
    /// original ids.
    pub resubmitted: usize,
}

/// One fully-validated submission, ready to run.
struct ParsedJob {
    /// The canonical manifest line (journaled in the accept record).
    line: String,
    label: String,
    machine_name: String,
    mode: &'static str,
    machine: MachineConfig,
    program: Arc<Program>,
    kind: JobKind,
    profile: bool,
    /// Admission cost (the program's external-memory footprint).
    cost: usize,
    /// Plan-cache identity for coalescible (simulate, non-profiled)
    /// jobs.
    coalesce_key: Option<(u64, u64)>,
}

/// One tracked API job.
struct ApiJob {
    label: String,
    machine: String,
    mode: &'static str,
    /// `None` while running; errors are stored as their rendered
    /// message (exactly what the journal persists), replayed as
    /// [`JobError::Journaled`] so records stay byte-identical.
    outcome: Option<Result<JobOutput, String>>,
    /// Coalesced subscriber ids to settle when this (leader) job
    /// finishes.
    followers: Vec<u64>,
    /// This job's distributed trace context (a per-job child of the
    /// `X-CF-Trace` request context), echoed on every response about
    /// the job.
    trace: Option<TraceContext>,
    /// When the accept was acknowledged (attribution time base).
    accepted_at: Instant,
    /// Accept → scheduler-admission microseconds.
    admission_us: u64,
    /// The scheduler job id this API job ran under — the span-ring
    /// token its queue/run/retry durations are recorded against.
    sched_token: Option<u64>,
    /// The encoded latency [`Attribution`], computed once at settle
    /// time and served as the `X-CF-Attribution` response header.
    attribution: Option<String>,
}

impl ApiJob {
    fn new(label: String, machine: String, mode: &'static str) -> ApiJob {
        ApiJob {
            label,
            machine,
            mode,
            outcome: None,
            followers: Vec::new(),
            trace: None,
            accepted_at: Instant::now(),
            admission_us: 0,
            sched_token: None,
            attribution: None,
        }
    }
}

struct ApiState {
    next_id: u64,
    jobs: HashMap<u64, ApiJob>,
    journal: Option<Journal>,
    /// Live coalescing leaders by plan-cache identity.
    leaders: HashMap<(u64, u64), u64>,
}

impl ApiState {
    /// Journals a completion; a failed append loses durability for this
    /// record but must not take down the completion path (the in-memory
    /// outcome still answers the client).
    fn journal_entry(&mut self, entry: &JobEntry) {
        if let Some(journal) = self.journal.as_mut() {
            let _ = journal.append(entry);
        }
    }
}

/// The HTTP job subsystem: validates specs, journals acceptance before
/// acknowledging, coalesces identical concurrent submissions, runs jobs
/// on the shared [`Runtime`], and renders finished records (see the
/// module docs).
pub struct JobApi {
    runtime: Arc<Runtime>,
    state: Mutex<ApiState>,
    done: Condvar,
    max_body: usize,
}

impl std::fmt::Debug for JobApi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobApi").field("max_body", &self.max_body).finish_non_exhaustive()
    }
}

/// The run-identity header of an API journal. API jobs have no
/// manifest, so the identity is a fixed tag; `jobs: u64::MAX` keeps
/// every id inside the scan contract's bound.
fn api_header() -> RunHeader {
    RunHeader {
        version: JOURNAL_VERSION,
        manifest: fnv1a(b"cf-api"),
        machines: 0,
        fault_seed: None,
        fault_spec: 0,
        jobs: u64::MAX,
    }
}

impl JobApi {
    /// A journal-less API over `runtime` (accepted jobs are not durable
    /// across a crash; tests and ad-hoc serving).
    pub fn new(runtime: Arc<Runtime>, max_body: usize) -> Arc<JobApi> {
        Arc::new(JobApi {
            runtime,
            state: Mutex::new(ApiState {
                next_id: 0,
                jobs: HashMap::new(),
                journal: None,
                leaders: HashMap::new(),
            }),
            done: Condvar::new(),
            max_body,
        })
    }

    /// An API whose acceptance handshake is durable in the journal at
    /// `path`. With `resume`, an existing journal is replayed first:
    /// completed jobs answer from disk, journaled-but-unanswered accepts
    /// are re-submitted under their original ids.
    ///
    /// # Errors
    ///
    /// Journal create/resume failures (I/O, header mismatch).
    pub fn with_journal(
        runtime: Arc<Runtime>,
        path: &Path,
        resume: bool,
        compact_threshold: u64,
        max_body: usize,
    ) -> Result<(Arc<JobApi>, ApiResume), JournalError> {
        let header = api_header();
        let mut summary = ApiResume::default();
        let mut jobs: HashMap<u64, ApiJob> = HashMap::new();
        let mut next_id = 0u64;
        let mut pending: Vec<AcceptedEntry> = Vec::new();
        let journal = if resume && path.exists() {
            let (journal, recovery) = Journal::resume_opts(path, &header, compact_threshold)?;
            for entry in recovery.entries {
                next_id = next_id.max(entry.index + 1);
                let mut job = ApiJob::new(entry.label, entry.machine, entry.mode);
                job.outcome = Some(entry.outcome);
                jobs.insert(entry.index, job);
            }
            summary.replayed = jobs.len();
            for accept in recovery.accepted {
                next_id = next_id.max(accept.index + 1);
                if !jobs.contains_key(&accept.index) {
                    pending.push(accept);
                }
            }
            journal
        } else {
            Journal::create(path, &header)?
        };

        let api = Arc::new(JobApi {
            runtime,
            state: Mutex::new(ApiState {
                next_id,
                jobs,
                journal: Some(journal),
                leaders: HashMap::new(),
            }),
            done: Condvar::new(),
            max_body,
        });

        // Re-run every journaled-but-unanswered accept under its
        // original id: the client was acknowledged, so the record must
        // eventually exist. The accept is already durable — no re-journal.
        for accept in pending {
            summary.resubmitted += 1;
            match parse_spec_line(&accept.spec) {
                Ok(job) => {
                    {
                        let mut st = sync::lock(&api.state);
                        st.jobs.insert(
                            accept.index,
                            ApiJob::new(job.label.clone(), job.machine_name.clone(), job.mode),
                        );
                    }
                    api.run_job(accept.index, job, None);
                }
                Err(message) => {
                    // The journaled spec no longer parses (foreign edit,
                    // version skew): settle the id with the error so the
                    // client's poll terminates.
                    let mut st = sync::lock(&api.state);
                    st.jobs.insert(
                        accept.index,
                        ApiJob::new("unparsed".to_string(), "unknown".to_string(), "simulate"),
                    );
                    drop(st);
                    api.complete(accept.index, Err(message), None);
                }
            }
        }
        Ok((api, summary))
    }

    /// The configured request-body bound.
    pub fn max_body(&self) -> usize {
        self.max_body
    }

    /// The runtime the API submits to (its stats carry the `cf_api_*`
    /// counters).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Accounts bytes of a finished record streamed to a client
    /// (`cf_api_streamed_bytes_total`).
    pub fn note_streamed(&self, bytes: u64) {
        self.runtime.stats().api_streamed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Submits a `POST /jobs` body: a single spec object or an array of
    /// spec objects (an array is validated as a whole — one malformed
    /// element rejects the request before anything is journaled — and
    /// its compatible members are submitted as one scheduler batch).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; each variant maps to one HTTP status.
    pub fn submit_body(self: &Arc<Self>, body: &str) -> Result<SubmitOk, SubmitError> {
        self.submit_body_traced(body, None)
    }

    /// [`submit_body`](JobApi::submit_body) under a distributed trace:
    /// every accepted job gets its own child span of `trace` (so a
    /// multi-job array fans out into per-job spans of one request
    /// context), attached to the runtime's tracer for span joining and
    /// echoed back as the job's `X-CF-Trace`.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; each variant maps to one HTTP status.
    pub fn submit_body_traced(
        self: &Arc<Self>,
        body: &str,
        trace: Option<TraceContext>,
    ) -> Result<SubmitOk, SubmitError> {
        let value: serde_json::Value = serde_json::from_str(body)
            .map_err(|e| SubmitError::Bad(format!("invalid JSON: {e}")))?;
        if let Some(items) = value.as_array() {
            if items.is_empty() {
                return Err(SubmitError::Bad("empty job array".to_string()));
            }
            let mut parsed = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let job = parse_spec_value(item)
                    .map_err(|e| SubmitError::Bad(format!("jobs[{i}]: {e}")))?;
                parsed.push(job);
            }
            self.submit_parsed_batch(parsed, trace).map(SubmitOk::Many)
        } else {
            let job = parse_spec_value(&value).map_err(SubmitError::Bad)?;
            self.submit_parsed_batch(vec![job], trace).map(|ids| SubmitOk::One(ids[0]))
        }
    }

    /// Accepts a batch of validated jobs: front-door admission on the
    /// total cost, then per job either coalesce onto a live leader or
    /// journal an accept and run. Compatible fresh jobs (simulate,
    /// non-profiled, same machine) go through
    /// [`batch::group_compatible`](crate::batch::group_compatible) into
    /// one scheduler batch submission.
    fn submit_parsed_batch(
        self: &Arc<Self>,
        parsed: Vec<ParsedJob>,
        trace: Option<TraceContext>,
    ) -> Result<Vec<u64>, SubmitError> {
        // Shed before journaling: the whole batch is admitted or none of
        // it is (a partial accept would ack ids the pool cannot take).
        let total_cost: usize = parsed.iter().map(|j| j.cost).sum();
        if let Err(e) = self.runtime.check_admission(total_cost) {
            self.runtime.stats().api_shed.fetch_add(parsed.len() as u64, Ordering::Relaxed);
            return Err(shed_error(&self.runtime, e));
        }

        let mut ids = Vec::with_capacity(parsed.len());
        // (id, job, trace) triples that did not coalesce and must
        // actually run.
        let mut fresh: Vec<(u64, ParsedJob, Option<TraceContext>)> = Vec::new();
        {
            let mut st = sync::lock(&self.state);
            // Durability before acknowledgement: every accept is on disk
            // (fsync'd per record) before any id leaves this call. An
            // append failure mid-batch rejects the whole request — the
            // already-journaled accepts were never acknowledged and hold
            // no in-memory job; a later resume runs them as unanswered.
            let base = st.next_id;
            for (offset, job) in parsed.iter().enumerate() {
                let accept = AcceptedEntry { index: base + offset as u64, spec: job.line.clone() };
                if let Some(journal) = st.journal.as_mut() {
                    journal
                        .append_accept(&accept)
                        .map_err(|e| SubmitError::Journal(e.to_string()))?;
                }
            }
            st.next_id = base + parsed.len() as u64;
            for (offset, job) in parsed.into_iter().enumerate() {
                let id = base + offset as u64;
                let live_leader = job.coalesce_key.and_then(|key| {
                    let leader = *st.leaders.get(&key)?;
                    st.jobs.get(&leader).filter(|j| j.outcome.is_none())?;
                    Some(leader)
                });
                let job_trace = trace.map(|t| t.child());
                let mut tracked =
                    ApiJob::new(job.label.clone(), job.machine_name.clone(), job.mode);
                tracked.trace = job_trace;
                st.jobs.insert(id, tracked);
                let stats = self.runtime.stats();
                stats.api_accepted.fetch_add(1, Ordering::Relaxed);
                match live_leader {
                    Some(leader) => {
                        if let Some(l) = st.jobs.get_mut(&leader) {
                            l.followers.push(id);
                        }
                        stats.api_coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if let Some(key) = job.coalesce_key {
                            st.leaders.insert(key, id);
                        }
                        fresh.push((id, job, job_trace));
                    }
                }
                ids.push(id);
            }
        }

        // Group compatible fresh jobs into one scheduler batch; the rest
        // submit individually (exec jobs, profiled jobs, lone machines).
        let keys: Vec<(u64, bool)> = fresh
            .iter()
            .map(|(_, j, _)| (j.machine.fingerprint(), j.kind == JobKind::Simulate && !j.profile))
            .collect();
        for group in crate::batch::group_compatible(&keys) {
            if group.len() > 1 {
                let specs: Vec<(MachineConfig, Arc<Program>)> = group
                    .iter()
                    .map(|&i| (fresh[i].1.machine.clone(), Arc::clone(&fresh[i].1.program)))
                    .collect();
                let handles = self.runtime.simulate_batch(specs);
                for (&i, handle) in group.iter().zip(handles) {
                    let id = fresh[i].0;
                    // The batch path has no per-job JobOptions seam, so
                    // the trace attaches directly by scheduler token.
                    if let Some(ctx) = fresh[i].2 {
                        self.runtime.tracer().attach(handle.id(), ctx);
                    }
                    self.note_scheduled(id, handle.id());
                    self.spawn_completion(id, move || {
                        handle.join().map(|sim| (sim_output(&sim.report), Some(sim.cache_hit)))
                    });
                }
            } else {
                for &i in &group {
                    let id = fresh[i].0;
                    let job = clone_job(&fresh[i].1);
                    self.run_job(id, job, fresh[i].2);
                }
            }
        }
        Ok(ids)
    }

    /// Records that API job `id` was admitted to the scheduler as
    /// `token`: the span-ring key its stage durations are mined under,
    /// and the end of the accept → admission window.
    fn note_scheduled(&self, id: u64, token: u64) {
        let mut st = sync::lock(&self.state);
        if let Some(job) = st.jobs.get_mut(&id) {
            job.sched_token = Some(token);
            job.admission_us = duration_us(job.accepted_at.elapsed());
        }
    }

    /// Submits one job to the runtime and spawns its completion thread.
    /// Admission was already checked at the front door; a capacity race
    /// between that check and this submit is absorbed with a few
    /// retries, after which the shed becomes the job's terminal outcome
    /// (the accept is durable, so the id must settle either way).
    fn run_job(self: &Arc<Self>, id: u64, job: ParsedJob, trace: Option<TraceContext>) {
        let mut attempt = 0u32;
        let opts = JobOptions { trace, ..Default::default() };
        loop {
            let admitted = match job.kind {
                JobKind::Simulate if job.profile => {
                    let (h, admitted) = self.runtime.submit_simulate_profiled_checked(
                        opts,
                        job.machine.clone(),
                        Arc::clone(&job.program),
                        PROFILE_TOP_SIGNATURES,
                    );
                    if admitted.is_ok() {
                        self.note_scheduled(id, h.id());
                        self.spawn_completion(id, move || {
                            h.join().map(|p| (sim_output(&p.report), None))
                        });
                        return;
                    }
                    admitted
                }
                JobKind::Simulate => {
                    let (h, admitted) = self.runtime.submit_simulate_checked(
                        opts,
                        job.machine.clone(),
                        Arc::clone(&job.program),
                    );
                    if admitted.is_ok() {
                        self.note_scheduled(id, h.id());
                        self.spawn_completion(id, move || {
                            h.join().map(|sim| (sim_output(&sim.report), Some(sim.cache_hit)))
                        });
                        return;
                    }
                    admitted
                }
                JobKind::Exec { seed } => {
                    let (h, admitted) = self.runtime.submit_exec_checked(
                        opts,
                        job.machine.clone(),
                        Arc::clone(&job.program),
                        seed,
                    );
                    if admitted.is_ok() {
                        self.note_scheduled(id, h.id());
                        self.spawn_completion(id, move || {
                            h.join().map(|exec| (exec_output(&exec.memory), None))
                        });
                        return;
                    }
                    admitted
                }
            };
            match admitted {
                Ok(()) => return,
                Err(JobError::Shed { .. }) if attempt < SUBMIT_RACE_RETRIES => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    self.complete(id, Err(e.to_string()), None);
                    return;
                }
            }
        }
    }

    /// Joins `join` on a background thread and settles job `id` (and its
    /// coalesced followers) with the outcome. The closure's second slot
    /// reports whether the result came from the plan cache (when the
    /// path knows), feeding the attribution's `cached` flag.
    fn spawn_completion<F>(self: &Arc<Self>, id: u64, join: F)
    where
        F: FnOnce() -> Result<(JobOutput, Option<bool>), JobError> + Send + 'static,
    {
        let api = Arc::clone(self);
        let spawned = std::thread::Builder::new().name(format!("cf-api-job-{id}")).spawn(
            move || match join() {
                Ok((output, cached)) => api.complete(id, Ok(output), cached),
                Err(e) => api.complete(id, Err(e.to_string()), None),
            },
        );
        if spawned.is_err() {
            self.complete(id, Err("completion thread spawn failed".to_string()), None);
        }
    }

    /// Settles job `id` and every coalesced follower: compute the
    /// latency attribution from the job's own spans, journal the
    /// completion records, store the outcome, wake long-pollers.
    fn complete(&self, id: u64, outcome: Result<JobOutput, String>, cached: Option<bool>) {
        let tracer = Arc::clone(self.runtime.tracer());
        let mut st = sync::lock(&self.state);
        let leader_token = st.jobs.get(&id).and_then(|job| job.sched_token);
        let Some(entry) = ({
            let job = st.jobs.get_mut(&id);
            job.map(|job| {
                job.outcome = Some(outcome.clone());
                if job.trace.is_some() {
                    job.attribution = Some(render_attribution(
                        &tracer,
                        job.accepted_at,
                        job.admission_us,
                        job.sched_token,
                        cached,
                    ));
                }
                JobEntry {
                    index: id,
                    label: job.label.clone(),
                    machine: job.machine.clone(),
                    mode: job.mode,
                    outcome: outcome.clone(),
                }
            })
        }) else {
            return;
        };
        let followers = match st.jobs.get_mut(&id) {
            Some(job) => std::mem::take(&mut job.followers),
            None => Vec::new(),
        };
        st.leaders.retain(|_, leader| *leader != id);
        st.journal_entry(&entry);
        for fid in followers {
            let follower_entry = st.jobs.get_mut(&fid).map(|f| {
                f.outcome = Some(outcome.clone());
                if f.trace.is_some() {
                    // Coalesced followers rode the leader's computation:
                    // their stage durations are the leader's spans, their
                    // wait is their own accept window.
                    f.attribution = Some(render_attribution(
                        &tracer,
                        f.accepted_at,
                        f.admission_us,
                        leader_token,
                        cached,
                    ));
                }
                JobEntry {
                    index: fid,
                    label: f.label.clone(),
                    machine: f.machine.clone(),
                    mode: f.mode,
                    outcome: outcome.clone(),
                }
            });
            if let Some(fe) = follower_entry {
                st.journal_entry(&fe);
            }
        }
        drop(st);
        self.done.notify_all();
    }

    /// The distributed trace context job `id` runs under, if any.
    pub fn trace_of(&self, id: u64) -> Option<TraceContext> {
        let st = sync::lock(&self.state);
        st.jobs.get(&id).and_then(|job| job.trace)
    }

    /// The encoded latency attribution of a settled job (the
    /// `X-CF-Attribution` header value); `None` while running or when
    /// the job was not traced.
    pub fn attribution_of(&self, id: u64) -> Option<String> {
        let st = sync::lock(&self.state);
        st.jobs.get(&id).and_then(|job| job.attribution.clone())
    }

    /// Long-polls job `id` up to `timeout`: the finished record when it
    /// settles in time, the status JSON otherwise, `None` for an unknown
    /// id.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobWait> {
        let deadline = Instant::now() + timeout;
        let mut st = sync::lock(&self.state);
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(job) => match &job.outcome {
                    Some(_) => return Some(JobWait::Done(render_done(id, job))),
                    None => {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            return Some(JobWait::Running(render_status(id, job)));
                        }
                        st = sync::wait_timeout(&self.done, st, remaining);
                    }
                },
            }
        }
    }

    /// The non-blocking status JSON for job `id` (`None` for unknown).
    pub fn status_json(&self, id: u64) -> Option<String> {
        let st = sync::lock(&self.state);
        st.jobs.get(&id).map(|job| render_status(id, job))
    }

    /// Accepted API jobs that have not settled yet (the drain path
    /// waits for this to reach zero before exiting).
    pub fn pending(&self) -> usize {
        let st = sync::lock(&self.state);
        st.jobs.values().filter(|job| job.outcome.is_none()).count()
    }

    /// Forces the API journal to durable storage (a no-op without one).
    /// Appends fsync record-by-record already; drain calls this as a
    /// final barrier before the process exits.
    pub fn sync_journal(&self) {
        let mut st = sync::lock(&self.state);
        if let Some(journal) = st.journal.as_mut() {
            let _ = journal.sync();
        }
    }
}

/// Renders a settled job byte-identically to the manifest serving path:
/// the same [`JobRecord`] through the same
/// [`render_record_json`]; journaled errors replay as
/// [`JobError::Journaled`], whose rendering is the original message
/// verbatim.
fn render_done(id: u64, job: &ApiJob) -> String {
    let outcome = match &job.outcome {
        Some(Ok(output)) => Ok(output.clone()),
        Some(Err(message)) => Err(JobError::Journaled(message.clone())),
        None => Err(JobError::Shutdown),
    };
    render_record_json(&JobRecord {
        index: id as usize,
        label: job.label.clone(),
        machine: job.machine.clone(),
        mode: job.mode,
        outcome,
    })
}

fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Computes a settled job's latency [`Attribution`] from its own spans:
/// `total_us` is the measured accept → settle wall time; `queue_us`,
/// `run_us` and `retry_us` are mined from the span ring by scheduler
/// token; `other_us` is the unattributed remainder, so the execution
/// components sum to `total_us` exactly. With tracing disabled the
/// mined stages read 0 and `other_us` absorbs the whole window — the
/// sum contract still holds.
fn render_attribution(
    tracer: &Tracer,
    accepted_at: Instant,
    admission_us: u64,
    sched_token: Option<u64>,
    cached: Option<bool>,
) -> String {
    let mut total_us = duration_us(accepted_at.elapsed());
    let (mut queue_us, mut run_us, mut retry_us) = (0u64, 0u64, 0u64);
    if let Some(token) = sched_token {
        for e in tracer.recent(usize::MAX) {
            if e.token != token {
                continue;
            }
            let us = e.duration.map_or(0, duration_us);
            match e.kind {
                SpanKind::JobStart => queue_us = us,
                SpanKind::JobSettle => run_us = us,
                SpanKind::JobRetry => retry_us += us,
                _ => {}
            }
        }
    }
    let parts =
        admission_us.saturating_add(queue_us).saturating_add(run_us).saturating_add(retry_us);
    total_us = total_us.max(parts);
    let mut a = Attribution::new();
    a.push(TOTAL_KEY, total_us);
    a.push("admission_us", admission_us);
    a.push("queue_us", queue_us);
    a.push("run_us", run_us);
    a.push("retry_us", retry_us);
    a.push("other_us", total_us - parts);
    if let Some(cached) = cached {
        a.push("cached", u64::from(cached));
    }
    a.encode()
}

fn render_status(id: u64, job: &ApiJob) -> String {
    let state = match &job.outcome {
        Some(Ok(_)) => "\"state\":\"done\",\"ok\":true",
        Some(Err(_)) => "\"state\":\"done\",\"ok\":false",
        None => "\"state\":\"running\"",
    };
    format!(
        "{{\"id\":{id},{state},\"label\":{},\"machine\":{},\"mode\":\"{}\"}}",
        json_str(&job.label),
        json_str(&job.machine),
        job.mode,
    )
}

/// Maps an admission failure to a 503 with a `Retry-After` derived from
/// headroom: how many multiples of the limit are outstanding, clamped
/// to `1..=30` seconds and then jittered (see [`jittered_retry_after`])
/// so a crowd of shed clients — or a router fanning retries across a
/// fleet — does not come back in lockstep.
fn shed_error(runtime: &Runtime, e: JobError) -> SubmitError {
    let load = runtime.load_policy();
    let nominal = match &e {
        JobError::Shed { limit, in_flight, queued_bytes } => {
            let ratio = if *limit == "queued-bytes" {
                *queued_bytes / load.max_queued_bytes.max(1)
            } else {
                *in_flight / load.max_in_flight.max(1)
            };
            (ratio as u64).clamp(1, 30)
        }
        _ => 1,
    };
    SubmitError::Shed {
        retry_after_s: jittered_retry_after(nominal, shed_salt()),
        message: e.to_string(),
    }
}

/// Jitters a nominal `Retry-After` into `[⌈nominal/2⌉, nominal]`: never
/// later than the headroom-derived suggestion (so the contract that
/// values stay within `1..=30` holds), never more than halved (so an
/// overloaded pool still gets breathing room), and spread across the
/// window by an FNV hash of `salt`.
fn jittered_retry_after(nominal: u64, salt: u64) -> u64 {
    let nominal = nominal.max(1);
    let lo = nominal.div_ceil(2);
    lo + fnv1a(&salt.to_le_bytes()) % (nominal - lo + 1)
}

/// A per-process jitter salt: a monotone counter XORed with the clock's
/// subsecond nanoseconds, so concurrent shed responses — and separate
/// processes shed at the same instant — land on different values.
fn shed_salt() -> u64 {
    static SHED_SALT: AtomicU64 = AtomicU64::new(0);
    let n = SHED_SALT.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    n ^ nanos
}

/// The fleet-routing fingerprint of a `POST /jobs` body: the plan-cache
/// identity `(machine fingerprint, program hash)` folded to one `u64`
/// (exactly [`CacheKey::digest`](crate::cache::CacheKey::digest)), so a
/// router shards jobs onto the backend whose plan cache is already warm
/// for that machine × program pair. Array submissions route by their
/// first element (all-or-nothing batches stay on one backend);
/// non-coalescible jobs (exec mode, profiled) fold the machine
/// fingerprint with the canonical line's content hash; anything that
/// does not parse falls back to a content hash of the raw body, so
/// routing is total — invalid specs still map onto a backend, which
/// answers with the authoritative 400.
pub fn routing_fingerprint(body: &str) -> u64 {
    let fallback = || fnv1a(body.as_bytes());
    let Ok(value) = serde_json::from_str(body) else {
        return fallback();
    };
    let first = match value.as_array() {
        Some([first, ..]) => first.clone(),
        Some([]) => return fallback(),
        None => value,
    };
    let Ok(line) = canonical_line(&first) else {
        return fallback();
    };
    let Ok(job) = parse_spec_line(&line) else {
        return fallback();
    };
    match job.coalesce_key {
        Some((machine, program)) => machine ^ program.rotate_left(32),
        None => job.machine.fingerprint() ^ fnv1a(line.as_bytes()).rotate_left(32),
    }
}

/// Clones a parsed job (the program is `Arc`-shared, so this is cheap);
/// batch grouping refers to jobs by index, so they cannot be moved out.
fn clone_job(job: &ParsedJob) -> ParsedJob {
    ParsedJob {
        line: job.line.clone(),
        label: job.label.clone(),
        machine_name: job.machine_name.clone(),
        mode: job.mode,
        machine: job.machine.clone(),
        program: Arc::clone(&job.program),
        kind: job.kind,
        profile: job.profile,
        cost: job.cost,
        coalesce_key: job.coalesce_key,
    }
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

/// The canonical key order of a rendered spec line: deterministic
/// regardless of JSON key order, so identical specs produce identical
/// journal records and coalesce keys.
const SPEC_KEYS: [&str; 10] = [
    "workload", "program", "machine", "mode", "seed", "batch", "order", "size", "label", "profile",
];

/// Renders a JSON spec object as its canonical manifest line.
fn canonical_line(value: &serde_json::Value) -> Result<String, String> {
    let Some(object) = value.as_object() else {
        return Err("job spec must be a JSON object".to_string());
    };
    let mut fields: HashMap<&str, String> = HashMap::new();
    for (key, val) in object.iter() {
        let key: &str = key;
        if key == "trace_json" {
            return Err("trace_json is not supported over the job API".to_string());
        }
        if key == "repeat" {
            match val.as_u64() {
                Some(1) => continue,
                _ => {
                    return Err(
                        "repeat must be 1 over the job API (submit an array instead)".to_string()
                    )
                }
            }
        }
        if !SPEC_KEYS.contains(&key) {
            return Err(format!("unknown spec key `{key}`"));
        }
        let rendered = if let Some(s) = val.as_str() {
            s.to_string()
        } else if let Some(n) = val.as_u64() {
            n.to_string()
        } else if let Some(b) = val.as_bool() {
            b.to_string()
        } else {
            return Err(format!("`{key}` must be a string, unsigned integer or boolean"));
        };
        if rendered.is_empty() || rendered.chars().any(|c| c.is_whitespace() || c == '#') {
            return Err(format!("bad value for `{key}`"));
        }
        fields.insert(key, rendered);
    }
    let line = SPEC_KEYS
        .iter()
        .filter_map(|k| fields.get(k).map(|v| format!("{k}={v}")))
        .collect::<Vec<_>>()
        .join(" ");
    if line.is_empty() {
        return Err("empty job spec".to_string());
    }
    Ok(line)
}

/// Parses one JSON spec object into a validated, fully-resolved job.
fn parse_spec_value(value: &serde_json::Value) -> Result<ParsedJob, String> {
    parse_spec_line(&canonical_line(value)?)
}

/// Parses a canonical manifest line into a validated, fully-resolved
/// job (also the resume path for journaled accepts).
fn parse_spec_line(line: &str) -> Result<ParsedJob, String> {
    let specs = manifest::parse_manifest(line).map_err(|e| e.to_string())?;
    let [spec] = specs.as_slice() else {
        return Err("spec must describe exactly one job".to_string());
    };
    let program = Arc::new(manifest::resolve_program(&spec.source).map_err(|e| e.to_string())?);
    let machine = manifest::machine_by_name(&spec.machine)
        .ok_or_else(|| format!("unknown machine `{}`", spec.machine))?;
    let mode = match spec.kind {
        JobKind::Simulate => "simulate",
        JobKind::Exec { .. } => "exec",
    };
    let coalesce_key = (spec.kind == JobKind::Simulate && !spec.profile).then(|| {
        let key = CacheKey::new(&machine, &program);
        (key.machine, key.program)
    });
    Ok(ParsedJob {
        line: line.to_string(),
        label: spec.label.clone(),
        machine_name: spec.machine.clone(),
        mode,
        cost: program.extern_elems() as usize * std::mem::size_of::<f32>(),
        machine,
        program,
        kind: spec.kind,
        profile: spec.profile,
        coalesce_key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{LoadPolicy, RuntimeConfig};
    use std::sync::atomic::Ordering;
    use std::sync::mpsc;

    // -- HTTP parser --------------------------------------------------------

    #[test]
    fn parses_a_simple_get() {
        let req =
            parse_request(b"GET /healthz?x=1 HTTP/1.1\r\nHost: a\r\n\r\n", 1024).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.query(), Some("x=1"));
        assert_eq!(req.header("host"), Some("a"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn torn_reads_ask_for_more() {
        let full = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..full.len() {
            assert_eq!(parse_request(&full[..cut], 1024).unwrap(), None, "cut={cut}");
        }
        let req = parse_request(full, 1024).unwrap().unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn folded_headers_join_values() {
        let req =
            parse_request(b"GET / HTTP/1.1\r\nX-Long: first\r\n  second\r\n\tthird\r\n\r\n", 1024)
                .unwrap()
                .unwrap();
        assert_eq!(req.header("x-long"), Some("first second third"));
    }

    #[test]
    fn malformed_heads_are_typed_errors() {
        assert_eq!(parse_request(b"garbage\r\n\r\n", 1024), Err(HttpParseError::BadRequestLine));
        assert_eq!(
            parse_request(b"get / HTTP/1.1\r\n\r\n", 1024),
            Err(HttpParseError::BadRequestLine)
        );
        assert_eq!(
            parse_request(b"GET nopath HTTP/1.1\r\n\r\n", 1024),
            Err(HttpParseError::BadRequestLine)
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 1024),
            Err(HttpParseError::BadHeader)
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", 1024),
            Err(HttpParseError::BadContentLength)
        );
    }

    #[test]
    fn oversized_bodies_fail_before_arriving() {
        // The body has not arrived at all — the header alone rejects.
        let head = b"POST /jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        assert_eq!(
            parse_request(head, 1024),
            Err(HttpParseError::BodyTooLarge { length: 4096, max: 1024 })
        );
    }

    #[test]
    fn zero_length_bodies_are_fine() {
        let req = parse_request(b"POST /jobs HTTP/1.1\r\nContent-Length: 0\r\n\r\n", 1024)
            .unwrap()
            .unwrap();
        assert!(req.body.is_empty());
    }

    // -- canonical lines ----------------------------------------------------

    #[test]
    fn canonical_line_is_key_order_independent() {
        let a =
            serde_json::from_str(r#"{"machine":"tiny","workload":"matmul","order":64}"#).unwrap();
        let b =
            serde_json::from_str(r#"{"order":64,"workload":"matmul","machine":"tiny"}"#).unwrap();
        assert_eq!(canonical_line(&a).unwrap(), canonical_line(&b).unwrap());
        assert_eq!(canonical_line(&a).unwrap(), "workload=matmul machine=tiny order=64");
    }

    #[test]
    fn canonical_line_rejects_bad_specs() {
        for (spec, needle) in [
            (r#"{"workload":"matmul","repeat":3}"#, "repeat"),
            (r#"{"workload":"matmul","trace_json":"x.json"}"#, "trace_json"),
            (r#"{"workload":"mat mul"}"#, "bad value"),
            (r#"{"workload":"matmul","color":"red"}"#, "unknown spec key"),
            (r#"[1,2]"#, "object"),
            (r#"{}"#, "empty"),
        ] {
            let v = serde_json::from_str(spec).unwrap();
            let err = canonical_line(&v).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    // -- shed jitter and routing --------------------------------------------

    #[test]
    fn jittered_retry_after_stays_in_the_upper_half_window() {
        for nominal in 1..=30u64 {
            let lo = nominal.div_ceil(2);
            for salt in 0..64u64 {
                let v = jittered_retry_after(nominal, salt);
                assert!((lo..=nominal).contains(&v), "nominal {nominal} salt {salt} -> {v}");
            }
        }
        // Degenerate nominals still answer at least one second.
        assert_eq!(jittered_retry_after(0, 7), 1);
    }

    #[test]
    fn jittered_retry_after_actually_spreads() {
        let values: std::collections::HashSet<u64> =
            (0..256u64).map(|salt| jittered_retry_after(30, salt)).collect();
        // 30 seconds gives a [15, 30] window; the hash should hit most
        // of it rather than collapsing to one value.
        assert!(values.len() >= 8, "only {} distinct values", values.len());
    }

    #[test]
    fn routing_fingerprint_matches_plan_cache_identity() {
        let a = routing_fingerprint(r#"{"workload":"matmul","order":32,"machine":"tiny"}"#);
        let b = routing_fingerprint(r#"{"order":32,"machine":"tiny","workload":"matmul"}"#);
        assert_eq!(a, b, "key order must not change the route");
        let c = routing_fingerprint(r#"{"workload":"matmul","order":64,"machine":"tiny"}"#);
        assert_ne!(a, c, "different programs must be able to shard apart");
        // Labels ride along without moving the job off its warm cache.
        let d =
            routing_fingerprint(r#"{"workload":"matmul","order":32,"machine":"tiny","label":"x"}"#);
        assert_eq!(a, d);
    }

    #[test]
    fn routing_fingerprint_is_total() {
        // Arrays route by first element, matching the object route.
        let single = routing_fingerprint(r#"{"workload":"matmul","order":32,"machine":"tiny"}"#);
        let batch = routing_fingerprint(
            r#"[{"workload":"matmul","order":32,"machine":"tiny"},{"workload":"mlp3","batch":1,"machine":"tiny"}]"#,
        );
        assert_eq!(single, batch);
        // Garbage still routes (content hash), deterministically.
        assert_eq!(routing_fingerprint("not json"), routing_fingerprint("not json"));
        assert_eq!(routing_fingerprint("[]"), routing_fingerprint("[]"));
        // Non-coalescible (exec) jobs still get a machine-dependent route.
        let exec = routing_fingerprint(
            r#"{"workload":"kmeans","size":"small","mode":"exec","seed":42,"machine":"tiny"}"#,
        );
        let exec2 = routing_fingerprint(
            r#"{"seed":42,"size":"small","machine":"tiny","mode":"exec","workload":"kmeans"}"#,
        );
        assert_eq!(exec, exec2);
    }

    // -- JobApi -------------------------------------------------------------

    fn test_runtime(load: LoadPolicy) -> Arc<Runtime> {
        Arc::new(Runtime::new(RuntimeConfig { workers: 1, load, ..Default::default() }))
    }

    #[test]
    fn submit_wait_roundtrip_renders_a_record() {
        let api = JobApi::new(test_runtime(LoadPolicy::default()), DEFAULT_MAX_BODY_BYTES);
        let ok = api
            .submit_body(r#"{"workload":"matmul","order":32,"machine":"tiny","label":"t"}"#)
            .unwrap();
        let SubmitOk::One(id) = ok else { panic!("{ok:?}") };
        let JobWait::Done(record) = api.wait(id, Duration::from_secs(30)).unwrap() else {
            panic!("timed out")
        };
        assert!(record.starts_with(&format!("{{\"job\":{id},\"label\":\"t\"")), "{record}");
        assert!(record.contains("\"ok\":true"), "{record}");
        assert!(record.contains("\"makespan_s\""), "{record}");
        assert!(api.status_json(id).unwrap().contains("\"state\":\"done\""));
        assert!(api.wait(99, Duration::ZERO).is_none());
    }

    #[test]
    fn traced_submit_attaches_contexts_and_attributes_latency() {
        let runtime = Arc::new(Runtime::new(RuntimeConfig {
            workers: 1,
            tracer: Some(Arc::new(Tracer::new(64))),
            ..Default::default()
        }));
        let api = JobApi::new(Arc::clone(&runtime), DEFAULT_MAX_BODY_BYTES);
        let root = TraceContext::mint();
        let ok = api
            .submit_body_traced(r#"{"workload":"matmul","order":32,"machine":"tiny"}"#, Some(root))
            .unwrap();
        let SubmitOk::One(id) = ok else { panic!("{ok:?}") };

        // The job got its own child span of the request context.
        let ctx = api.trace_of(id).unwrap();
        assert_eq!(ctx.trace_id, root.trace_id);
        assert_eq!(ctx.parent, Some(root.span_id));

        let JobWait::Done(_) = api.wait(id, Duration::from_secs(30)).unwrap() else {
            panic!("timed out")
        };
        let attribution = api.attribution_of(id).unwrap();
        let a = Attribution::parse(&attribution).unwrap();
        assert_eq!(a.execution_sum_us(), a.total_us(), "{attribution}");
        assert!(a.get("queue_us").is_some(), "{attribution}");
        assert_eq!(a.get("cached"), Some(0), "cold run: {attribution}");

        // The scheduler attached the per-job context, so a trace-filtered
        // /trace render joins the job's events. The settle event lands
        // moments after the join wakes, so poll briefly.
        let mut json = String::new();
        for _ in 0..500 {
            json = runtime.tracer().render_json_filtered(100, None, Some(root.trace_id));
            if json.contains("\"kind\":\"job-settle\"") {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(json.contains("\"kind\":\"job-settle\""), "{json}");

        // Untraced submissions carry no context and no attribution.
        let SubmitOk::One(plain) =
            api.submit_body(r#"{"workload":"matmul","order":48,"machine":"tiny"}"#).unwrap()
        else {
            panic!()
        };
        api.wait(plain, Duration::from_secs(30)).unwrap();
        assert!(api.trace_of(plain).is_none());
        assert!(api.attribution_of(plain).is_none());
    }

    #[test]
    fn concurrent_identical_submits_coalesce_to_one_computation() {
        let runtime = test_runtime(LoadPolicy::default());
        // Block the single worker so the leader cannot finish before the
        // follower arrives.
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let blocker = runtime.submit_task(move || {
            let _ = hold_rx.recv();
        });
        let api = JobApi::new(Arc::clone(&runtime), DEFAULT_MAX_BODY_BYTES);
        let spec = r#"{"workload":"matmul","order":32,"machine":"tiny"}"#;
        let SubmitOk::One(a) = api.submit_body(spec).unwrap() else { panic!() };
        let SubmitOk::One(b) = api.submit_body(spec).unwrap() else { panic!() };
        assert_ne!(a, b);
        let stats = runtime.stats();
        assert_eq!(stats.api_accepted.load(Ordering::Relaxed), 2);
        assert_eq!(stats.api_coalesced.load(Ordering::Relaxed), 1);
        hold_tx.send(()).unwrap();
        blocker.join().unwrap();
        let JobWait::Done(ra) = api.wait(a, Duration::from_secs(30)).unwrap() else { panic!() };
        let JobWait::Done(rb) = api.wait(b, Duration::from_secs(30)).unwrap() else { panic!() };
        // Same computation, own records: only the id differs.
        assert!(ra.contains("\"ok\":true"), "{ra}");
        assert_eq!(
            ra.replace(&format!("\"job\":{a}"), "\"job\":X"),
            rb.replace(&format!("\"job\":{b}"), "\"job\":X"),
        );
        // Exactly one cold simulation ran for the pair.
        assert_eq!(stats.api_accepted.load(Ordering::Relaxed), 2);
        assert_eq!(stats.api_coalesced.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn overload_sheds_with_retry_after_before_journaling() {
        let runtime = test_runtime(LoadPolicy::max_in_flight(1));
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let blocker = runtime.submit_task(move || {
            let _ = hold_rx.recv();
        });
        let api = JobApi::new(Arc::clone(&runtime), DEFAULT_MAX_BODY_BYTES);
        let err =
            api.submit_body(r#"{"workload":"matmul","order":32,"machine":"tiny"}"#).unwrap_err();
        let SubmitError::Shed { retry_after_s, message } = err else { panic!("{err:?}") };
        assert!(retry_after_s >= 1);
        assert!(message.contains("shed"), "{message}");
        assert_eq!(runtime.stats().api_shed.load(Ordering::Relaxed), 1);
        assert_eq!(runtime.stats().api_accepted.load(Ordering::Relaxed), 0);
        hold_tx.send(()).unwrap();
        blocker.join().unwrap();
    }

    #[test]
    fn array_bodies_batch_compatible_jobs() {
        let api = JobApi::new(test_runtime(LoadPolicy::default()), DEFAULT_MAX_BODY_BYTES);
        let body = r#"[
            {"workload":"matmul","order":32,"machine":"tiny","label":"a"},
            {"workload":"matmul","order":48,"machine":"tiny","label":"b"},
            {"workload":"matmul","order":32,"machine":"tiny","mode":"exec","seed":7,"label":"c"}
        ]"#;
        let SubmitOk::Many(ids) = api.submit_body(body).unwrap() else { panic!() };
        assert_eq!(ids.len(), 3);
        for (&id, label) in ids.iter().zip(["a", "b", "c"]) {
            let JobWait::Done(record) = api.wait(id, Duration::from_secs(30)).unwrap() else {
                panic!("{label} timed out")
            };
            assert!(record.contains(&format!("\"label\":\"{label}\"")), "{record}");
            assert!(record.contains("\"ok\":true"), "{record}");
        }
        // One malformed element rejects the whole array, accepting none.
        let before = api.runtime().stats().api_accepted.load(Ordering::Relaxed);
        let err = api.submit_body(r#"[{"workload":"matmul"},{"workload":"nope"}]"#).unwrap_err();
        assert!(matches!(err, SubmitError::Bad(ref m) if m.contains("jobs[1]")), "{err:?}");
        assert_eq!(api.runtime().stats().api_accepted.load(Ordering::Relaxed), before);
    }

    #[test]
    fn journal_accepts_then_resumes_unanswered_jobs() {
        let dir = std::env::temp_dir().join(format!(
            "cf-api-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("api.wal");
        let _ = std::fs::remove_file(&path);

        // First life: accept a job but "crash" before completion by
        // writing the accept record directly.
        {
            let mut journal = Journal::create(&path, &api_header()).unwrap();
            journal
                .append_accept(&AcceptedEntry {
                    index: 0,
                    spec: "workload=matmul machine=tiny order=32 label=redo".to_string(),
                })
                .unwrap();
        }

        // Second life: resume re-runs the accept under id 0.
        let runtime = test_runtime(LoadPolicy::default());
        let (api, resume) =
            JobApi::with_journal(Arc::clone(&runtime), &path, true, 0, DEFAULT_MAX_BODY_BYTES)
                .unwrap();
        assert_eq!(resume, ApiResume { replayed: 0, resubmitted: 1 });
        let JobWait::Done(record) = api.wait(0, Duration::from_secs(30)).unwrap() else {
            panic!("resubmitted job never settled")
        };
        assert!(record.contains("\"label\":\"redo\""), "{record}");
        assert!(record.contains("\"ok\":true"), "{record}");
        drop(api);

        // Third life: the completion is journaled; resume replays it
        // without re-running, byte-identically.
        let runtime2 = test_runtime(LoadPolicy::default());
        let (api2, resume2) =
            JobApi::with_journal(runtime2, &path, true, 0, DEFAULT_MAX_BODY_BYTES).unwrap();
        assert_eq!(resume2.replayed, 1);
        assert_eq!(resume2.resubmitted, 0);
        let JobWait::Done(replayed) = api2.wait(0, Duration::ZERO).unwrap() else {
            panic!("replayed job not settled")
        };
        assert_eq!(replayed, record);
        std::fs::remove_file(&path).unwrap();
    }
}
