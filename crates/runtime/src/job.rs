//! Jobs and their handles: the future-like half of the scheduler.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cf_core::CoreError;

/// Why a job did not produce a value.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job was cancelled via [`JobHandle::cancel`] before it started.
    Cancelled,
    /// The job's deadline passed while it was still queued.
    DeadlineExceeded {
        /// How far past the deadline the worker found the job.
        late_by: Duration,
    },
    /// The runtime shut down before the job could run.
    Shutdown,
    /// The submission queue was full (`try_submit` only).
    QueueFull,
    /// The circuit breaker is open: the job was shed without running (see
    /// [`supervisor`](crate::supervisor)).
    CircuitOpen,
    /// Admission control rejected the job at submit time: the runtime is
    /// over its [`LoadPolicy`](crate::LoadPolicy) capacity. Carries the
    /// queue-depth context observed at rejection.
    Shed {
        /// Which limit tripped: `"in-flight"` or `"queued-bytes"`.
        limit: &'static str,
        /// Accepted-but-unfinished jobs at rejection time.
        in_flight: usize,
        /// Estimated bytes queued at rejection time.
        queued_bytes: usize,
    },
    /// A terminal failure replayed verbatim from a serve journal; the
    /// string is the original error's rendering (so a resumed report is
    /// byte-identical to the uninterrupted one).
    Journaled(String),
    /// The simulator/executor reported an error.
    Sim(CoreError),
    /// The job body panicked; the payload's `Display` if it had one.
    Panicked(String),
}

impl JobError {
    /// Whether a retry of the same job might succeed: panics and
    /// transient simulator faults are worth retrying, everything else is
    /// deterministic or a policy decision.
    pub fn is_transient(&self) -> bool {
        match self {
            JobError::Panicked(_) => true,
            JobError::Sim(e) => e.is_transient(),
            // Load shedding is a point-in-time capacity decision: the
            // same submission can succeed once in-flight work drains.
            JobError::Shed { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled before it started"),
            JobError::DeadlineExceeded { late_by } => {
                write!(f, "job deadline exceeded ({late_by:.2?} late)")
            }
            JobError::Shutdown => write!(f, "runtime shut down before the job ran"),
            JobError::QueueFull => write!(f, "submission queue full"),
            JobError::CircuitOpen => {
                write!(f, "circuit breaker open: job shed without running")
            }
            JobError::Shed { limit, in_flight, queued_bytes } => write!(
                f,
                "job shed: {limit} limit reached ({in_flight} in flight, {queued_bytes} bytes queued)"
            ),
            // Verbatim: the journaled string is the original rendering.
            JobError::Journaled(msg) => write!(f, "{msg}"),
            JobError::Sim(e) => write!(f, "simulation error: {e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for JobError {
    fn from(e: CoreError) -> Self {
        JobError::Sim(e)
    }
}

pub(crate) struct Shared<T> {
    pub(crate) state: Mutex<Option<Result<T, JobError>>>,
    pub(crate) done: Condvar,
    /// Shared with the scheduler's queue entry so workers can observe
    /// cancellation without knowing `T`.
    pub(crate) cancelled: Arc<AtomicBool>,
    pub(crate) id: u64,
}

impl<T> Shared<T> {
    pub(crate) fn complete(&self, result: Result<T, JobError>) {
        let mut state = crate::sync::lock(&self.state);
        if state.is_none() {
            *state = Some(result);
            self.done.notify_all();
        }
    }
}

/// A handle to one submitted job — a blocking future.
///
/// The result is retrieved exactly once with [`join`](JobHandle::join)
/// (or [`join_timeout`](JobHandle::join_timeout)); dropping the handle
/// detaches the job, which still runs to completion.
pub struct JobHandle<T> {
    pub(crate) shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.shared.id)
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> JobHandle<T> {
    pub(crate) fn new(id: u64) -> (Self, Arc<Shared<T>>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(None),
            done: Condvar::new(),
            cancelled: Arc::new(AtomicBool::new(false)),
            id,
        });
        (JobHandle { shared: Arc::clone(&shared) }, shared)
    }

    /// The runtime-unique job id (submission order).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Whether a result is already available.
    pub fn is_done(&self) -> bool {
        crate::sync::lock(&self.shared.state).is_some()
    }

    /// Requests cancellation. Queued jobs resolve to
    /// [`JobError::Cancelled`]; a job already running completes normally
    /// (the simulator has no safe preemption points).
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether [`cancel`](JobHandle::cancel) was called.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::SeqCst)
    }

    /// Blocks until the job resolves and returns its result.
    pub fn join(self) -> Result<T, JobError> {
        let mut state = crate::sync::lock(&self.shared.state);
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = crate::sync::wait(&self.shared.done, state);
        }
    }

    /// Blocks up to `timeout` for the result; `Err(self)` gives the handle
    /// back on timeout so the caller can keep waiting or cancel.
    pub fn join_timeout(self, timeout: Duration) -> Result<Result<T, JobError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut state = crate::sync::lock(&self.shared.state);
        loop {
            if let Some(result) = state.take() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                return Err(self);
            }
            state = crate::sync::wait_timeout(&self.shared.done, state, deadline - now);
        }
    }
}

/// Submission options: deadline and cache behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobOptions {
    /// Resolve to [`JobError::DeadlineExceeded`] if the job has not
    /// *started* within this duration of submission. `None` means no
    /// deadline.
    pub deadline: Option<Duration>,
    /// Skip the plan/report cache for this job (both lookup and fill).
    pub bypass_cache: bool,
    /// Estimated working-set bytes, charged against
    /// [`LoadPolicy::max_queued_bytes`](crate::LoadPolicy::max_queued_bytes)
    /// while the job is queued. 0 means "derive a default": the
    /// simulate/exec submit paths fill in the program's external-memory
    /// footprint.
    pub cost_bytes: usize,
    /// The distributed trace context this job runs under, if any: the
    /// scheduler attaches it to the run's [`Tracer`](crate::Tracer) so
    /// the job's span-ring events join the fleet-wide trace (see
    /// [`trace`](crate::trace)).
    pub trace: Option<crate::trace::TraceContext>,
}

impl JobOptions {
    /// Options with a start deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        JobOptions { deadline: Some(deadline), ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn join_receives_result_across_threads() {
        let (handle, shared) = JobHandle::<u32>::new(7);
        assert_eq!(handle.id(), 7);
        assert!(!handle.is_done());
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            shared.complete(Ok(99));
        });
        assert_eq!(handle.join().unwrap(), 99);
        t.join().unwrap();
    }

    #[test]
    fn join_timeout_returns_handle_then_result() {
        let (handle, shared) = JobHandle::<u32>::new(0);
        let handle = handle.join_timeout(Duration::from_millis(10)).unwrap_err();
        shared.complete(Err(JobError::Cancelled));
        assert_eq!(handle.join(), Err(JobError::Cancelled));
    }

    #[test]
    fn first_completion_wins() {
        let (handle, shared) = JobHandle::<u32>::new(0);
        shared.complete(Ok(1));
        shared.complete(Ok(2));
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let e = JobError::DeadlineExceeded { late_by: Duration::from_millis(5) };
        assert!(e.to_string().contains("deadline"));
        assert!(JobError::Panicked("boom".into()).to_string().contains("boom"));
    }
}
